//! Remaining-budget arithmetic for deadline propagation.
//!
//! Internally every request carries an *absolute* deadline (`Instant`),
//! which is monotone by construction. The dangerous step is re-emitting
//! the budget as a relative `X-LogCL-Deadline-Ms` header on an outbound
//! hop (router → worker) or re-deriving it before an internal wait: the
//! header must be the admission budget **minus time already spent**, never
//! the original value, or queued time would resurrect an expired budget on
//! the next hop. These helpers centralise the subtraction and its
//! clamp-to-zero edge so every hop shares one audited implementation.

use std::time::{Duration, Instant};

/// Budget left until `deadline` as seen at `now`, clamped to zero once the
/// deadline has passed (it never wraps or goes negative).
pub fn remaining_budget(deadline: Instant, now: Instant) -> Duration {
    deadline.saturating_duration_since(now)
}

/// The remaining budget as whole milliseconds for an outbound
/// `X-LogCL-Deadline-Ms` header. Rounds *down*: a sub-millisecond
/// remainder propagates as `0`, which the next hop rejects at admission —
/// conservative by design, since rounding up would hand the downstream
/// hop more budget than this hop actually has.
pub fn remaining_ms(deadline: Instant, now: Instant) -> u64 {
    u64::try_from(remaining_budget(deadline, now).as_millis()).unwrap_or(u64::MAX)
}

/// Whether the budget is already exhausted at `now` — the shed-before-
/// forward test: an expired request is answered `504` locally instead of
/// being put on the wire.
pub fn expired(deadline: Instant, now: Instant) -> bool {
    now >= deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_budget_decrements_by_time_spent() {
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(250);
        assert_eq!(
            remaining_budget(deadline, t0 + Duration::from_millis(100)),
            Duration::from_millis(150)
        );
        assert_eq!(remaining_ms(deadline, t0 + Duration::from_millis(100)), 150);
        assert!(!expired(deadline, t0 + Duration::from_millis(249)));
    }

    #[test]
    fn clamps_to_zero_once_expired() {
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(50);
        // Exactly at the deadline and arbitrarily far past it: zero, never
        // a wrapped or negative budget that would resurrect the request.
        for spent in [50u64, 51, 1_000, 3_600_000] {
            let now = t0 + Duration::from_millis(spent);
            assert_eq!(remaining_budget(deadline, now), Duration::ZERO);
            assert_eq!(remaining_ms(deadline, now), 0);
            assert!(expired(deadline, now));
        }
    }

    #[test]
    fn sub_millisecond_remainders_round_down_to_zero() {
        let t0 = Instant::now();
        let deadline = t0 + Duration::from_micros(900);
        // 900µs of budget left: not yet expired locally, but the outbound
        // header floors to 0 ms — the downstream hop may not inherit more
        // budget than actually remains.
        assert!(!expired(deadline, t0));
        assert_eq!(remaining_ms(deadline, t0), 0);
    }
}
