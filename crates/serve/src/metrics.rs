//! Lock-free serving metrics rendered in the Prometheus text exposition
//! format: request counters per endpoint, a latency histogram, the
//! micro-batch size histogram, encoding-cache hit/miss counters, and
//! kernel-backend utilisation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Latency buckets in seconds (upper bounds; `+Inf` is implicit).
pub const LATENCY_BUCKETS: [f64; 9] = [0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 2.0];
/// Batch-size buckets (upper bounds; `+Inf` is implicit).
pub const BATCH_BUCKETS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
/// Compute-utilisation buckets: average pool compute threads busy per
/// wall-clock second while a batch executed (upper bounds; `+Inf` implicit).
pub const UTIL_BUCKETS: [f64; 8] = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0];

/// A fixed-bucket histogram over `AtomicU64` counters.
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<AtomicU64>, // one per bound, plus +Inf
    /// Sum scaled by 1e6 to keep atomic integer arithmetic.
    sum_micro: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram over `bounds` (public so the cluster router can
    /// build per-shard latency histograms from the same machinery).
    pub fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micro: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micro
            .fetch_add((value * 1e6).max(0.0) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Number of observations `<= bound` for each bound (cumulative), used
    /// by tests; the last entry equals [`Histogram::total`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// Appends this histogram's Prometheus exposition lines to `out`.
    pub fn render(&self, name: &str, help: &str, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut acc = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            acc += self.counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {acc}");
        }
        acc += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {acc}");
        let sum = self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {}", self.count.load(Ordering::Relaxed));
    }
}

/// From-scratch encoder-state rebuilds, split by the reason the O(Δ)
/// advance path could not be taken. Each field becomes one
/// `logcl_encoder_state_rebuilds_total{reason="…"}` series.
#[derive(Default)]
pub struct RebuildCounters {
    /// First build over the base history at model load.
    pub boot: AtomicU64,
    /// Online adaptation changed the parameters the state was evolved
    /// under, so the state had to be re-derived from the new weights.
    pub weight_update: AtomicU64,
    /// A backfill amended an already-consumed snapshot, invalidating the
    /// advance-only structures.
    pub backfill: AtomicU64,
    /// Crash recovery found no usable persisted state record (legacy
    /// snapshot or stale horizon).
    pub recovery: AtomicU64,
}

impl RebuildCounters {
    /// Sum across every reason (the pre-split scalar view).
    pub fn total(&self) -> u64 {
        self.boot.load(Ordering::Relaxed)
            + self.weight_update.load(Ordering::Relaxed)
            + self.backfill.load(Ordering::Relaxed)
            + self.recovery.load(Ordering::Relaxed)
    }
}

/// All counters exported at `GET /metrics`.
pub struct Metrics {
    /// `POST /predict` requests accepted.
    pub predict_requests: AtomicU64,
    /// `POST /ingest` requests accepted.
    pub ingest_requests: AtomicU64,
    /// `GET /healthz` + `GET /metrics` + admin requests.
    pub admin_requests: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_server_error: AtomicU64,
    /// End-to-end request latency.
    pub latency: Histogram,
    /// Micro-batch sizes, one observation per executed batch.
    pub batch_size: Histogram,
    /// Requests answered from a cached snapshot encoding.
    pub cache_hits: AtomicU64,
    /// Requests that had to compute the snapshot encoding.
    pub cache_misses: AtomicU64,
    /// Cached encodings dropped by ingestion invalidation.
    pub cache_invalidations: AtomicU64,
    /// Facts appended via `POST /ingest`.
    pub ingested_facts: AtomicU64,
    /// Online adaptation steps taken.
    pub online_updates: AtomicU64,
    /// Connections answered `408` because the peer stalled past the read
    /// timeout.
    pub read_timeouts: AtomicU64,
    /// Requests answered `413` because the declared body exceeded the limit.
    pub oversized_bodies: AtomicU64,
    /// Requests answered `503` because the bounded work queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests answered `504` at admission: the deadline had already
    /// passed (or was unsatisfiable) before any work was queued.
    pub shed_deadline_admission: AtomicU64,
    /// Requests answered `504` by the batcher: the deadline expired while
    /// the request sat in the work queue (shed *before* compute).
    pub shed_deadline_queue: AtomicU64,
    /// Requests answered `503` by queue-delay admission control (the
    /// CoDel-style sojourn signal or the Shed degradation tier).
    pub shed_overload: AtomicU64,
    /// Requests answered `503` by the per-endpoint concurrency cap.
    pub shed_concurrency: AtomicU64,
    /// Requests shed after admission but before entering model compute
    /// (the load-shedding guarantee: expired work never burns the model
    /// worker). Superset sum lives in `logcl_shed_total`.
    pub shed_before_compute: AtomicU64,
    /// Predict requests answered under a degraded tier (Brownout effects:
    /// reduced top-k and/or local-only decoding).
    pub degraded_responses: AtomicU64,
    /// Current degradation tier (0 = normal, 1 = brownout, 2 = shed),
    /// mirrored from the overload state machine on every transition.
    pub degradation_tier: AtomicU64,
    /// Queue sojourn (enqueue → dequeue) of work items, observed by the
    /// batcher — the CoDel-style overload signal.
    pub queue_sojourn: Histogram,
    /// Average kernel-pool compute threads busy per wall-clock second while
    /// each predict batch executed (0 under the serial backend, which runs
    /// on the model worker thread itself).
    pub compute_utilisation: Histogram,
    /// Kernel-pool busy time attributed to predict batches, in microseconds.
    pub kernel_busy_micros: AtomicU64,
    /// Frames appended to the ingest write-ahead log.
    pub wal_appended_frames: AtomicU64,
    /// Group-commit fsyncs of the write-ahead log (each may cover several
    /// appended frames; the ratio to appended frames is the amortisation).
    pub wal_fsyncs: AtomicU64,
    /// Intact frames replayed from the log at startup.
    pub wal_replayed_frames: AtomicU64,
    /// Torn-tail bytes truncated off the log at startup.
    pub wal_truncated_bytes: AtomicU64,
    /// Facts restored at startup from snapshot + WAL replay combined.
    pub wal_recovered_facts: AtomicU64,
    /// Compactions: snapshot written, then the log truncated.
    pub wal_compactions: AtomicU64,
    /// WAL append/fsync/compaction failures (the ingest was answered 500
    /// and must be retried; nothing was acknowledged).
    pub wal_errors: AtomicU64,
    /// Ingests answered from the idempotency window (duplicate
    /// `X-LogCL-Ingest-Id`; the remembered outcome was replayed).
    pub ingest_dedup_hits: AtomicU64,
    /// Ingests acknowledged only after their WAL frame was fsynced.
    pub durable_acks: AtomicU64,
    /// Time spent advancing streaming encoder state + history indexes per
    /// ingest (the O(Δ) freshness cost; excludes online fine-tuning).
    pub ingest_advance: Histogram,
    /// Individual online fine-tuning gradient steps applied (a bounded
    /// loop may take several per ingest; rolled-back steps are not
    /// counted — see `logcl_online_rollbacks_total`).
    pub online_steps: AtomicU64,
    /// Online fine-tuning loops aborted by the loss guard and rolled back
    /// to the pre-adaptation parameters.
    pub online_rollbacks: AtomicU64,
    /// Streaming encoder states rebuilt from scratch, split by why the
    /// O(Δ) advance path could not be taken (rendered as a `reason` label).
    pub encoder_state_rebuilds: RebuildCounters,
    /// Current streaming encoder horizon (snapshots consumed; gauge).
    pub encoder_state_horizon: AtomicU64,
    /// Encoding-cache hit ratio observed at the last ingest, in parts per
    /// million (gauge; 0 before the first ingest).
    pub post_ingest_hit_ratio_ppm: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            predict_requests: AtomicU64::new(0),
            ingest_requests: AtomicU64::new(0),
            admin_requests: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            latency: Histogram::new(&LATENCY_BUCKETS),
            batch_size: Histogram::new(&BATCH_BUCKETS),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_invalidations: AtomicU64::new(0),
            ingested_facts: AtomicU64::new(0),
            online_updates: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            oversized_bodies: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline_admission: AtomicU64::new(0),
            shed_deadline_queue: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_concurrency: AtomicU64::new(0),
            shed_before_compute: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
            degradation_tier: AtomicU64::new(0),
            queue_sojourn: Histogram::new(&LATENCY_BUCKETS),
            compute_utilisation: Histogram::new(&UTIL_BUCKETS),
            kernel_busy_micros: AtomicU64::new(0),
            wal_appended_frames: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            wal_replayed_frames: AtomicU64::new(0),
            wal_truncated_bytes: AtomicU64::new(0),
            wal_recovered_facts: AtomicU64::new(0),
            wal_compactions: AtomicU64::new(0),
            wal_errors: AtomicU64::new(0),
            ingest_dedup_hits: AtomicU64::new(0),
            durable_acks: AtomicU64::new(0),
            ingest_advance: Histogram::new(&LATENCY_BUCKETS),
            online_steps: AtomicU64::new(0),
            online_rollbacks: AtomicU64::new(0),
            encoder_state_rebuilds: RebuildCounters::default(),
            encoder_state_horizon: AtomicU64::new(0),
            post_ingest_hit_ratio_ppm: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Bumps the per-endpoint request counter.
    pub fn count_request(&self, path: &str) {
        let counter = match path {
            "/predict" => &self.predict_requests,
            "/ingest" => &self.ingest_requests,
            _ => &self.admin_requests,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished response: status class + latency.
    pub fn count_response(&self, status: u16, elapsed: Duration) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.latency.observe(elapsed.as_secs_f64());
    }

    /// Renders every metric in the Prometheus text format.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, pairs: &[(&str, u64)]| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (label, v) in pairs {
                if label.is_empty() {
                    let _ = writeln!(out, "{name} {v}");
                } else {
                    let _ = writeln!(out, "{name}{{{label}}} {v}");
                }
            }
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        counter(
            &mut out,
            "logcl_requests_total",
            "Requests received, by endpoint.",
            &[
                ("endpoint=\"predict\"", load(&self.predict_requests)),
                ("endpoint=\"ingest\"", load(&self.ingest_requests)),
                ("endpoint=\"admin\"", load(&self.admin_requests)),
            ],
        );
        counter(
            &mut out,
            "logcl_responses_total",
            "Responses sent, by status class.",
            &[
                ("class=\"2xx\"", load(&self.responses_ok)),
                ("class=\"4xx\"", load(&self.responses_client_error)),
                ("class=\"5xx\"", load(&self.responses_server_error)),
            ],
        );
        counter(
            &mut out,
            "logcl_encoding_cache_hits_total",
            "Predict requests served from a cached snapshot encoding.",
            &[("", load(&self.cache_hits))],
        );
        counter(
            &mut out,
            "logcl_encoding_cache_misses_total",
            "Predict requests that computed a snapshot encoding.",
            &[("", load(&self.cache_misses))],
        );
        counter(
            &mut out,
            "logcl_encoding_cache_invalidations_total",
            "Cached snapshot encodings dropped by ingestion.",
            &[("", load(&self.cache_invalidations))],
        );
        counter(
            &mut out,
            "logcl_ingested_facts_total",
            "Facts appended through POST /ingest.",
            &[("", load(&self.ingested_facts))],
        );
        counter(
            &mut out,
            "logcl_online_updates_total",
            "Online adaptation steps taken after ingestion.",
            &[("", load(&self.online_updates))],
        );
        counter(
            &mut out,
            "logcl_read_timeouts_total",
            "Connections answered 408 after stalling past the read timeout.",
            &[("", load(&self.read_timeouts))],
        );
        counter(
            &mut out,
            "logcl_oversized_bodies_total",
            "Requests answered 413 for exceeding the body-size limit.",
            &[("", load(&self.oversized_bodies))],
        );
        counter(
            &mut out,
            "logcl_shed_total",
            "Requests shed (503/504 with Retry-After), by cause.",
            &[
                ("reason=\"queue_full\"", load(&self.shed_queue_full)),
                (
                    "reason=\"deadline_admission\"",
                    load(&self.shed_deadline_admission),
                ),
                ("reason=\"deadline_queue\"", load(&self.shed_deadline_queue)),
                ("reason=\"overload\"", load(&self.shed_overload)),
                ("reason=\"concurrency\"", load(&self.shed_concurrency)),
            ],
        );
        counter(
            &mut out,
            "logcl_shed_before_compute_total",
            "Admitted requests shed by the batcher before model compute.",
            &[("", load(&self.shed_before_compute))],
        );
        counter(
            &mut out,
            "logcl_degraded_responses_total",
            "Predict responses answered under a degraded (brownout) tier.",
            &[("", load(&self.degraded_responses))],
        );
        let _ = writeln!(
            out,
            "# HELP logcl_degradation_tier Current degradation tier (0 normal, 1 brownout, 2 shed)."
        );
        let _ = writeln!(out, "# TYPE logcl_degradation_tier gauge");
        let _ = writeln!(
            out,
            "logcl_degradation_tier {}",
            load(&self.degradation_tier)
        );
        counter(
            &mut out,
            "logcl_kernel_busy_micros_total",
            "Kernel-pool busy time attributed to predict batches (us).",
            &[("", load(&self.kernel_busy_micros))],
        );
        counter(
            &mut out,
            "logcl_wal_frames_total",
            "Write-ahead-log frame activity, by kind.",
            &[
                ("kind=\"appended\"", load(&self.wal_appended_frames)),
                ("kind=\"replayed\"", load(&self.wal_replayed_frames)),
            ],
        );
        counter(
            &mut out,
            "logcl_wal_fsyncs_total",
            "Group-commit fsyncs of the write-ahead log.",
            &[("", load(&self.wal_fsyncs))],
        );
        counter(
            &mut out,
            "logcl_wal_truncated_bytes_total",
            "Torn-tail bytes truncated off the log at startup.",
            &[("", load(&self.wal_truncated_bytes))],
        );
        counter(
            &mut out,
            "logcl_wal_recovered_facts_total",
            "Facts restored at startup (snapshot + WAL replay).",
            &[("", load(&self.wal_recovered_facts))],
        );
        counter(
            &mut out,
            "logcl_wal_compactions_total",
            "Snapshot-then-truncate compactions of the write-ahead log.",
            &[("", load(&self.wal_compactions))],
        );
        counter(
            &mut out,
            "logcl_wal_errors_total",
            "WAL append/fsync/compaction failures (ingest answered 500).",
            &[("", load(&self.wal_errors))],
        );
        counter(
            &mut out,
            "logcl_ingest_dedup_hits_total",
            "Duplicate ingest ids answered from the idempotency window.",
            &[("", load(&self.ingest_dedup_hits))],
        );
        counter(
            &mut out,
            "logcl_durable_acks_total",
            "Ingests acknowledged after their WAL frame was fsynced.",
            &[("", load(&self.durable_acks))],
        );
        counter(
            &mut out,
            "logcl_online_steps_total",
            "Online fine-tuning gradient steps applied (rollbacks excluded).",
            &[("", load(&self.online_steps))],
        );
        counter(
            &mut out,
            "logcl_online_rollbacks_total",
            "Online fine-tuning loops rolled back by the loss guard.",
            &[("", load(&self.online_rollbacks))],
        );
        counter(
            &mut out,
            "logcl_encoder_state_rebuilds_total",
            "Streaming encoder states rebuilt from scratch, by reason.",
            &[
                ("reason=\"boot\"", load(&self.encoder_state_rebuilds.boot)),
                (
                    "reason=\"weight_update\"",
                    load(&self.encoder_state_rebuilds.weight_update),
                ),
                (
                    "reason=\"backfill\"",
                    load(&self.encoder_state_rebuilds.backfill),
                ),
                (
                    "reason=\"recovery\"",
                    load(&self.encoder_state_rebuilds.recovery),
                ),
            ],
        );
        let _ = writeln!(
            out,
            "# HELP logcl_encoder_state_horizon Snapshots consumed by the streaming encoder state."
        );
        let _ = writeln!(out, "# TYPE logcl_encoder_state_horizon gauge");
        let _ = writeln!(
            out,
            "logcl_encoder_state_horizon {}",
            load(&self.encoder_state_horizon)
        );
        let _ = writeln!(
            out,
            "# HELP logcl_post_ingest_cache_hit_ratio Encoding-cache hit ratio at the last ingest."
        );
        let _ = writeln!(out, "# TYPE logcl_post_ingest_cache_hit_ratio gauge");
        let _ = writeln!(
            out,
            "logcl_post_ingest_cache_hit_ratio {}",
            load(&self.post_ingest_hit_ratio_ppm) as f64 / 1e6
        );
        // Backend identity gauge: label carries the name, value the thread
        // count, following the Prometheus `_info` convention.
        let _ = writeln!(
            out,
            "# HELP logcl_kernel_backend_info Active kernel backend (value = compute threads)."
        );
        let _ = writeln!(out, "# TYPE logcl_kernel_backend_info gauge");
        let _ = writeln!(
            out,
            "logcl_kernel_backend_info{{backend=\"{}\"}} {}",
            logcl_tensor::kernels::backend_name(),
            logcl_tensor::kernels::current_threads()
        );
        // Build identity info-gauge: lets bench reports and dashboards pin
        // down exactly which binary produced a measurement.
        let _ = writeln!(
            out,
            "# HELP logcl_build_info Server build identity (value is always 1)."
        );
        let _ = writeln!(out, "# TYPE logcl_build_info gauge");
        let features: &[&str] = &[
            #[cfg(feature = "fault-inject")]
            "fault-inject",
        ];
        // The git hash is baked in when CI exports LOGCL_GIT_HASH at build
        // time; plain local builds report "unknown".
        let _ = writeln!(
            out,
            "logcl_build_info{{version=\"{}\",git=\"{}\",backend=\"{}\",features=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION"),
            option_env!("LOGCL_GIT_HASH").unwrap_or("unknown"),
            logcl_tensor::kernels::backend_name(),
            features.join(",")
        );
        self.latency.render(
            "logcl_request_duration_seconds",
            "End-to-end request latency.",
            &mut out,
        );
        self.batch_size.render(
            "logcl_batch_size",
            "Queries coalesced per executed micro-batch.",
            &mut out,
        );
        self.queue_sojourn.render(
            "logcl_queue_sojourn_seconds",
            "Work-queue sojourn (enqueue to dequeue) per item.",
            &mut out,
        );
        self.compute_utilisation.render(
            "logcl_compute_utilisation",
            "Pool compute threads busy per wall-second, per predict batch.",
            &mut out,
        );
        self.ingest_advance.render(
            "logcl_ingest_advance_seconds",
            "Streaming state + history advance time per ingest.",
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&BATCH_BUCKETS);
        for v in [1.0, 1.0, 3.0, 9.0, 1000.0] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum[0], 2); // <= 1
        assert_eq!(cum[2], 3); // <= 4
        assert_eq!(cum[4], 4); // <= 16
        assert_eq!(*cum.last().unwrap(), 5); // +Inf
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn render_contains_every_family() {
        let m = Metrics::default();
        m.count_request("/predict");
        m.count_response(200, Duration::from_millis(3));
        m.batch_size.observe(4.0);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        let text = m.render();
        for family in [
            "logcl_requests_total{endpoint=\"predict\"} 1",
            "logcl_responses_total{class=\"2xx\"} 1",
            "logcl_encoding_cache_hits_total 2",
            "logcl_request_duration_seconds_bucket",
            "logcl_batch_size_count 1",
            "logcl_kernel_backend_info{backend=",
            "logcl_build_info{version=\"",
            "logcl_compute_utilisation_bucket",
            "logcl_kernel_busy_micros_total",
            "logcl_shed_total{reason=\"queue_full\"} 0",
            "logcl_shed_total{reason=\"deadline_queue\"} 0",
            "logcl_shed_before_compute_total 0",
            "logcl_degradation_tier 0",
            "logcl_queue_sojourn_seconds_count",
            "logcl_wal_frames_total{kind=\"appended\"} 0",
            "logcl_wal_frames_total{kind=\"replayed\"} 0",
            "logcl_wal_fsyncs_total 0",
            "logcl_wal_recovered_facts_total 0",
            "logcl_wal_compactions_total 0",
            "logcl_ingest_dedup_hits_total 0",
            "logcl_durable_acks_total 0",
            "logcl_online_steps_total 0",
            "logcl_online_rollbacks_total 0",
            "logcl_encoder_state_rebuilds_total{reason=\"boot\"} 0",
            "logcl_encoder_state_rebuilds_total{reason=\"weight_update\"} 0",
            "logcl_encoder_state_rebuilds_total{reason=\"backfill\"} 0",
            "logcl_encoder_state_rebuilds_total{reason=\"recovery\"} 0",
            "logcl_encoder_state_horizon 0",
            "logcl_post_ingest_cache_hit_ratio 0",
            "logcl_ingest_advance_seconds_count 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
