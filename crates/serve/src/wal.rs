//! Write-ahead log for the durable-ingest path.
//!
//! Every accepted `/ingest` request is encoded as one CRC32-framed record
//! and appended here *after* it is applied in memory but *before* it is
//! acknowledged; the acknowledgement waits for a group-commit [`Wal::sync`]
//! (one `fsync` amortised over every ingest drained from the work queue in
//! the same batch). On restart the log is replayed in order; a torn tail —
//! the suffix a crash left half-written — is detected by frame magic, frame
//! CRC32 and payload decode, truncated off the file, and replay continues
//! from the intact prefix. Truncation never loses an acknowledged ingest:
//! an ack implies the frame was fsynced, and fsynced frames are by
//! construction in the intact prefix.
//!
//! Framing (all integers little-endian):
//!
//! ```text
//! [ magic "LGWL" | payload_len: u32 | crc32(payload): u32 | payload ]
//! ```
//!
//! Payload: `version: u8`, `flags: u8` (bit 0 = online update requested,
//! bit 1 = ingest id present), `t: u64`, `model_len: u32` + UTF-8 bytes,
//! optional `id_len: u32` + UTF-8 bytes, `nfacts: u32`, then `nfacts`
//! `(s, r, o)` triples as `u64` each. The CRC is
//! [`logcl_tensor::serialize::crc32`] — the same polynomial the PR 2
//! checkpoint container uses.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use logcl_tensor::serialize::crc32;

/// Frame magic: "LGWL" (LoGcl Wal).
pub const WAL_MAGIC: [u8; 4] = *b"LGWL";

/// Record format version written by this build.
pub const WAL_VERSION: u8 = 1;

/// Hard ceiling on one frame's payload (a sanity bound during replay so a
/// corrupt length field cannot ask for gigabytes; generous next to the
/// server's 1 MiB request-body cap).
pub const MAX_PAYLOAD: usize = 1 << 26;

const HEADER_LEN: usize = 12; // magic + len + crc

/// One logged ingest, exactly the information needed to re-apply it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Registry key of the target model.
    pub model: String,
    /// Timestamp the facts land on.
    pub t: usize,
    /// `(s, r, o)` triples, in request order.
    pub facts: Vec<(usize, usize, usize)>,
    /// Whether the request asked for an online adaptation step.
    pub update: bool,
    /// Client-supplied idempotency id, if any.
    pub ingest_id: Option<String>,
}

/// Why a WAL operation failed. Replay itself never errors on corruption —
/// corrupt tails are truncated by design — so every variant here is a real
/// I/O failure on the underlying file.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation on the log file failed.
    Io {
        /// What the log was doing.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { context, source } => {
                write!(f, "write-ahead log: {context}: {source}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
        }
    }
}

fn io_err(context: &'static str, source: std::io::Error) -> WalError {
    WalError::Io { context, source }
}

/// Result of [`Wal::open`]: the live handle plus everything replay found.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, positioned for appending after the intact prefix.
    pub wal: Wal,
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn tail that were truncated off (0 = clean log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Append attempts since open (indexes the injected append faults).
    appends: u64,
    /// Sync attempts since open (indexes the injected fsync faults).
    syncs: u64,
    /// Frames appended since the last successful [`Wal::sync`].
    pending: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays it, truncates
    /// any torn tail, and returns the handle positioned for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<WalOpen, WalError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| io_err("creating the log directory", e))?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io_err("opening the log file", e))?;
        let bytes = std::fs::read(&path).map_err(|e| io_err("reading the log for replay", e))?;

        let mut records = Vec::new();
        let mut good = 0usize; // end of the intact prefix
        while let Some(frame) = bytes.get(good..) {
            if frame.is_empty() {
                break;
            }
            match decode_frame(frame) {
                Some((record, consumed)) => {
                    records.push(record);
                    good += consumed;
                }
                None => break,
            }
        }
        let truncated_bytes = bytes.len() as u64 - good as u64;
        if truncated_bytes > 0 {
            file.set_len(good as u64)
                .map_err(|e| io_err("truncating the torn tail", e))?;
            file.sync_all()
                .map_err(|e| io_err("syncing the truncated log", e))?;
        }
        let wal = Wal {
            file,
            path,
            appends: 0,
            syncs: 0,
            pending: 0,
        };
        Ok(WalOpen {
            wal,
            records,
            truncated_bytes,
        })
    }

    /// Appends one record. The record is **not durable** until the next
    /// successful [`Wal::sync`]; callers must not acknowledge before that.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let attempt = self.appends;
        self.appends += 1;
        #[cfg(feature = "fault-inject")]
        if crate::fault::wal_append_fails(attempt) {
            return Err(io_err(
                "appending a frame",
                std::io::Error::other("injected WAL append fault"),
            ));
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = attempt;
        let frame = encode_frame(record);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("appending a frame", e))?;
        self.pending += 1;
        Ok(())
    }

    /// Group-commit: fsyncs every frame appended since the last sync. A
    /// no-op when nothing is pending. Only after this returns `Ok` may the
    /// ingests carried by those frames be acknowledged as durable.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.pending == 0 {
            return Ok(());
        }
        let attempt = self.syncs;
        self.syncs += 1;
        #[cfg(feature = "fault-inject")]
        if crate::fault::wal_fsync_fails(attempt) {
            return Err(io_err(
                "group-commit fsync",
                std::io::Error::other("injected WAL fsync fault"),
            ));
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = attempt;
        self.file
            .sync_all()
            .map_err(|e| io_err("group-commit fsync", e))?;
        self.pending = 0;
        Ok(())
    }

    /// Empties the log after a successful compaction snapshot. Safe against
    /// a crash before it runs: replaying already-snapshotted frames is
    /// idempotent at the registry layer.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file
            .set_len(0)
            .map_err(|e| io_err("truncating after compaction", e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("syncing the truncated log", e))?;
        self.pending = 0;
        Ok(())
    }

    /// Frames appended but not yet covered by a successful [`Wal::sync`].
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encodes one record as a complete frame (header + payload).
fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + record.facts.len() * 24);
    payload.push(WAL_VERSION);
    let mut flags = 0u8;
    if record.update {
        flags |= 1;
    }
    if record.ingest_id.is_some() {
        flags |= 2;
    }
    payload.push(flags);
    payload.extend_from_slice(&(record.t as u64).to_le_bytes());
    payload.extend_from_slice(&(record.model.len() as u32).to_le_bytes());
    payload.extend_from_slice(record.model.as_bytes());
    if let Some(id) = &record.ingest_id {
        payload.extend_from_slice(&(id.len() as u32).to_le_bytes());
        payload.extend_from_slice(id.as_bytes());
    }
    payload.extend_from_slice(&(record.facts.len() as u32).to_le_bytes());
    for &(s, r, o) in &record.facts {
        payload.extend_from_slice(&(s as u64).to_le_bytes());
        payload.extend_from_slice(&(r as u64).to_le_bytes());
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&WAL_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes the frame at the start of `bytes`. Returns the record and the
/// number of bytes consumed, or `None` if the prefix is not a complete,
/// intact frame (short read, bad magic, bad CRC, undecodable payload) —
/// the caller treats that as the start of the torn tail.
fn decode_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    let header = bytes.get(..HEADER_LEN)?;
    if header.get(..4)? != WAL_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(header.get(4..8)?.try_into().ok()?) as usize;
    if len > MAX_PAYLOAD {
        return None;
    }
    let stored_crc = u32::from_le_bytes(header.get(8..12)?.try_into().ok()?);
    let payload = bytes.get(HEADER_LEN..HEADER_LEN + len)?;
    if crc32(payload) != stored_crc {
        return None;
    }
    let record = decode_payload(payload)?;
    Some((record, HEADER_LEN + len))
}

/// A tiny forward-only reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    if c.u8()? != WAL_VERSION {
        return None;
    }
    let flags = c.u8()?;
    if flags & !0b11 != 0 {
        return None;
    }
    let t = usize::try_from(c.u64()?).ok()?;
    let model = c.string()?;
    let ingest_id = if flags & 2 != 0 {
        Some(c.string()?)
    } else {
        None
    };
    let nfacts = c.u32()? as usize;
    let mut facts = Vec::with_capacity(nfacts.min(MAX_PAYLOAD / 24));
    for _ in 0..nfacts {
        let s = usize::try_from(c.u64()?).ok()?;
        let r = usize::try_from(c.u64()?).ok()?;
        let o = usize::try_from(c.u64()?).ok()?;
        facts.push((s, r, o));
    }
    if !c.done() {
        return None; // trailing garbage inside a "valid" CRC — refuse
    }
    Some(WalRecord {
        model,
        t,
        facts,
        update: flags & 1 != 0,
        ingest_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("logcl-wal-{tag}-{}", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                model: "default".into(),
                t: 12,
                facts: vec![(0, 1, 2), (3, 4, 5)],
                update: true,
                ingest_id: Some("req-a".into()),
            },
            WalRecord {
                model: "alt".into(),
                t: 13,
                facts: vec![(6, 7, 8)],
                update: false,
                ingest_id: None,
            },
        ]
    }

    #[test]
    fn append_sync_reopen_replays_in_order() {
        let dir = temp_path("replay");
        let path = dir.join("ingest.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let mut open = Wal::open(&path).unwrap();
        assert!(open.records.is_empty());
        assert_eq!(open.truncated_bytes, 0);
        for rec in &sample_records() {
            open.wal.append(rec).unwrap();
        }
        assert_eq!(open.wal.pending(), 2);
        open.wal.sync().unwrap();
        assert_eq!(open.wal.pending(), 0);
        drop(open);

        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.records, sample_records());
        assert_eq!(reopened.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_path("torn");
        let path = dir.join("ingest.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let recs = sample_records();
        let mut open = Wal::open(&path).unwrap();
        for rec in &recs {
            open.wal.append(rec).unwrap();
        }
        open.wal.sync().unwrap();
        drop(open);

        // Chop 3 bytes off the last frame: a classic torn write.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.records, recs[..1]);
        assert_eq!(reopened.truncated_bytes as usize, {
            let first_len =
                HEADER_LEN + u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
            bytes.len() - 3 - first_len
        });
        // The file now ends exactly at the intact prefix.
        let after = std::fs::read(&path).unwrap();
        assert_eq!(decode_frame(&after).map(|(_, n)| n), Some(after.len()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay_at_the_bad_frame() {
        let dir = temp_path("crc");
        let path = dir.join("ingest.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let recs = sample_records();
        let mut open = Wal::open(&path).unwrap();
        for rec in &recs {
            open.wal.append(rec).unwrap();
        }
        open.wal.sync().unwrap();
        drop(open);

        // Flip a payload bit inside the second frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = HEADER_LEN + u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        bytes[first_len + HEADER_LEN + 2] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let reopened = Wal::open(&path).unwrap();
        assert_eq!(reopened.records, recs[..1]);
        assert!(reopened.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = temp_path("reset");
        let path = dir.join("ingest.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let mut open = Wal::open(&path).unwrap();
        for rec in &sample_records() {
            open.wal.append(rec).unwrap();
        }
        open.wal.sync().unwrap();
        open.wal.reset().unwrap();
        drop(open);
        let reopened = Wal::open(&path).unwrap();
        assert!(reopened.records.is_empty());
        assert_eq!(reopened.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frame_round_trip_covers_every_flag_combination() {
        for (update, id) in [
            (false, None),
            (true, None),
            (false, Some("x".to_string())),
            (true, Some("a-long-ingest-id-0123456789".to_string())),
        ] {
            let rec = WalRecord {
                model: "m".into(),
                t: 7,
                facts: vec![(1, 2, 3)],
                update,
                ingest_id: id,
            };
            let frame = encode_frame(&rec);
            let (back, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(back, rec);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn decode_rejects_garbage_and_short_prefixes() {
        assert!(decode_frame(b"").is_none());
        assert!(decode_frame(b"LGW").is_none());
        assert!(decode_frame(b"XXXX\x00\x00\x00\x00\x00\x00\x00\x00").is_none());
        let frame = encode_frame(&WalRecord {
            model: "m".into(),
            t: 0,
            facts: vec![],
            update: false,
            ingest_id: None,
        });
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_none(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }
}
