//! A deliberately small HTTP/1.1 request parser and response writer,
//! written against `std` only (the build environment has no crates.io
//! access, so no hyper/tokio). Persistent connections with HTTP/1.1
//! keep-alive semantics (`Connection: close` honoured both ways), bounded
//! header and body sizes, `GET`/`POST` only — everything a model inference
//! endpoint needs and nothing more.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST`.
    pub method: String,
    /// Request target, query string included (routing splits it off).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default, overridden by a `Connection` header either way).
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong while reading a request; each maps to an
/// HTTP status so handler code stays a one-liner.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` (→ 400).
    BadRequest(String),
    /// Anything other than `GET`/`POST` (→ 405).
    MethodNotAllowed(String),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] (→ 431).
    HeadTooLarge,
    /// Declared body exceeds the configured limit (→ 413).
    BodyTooLarge,
    /// The peer closed the connection mid-request (→ 400).
    UnexpectedEof,
    /// The peer stalled past the socket read timeout (→ 408).
    ReadTimeout,
    /// Transport failure.
    Io(io::Error),
}

impl HttpError {
    /// HTTP status code this parse failure answers with.
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) | Self::UnexpectedEof => 400,
            Self::MethodNotAllowed(_) => 405,
            Self::ReadTimeout => 408,
            Self::BodyTooLarge => 413,
            Self::HeadTooLarge => 431,
            Self::Io(_) => 500,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadRequest(m) => write!(f, "bad request: {m}"),
            Self::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            Self::HeadTooLarge => write!(f, "request head too large"),
            Self::BodyTooLarge => write!(f, "request body too large"),
            Self::UnexpectedEof => write!(f, "connection closed mid-request"),
            Self::ReadTimeout => write!(f, "timed out waiting for the request"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        // A socket configured with `set_read_timeout` surfaces a stalled
        // peer as WouldBlock (unix) or TimedOut (windows); both mean the
        // client owes us bytes it never sent.
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Self::ReadTimeout,
            _ => Self::Io(e),
        }
    }
}

/// Reads one request from `r`, tolerating arbitrarily fragmented reads
/// (a TCP stream may deliver the head one byte at a time). The body is
/// bounded by the default [`MAX_BODY_BYTES`].
pub fn read_request(r: &mut impl Read) -> Result<Request, HttpError> {
    read_request_limited(r, MAX_BODY_BYTES)
}

/// [`read_request`] with a caller-chosen body limit (→ 413 above it).
pub fn read_request_limited(r: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = start.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version}"
        )));
    }
    if method != "GET" && method != "POST" {
        return Err(HttpError::MethodNotAllowed(method));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let http11 = version.eq_ignore_ascii_case("HTTP/1.1");
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        keep_alive: http11,
    };
    req.keep_alive = match req.header("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    };
    let content_length = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge);
    }

    // Body bytes that arrived glued to the head, then the remainder.
    let body_start = head_end + 4; // skip the \r\n\r\n
    req.body = buf[body_start.min(buf.len())..].to_vec();
    if req.body.len() > content_length {
        return Err(HttpError::BadRequest(
            "body longer than Content-Length".into(),
        ));
    }
    while req.body.len() < content_length {
        let want = (content_length - req.body.len()).min(chunk.len());
        let n = r.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        req.body.extend_from_slice(&chunk[..n]);
    }
    Ok(req)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (`Retry-After`, `X-LogCL-Degradation`, …), written in
    /// order after the fixed ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Appends one extra header (builder style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes `resp` to `w`, advertising `Connection: keep-alive` or
/// `Connection: close` — the caller decides whether the connection
/// survives this exchange.
pub fn write_response(w: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (name, value) in &resp.headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that trickles out one byte per `read` call — the worst
    /// possible TCP fragmentation.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn parses_simple_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_under_partial_reads() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"time\":42}";
        let mut r = Trickle {
            data: raw.to_vec(),
            pos: 0,
        };
        let req = read_request(&mut r).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"time\":42}");
        assert_eq!(req.header("CONTENT-TYPE"), Some("application/json"));
    }

    #[test]
    fn rejects_oversized_headers() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::HeadTooLarge));
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn rejects_bad_method_and_version() {
        let err =
            read_request(&mut Cursor::new(b"BREW /pot HTTP/1.1\r\n\r\n".to_vec())).unwrap_err();
        assert!(matches!(err, HttpError::MethodNotAllowed(m) if m == "BREW"));
        let err =
            read_request(&mut Cursor::new(b"GET /pot SMTP/1.0\r\n\r\n".to_vec())).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_bad_and_oversized_content_length() {
        let err = read_request(&mut Cursor::new(
            b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n".to_vec(),
        ))
        .unwrap_err();
        assert_eq!(err.status(), 400);
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
    }

    #[test]
    fn stalled_reader_maps_to_request_timeout() {
        // A socket read timeout surfaces as WouldBlock/TimedOut.
        struct Stall;
        impl Read for Stall {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"))
            }
        }
        let err = read_request(&mut Stall).unwrap_err();
        assert!(matches!(err, HttpError::ReadTimeout));
        assert_eq!(err.status(), 408);
    }

    #[test]
    fn custom_body_limit_is_enforced() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"time\":42}";
        let err = read_request_limited(&mut Cursor::new(raw.to_vec()), 10).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status(), 413);
        // The same request passes under a sufficient limit.
        let req = read_request_limited(&mut Cursor::new(raw.to_vec()), 11).unwrap();
        assert_eq!(req.body, b"{\"time\":42}");
    }

    #[test]
    fn truncated_request_is_an_eof_error() {
        // Head never completes.
        let err = read_request(&mut Cursor::new(b"GET / HTT".to_vec())).unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
        // Body shorter than declared.
        let err = read_request(&mut Cursor::new(
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
        ))
        .unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
    }

    #[test]
    fn keep_alive_follows_http11_defaults_and_connection_header() {
        let req = read_request(&mut Cursor::new(b"GET / HTTP/1.1\r\n\r\n".to_vec())).unwrap();
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let req = read_request(&mut Cursor::new(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        ))
        .unwrap();
        assert!(!req.keep_alive, "Connection: close overrides the default");
        let req = read_request(&mut Cursor::new(b"GET / HTTP/1.0\r\n\r\n".to_vec())).unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = read_request(&mut Cursor::new(
            b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n".to_vec(),
        ))
        .unwrap();
        assert!(req.keep_alive, "explicit Keep-Alive opts in");
    }

    #[test]
    fn response_writer_emits_well_formed_http() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::json(200, "{\"ok\":true}".into()),
            false,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 11\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        assert!(s.ends_with("{\"ok\":true}"), "{s}");
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}".into()), true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
    }

    #[test]
    fn extra_headers_are_written_before_the_blank_line() {
        let resp = Response::json(503, "{}".into())
            .with_header("Retry-After", "1")
            .with_header("X-LogCL-Degradation", "shed");
        let mut out = Vec::new();
        write_response(&mut out, &resp, false).unwrap();
        let s = String::from_utf8(out).unwrap();
        let (head, body) = s.split_once("\r\n\r\n").expect("head/body split");
        assert!(head.contains("\r\nRetry-After: 1"), "{head}");
        assert!(head.contains("\r\nX-LogCL-Degradation: shed"), "{head}");
        assert_eq!(body, "{}");
    }
}
