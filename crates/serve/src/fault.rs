//! Deterministic fault injection for the serve stack (chaos testing).
//!
//! This module only exists under the `fault-inject` cargo feature; the
//! audited call sites in `server.rs`, `batcher.rs`, and `registry.rs` are
//! each wrapped in `#[cfg(feature = "fault-inject")]`, and lint L008
//! (`logcl-analyze`) proves no hook escapes the gate — default release
//! builds contain none of this code.
//!
//! Faults are scheduled deterministically: a [`FaultPlan`] is installed
//! once per test, decisions are pure functions of the plan's seed and a
//! monotone call counter (no wall-clock randomness, consistent with lint
//! L003), so a chaos run replays bit-identically for a fixed seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Audited boundaries where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Artificial delay before a predict batch enters compute.
    ComputeDelay,
    /// Checkpoint restore fails during registry build (startup).
    CheckpointRead,
    /// The batcher thread exits as if it died.
    BatcherDeath,
    /// The work queue reports saturation on submit.
    QueueSaturate,
    /// The connection handler stalls before reading the request.
    SocketStall,
    /// Appending a frame to the write-ahead log fails with an I/O error.
    WalAppend,
    /// The group-commit `fsync` of the write-ahead log fails.
    WalFsync,
}

/// A seeded, fully deterministic schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the per-batch delay jitter; two runs with the same seed
    /// and traffic fire identical faults.
    pub seed: u64,
    /// Base compute delay injected before each predict batch.
    pub compute_delay: Option<Duration>,
    /// Inject the compute delay only into the first N batches
    /// (`None` = every batch while the plan is installed).
    pub compute_delay_batches: Option<u64>,
    /// Fail checkpoint reads during `Registry::build`.
    pub checkpoint_read_error: bool,
    /// The batcher thread dies before executing batch N (0-based).
    pub batcher_death_at_batch: Option<u64>,
    /// `submit` behaves as if the bounded queue were full.
    pub queue_saturated: bool,
    /// Connection handlers stall this long before reading the request
    /// (simulates a slow/stalled client socket holding a handler thread).
    pub socket_stall: Option<Duration>,
    /// The Nth (0-based) WAL frame append fails with an injected I/O error
    /// (`None` = appends never fail).
    pub wal_append_error_at: Option<u64>,
    /// The Nth (0-based) WAL group-commit fsync fails with an injected I/O
    /// error (`None` = fsyncs never fail).
    pub wal_fsync_error_at: Option<u64>,
}

struct Counters {
    compute_delay: AtomicU64,
    checkpoint_read: AtomicU64,
    batcher_death: AtomicU64,
    queue_saturate: AtomicU64,
    socket_stall: AtomicU64,
    wal_append: AtomicU64,
    wal_fsync: AtomicU64,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static FIRED: Counters = Counters {
    compute_delay: AtomicU64::new(0),
    checkpoint_read: AtomicU64::new(0),
    batcher_death: AtomicU64::new(0),
    queue_saturate: AtomicU64::new(0),
    socket_stall: AtomicU64::new(0),
    wal_append: AtomicU64::new(0),
    wal_fsync: AtomicU64::new(0),
};

fn counter(point: FaultPoint) -> &'static AtomicU64 {
    match point {
        FaultPoint::ComputeDelay => &FIRED.compute_delay,
        FaultPoint::CheckpointRead => &FIRED.checkpoint_read,
        FaultPoint::BatcherDeath => &FIRED.batcher_death,
        FaultPoint::QueueSaturate => &FIRED.queue_saturate,
        FaultPoint::SocketStall => &FIRED.socket_stall,
        FaultPoint::WalAppend => &FIRED.wal_append,
        FaultPoint::WalFsync => &FIRED.wal_fsync,
    }
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> Option<T>) -> Option<T> {
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(f)
}

/// Installs a plan (replacing any previous one) and resets fire counters.
pub fn install(plan: FaultPlan) {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    for c in [
        &FIRED.compute_delay,
        &FIRED.checkpoint_read,
        &FIRED.batcher_death,
        &FIRED.queue_saturate,
        &FIRED.socket_stall,
        &FIRED.wal_append,
        &FIRED.wal_fsync,
    ] {
        c.store(0, Ordering::Release);
    }
    *guard = Some(plan);
}

/// Removes the installed plan; all hooks become no-ops again.
pub fn clear() {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// How many times the given fault point has fired since `install`.
pub fn fired(point: FaultPoint) -> u64 {
    counter(point).load(Ordering::Acquire)
}

/// SplitMix64 — a tiny, high-quality deterministic mixer (public-domain
/// construction; no std RNG exists and wall-clock entropy is banned).
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(n.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Delay to inject before executing predict batch `batch_idx`, if any.
/// Jittered deterministically from the seed: 1–3 × the base delay.
pub fn compute_delay(batch_idx: u64) -> Option<Duration> {
    with_plan(|p| {
        let base = p.compute_delay?;
        if let Some(n) = p.compute_delay_batches {
            if batch_idx >= n {
                return None;
            }
        }
        counter(FaultPoint::ComputeDelay).fetch_add(1, Ordering::AcqRel);
        let factor = 1 + (mix(p.seed, batch_idx) % 3) as u32;
        Some(base * factor)
    })
}

/// Whether checkpoint restore should fail at this point of registry build.
pub fn checkpoint_read_error() -> bool {
    with_plan(|p| {
        if !p.checkpoint_read_error {
            return None;
        }
        counter(FaultPoint::CheckpointRead).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Whether the batcher thread should die before executing `batch_idx`.
pub fn batcher_dies(batch_idx: u64) -> bool {
    with_plan(|p| {
        let at = p.batcher_death_at_batch?;
        if batch_idx < at {
            return None;
        }
        counter(FaultPoint::BatcherDeath).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Whether submit should behave as if the bounded work queue were full.
pub fn queue_saturated() -> bool {
    with_plan(|p| {
        if !p.queue_saturated {
            return None;
        }
        counter(FaultPoint::QueueSaturate).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Whether the `n`-th (0-based) WAL frame append should fail. One-shot at
/// exactly `n`: the retry after the failed ack must be able to succeed, so
/// chaos tests can assert exactly-once application across a durability error.
pub fn wal_append_fails(n: u64) -> bool {
    with_plan(|p| {
        let at = p.wal_append_error_at?;
        if n != at {
            return None;
        }
        counter(FaultPoint::WalAppend).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Whether the `n`-th (0-based) WAL group-commit fsync should fail.
/// One-shot at exactly `n`, mirroring [`wal_append_fails`].
pub fn wal_fsync_fails(n: u64) -> bool {
    with_plan(|p| {
        let at = p.wal_fsync_error_at?;
        if n != at {
            return None;
        }
        counter(FaultPoint::WalFsync).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Stall to apply before reading a request off the socket, if any.
pub fn socket_stall() -> Option<Duration> {
    with_plan(|p| {
        let d = p.socket_stall?;
        counter(FaultPoint::SocketStall).fetch_add(1, Ordering::AcqRel);
        Some(d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global: tests in this module serialise on a
    /// mutex so cargo's parallel test threads cannot stomp each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn plans_fire_deterministically_for_a_fixed_seed() {
        let _guard = serial();
        install(FaultPlan {
            seed: 7,
            compute_delay: Some(Duration::from_millis(10)),
            compute_delay_batches: Some(4),
            ..FaultPlan::default()
        });
        let first: Vec<_> = (0..6).map(compute_delay).collect();
        install(FaultPlan {
            seed: 7,
            compute_delay: Some(Duration::from_millis(10)),
            compute_delay_batches: Some(4),
            ..FaultPlan::default()
        });
        let second: Vec<_> = (0..6).map(compute_delay).collect();
        assert_eq!(first, second, "same seed must replay identically");
        assert!(first[4].is_none() && first[5].is_none());
        assert_eq!(fired(FaultPoint::ComputeDelay), 4);
        for d in first.into_iter().flatten() {
            assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(30));
        }
        clear();
        assert!(compute_delay(0).is_none(), "cleared plan must be inert");
    }

    #[test]
    fn different_seeds_give_different_jitter_somewhere() {
        let _guard = serial();
        let schedule = |seed: u64| -> Vec<Option<Duration>> {
            install(FaultPlan {
                seed,
                compute_delay: Some(Duration::from_millis(10)),
                ..FaultPlan::default()
            });
            (0..32).map(compute_delay).collect()
        };
        let a = schedule(1);
        let b = schedule(2);
        clear();
        assert_ne!(a, b, "32 jittered delays should differ across seeds");
    }

    #[test]
    fn point_predicates_honour_their_plan_fields() {
        let _guard = serial();
        install(FaultPlan {
            checkpoint_read_error: true,
            queue_saturated: true,
            batcher_death_at_batch: Some(2),
            socket_stall: Some(Duration::from_millis(5)),
            ..FaultPlan::default()
        });
        assert!(checkpoint_read_error());
        assert!(queue_saturated());
        assert!(!batcher_dies(0));
        assert!(!batcher_dies(1));
        assert!(batcher_dies(2));
        assert!(batcher_dies(3));
        assert_eq!(socket_stall(), Some(Duration::from_millis(5)));
        assert_eq!(fired(FaultPoint::CheckpointRead), 1);
        assert_eq!(fired(FaultPoint::BatcherDeath), 2);
        clear();
        assert!(!checkpoint_read_error() && !queue_saturated());
    }

    #[test]
    fn wal_faults_fire_exactly_once_at_their_index() {
        let _guard = serial();
        install(FaultPlan {
            wal_append_error_at: Some(1),
            wal_fsync_error_at: Some(0),
            ..FaultPlan::default()
        });
        assert!(!wal_append_fails(0));
        assert!(wal_append_fails(1));
        assert!(!wal_append_fails(2), "append fault is one-shot");
        assert!(wal_fsync_fails(0));
        assert!(!wal_fsync_fails(1), "fsync fault is one-shot");
        assert_eq!(fired(FaultPoint::WalAppend), 1);
        assert_eq!(fired(FaultPoint::WalFsync), 1);
        clear();
        assert!(!wal_append_fails(1) && !wal_fsync_fails(0));
    }
}
