//! Overload resilience: the degradation-tier state machine and the
//! queue-delay admission signal.
//!
//! LogCL inference cost is history-dependent (local recurrence over `m`
//! snapshots plus a query-dependent global two-hop subgraph, Eq. 9–14), so
//! per-request cost varies widely and a binary "queue full" signal sheds
//! far too late. This module implements CoDel-style control instead: the
//! batcher observes the *sojourn time* (enqueue → dequeue) of every work
//! item, and a three-tier state machine reacts long before the queue hits
//! its capacity bound:
//!
//! * **Normal** — full fidelity.
//! * **Brownout** — predict requests are still admitted, but answered
//!   degraded: the effective top-k is capped and (when the model has a
//!   local encoder) the expensive per-query global encoding is skipped, so
//!   the cached snapshot encoding alone answers the query
//!   ([`crate::registry`]). Every response names the tier in an
//!   `X-LogCL-Degradation` header.
//! * **Shed** — incoming `/predict` is answered `503` + `Retry-After`
//!   without being queued, for as long as a backlog exists (or the worker
//!   is gone). Once the queue drains, probe requests are admitted even at
//!   stored-tier Shed — their sojourn observations are what drives the
//!   recovery streak. `/healthz` and `/metrics` are **never** shed.
//!
//! Escalation is immediate (one bad observation is enough — by the time
//! sojourn crosses a threshold the queue is already old); recovery steps
//! down one tier at a time after [`OverloadPolicy::recovery_streak`]
//! consecutive healthy observations, so the tier cannot flap on a single
//! quiet dequeue and provably returns to Normal within
//! `2 × recovery_streak` requests once load clears.
//!
//! The state is written by the single batcher thread (observations) and
//! read by handler threads (admission), so plain atomic loads/stores
//! suffice — there is no read-modify-write race on the tier.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::Metrics;

/// Sentinel for "the queue is (as far as we know) empty".
const EMPTY: u64 = u64::MAX;

/// Degradation tier, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Full fidelity.
    Normal = 0,
    /// Degraded answers: capped top-k, local-only decoding.
    Brownout = 1,
    /// Incoming `/predict` is answered `503` without queueing.
    Shed = 2,
}

impl Tier {
    /// Lower-case name, as surfaced in headers and `/healthz`.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Normal => "normal",
            Tier::Brownout => "brownout",
            Tier::Shed => "shed",
        }
    }

    fn from_u8(v: u8) -> Tier {
        match v {
            2 => Tier::Shed,
            1 => Tier::Brownout,
            _ => Tier::Normal,
        }
    }
}

/// Thresholds and degradation knobs driving the state machine
/// (defaults mirror [`crate::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct OverloadPolicy {
    /// Sojourn at or above this escalates to at least Brownout.
    pub brownout_sojourn: Duration,
    /// Sojourn at or above this escalates to Shed.
    pub shed_sojourn: Duration,
    /// Consecutive healthy observations required to step *down* one tier.
    pub recovery_streak: u32,
    /// Compute utilisation (pool threads busy per wall-second) at or above
    /// this escalates to at least Brownout; `0.0` disables the signal.
    pub brownout_utilisation: f64,
    /// Effective top-k cap applied to predict requests in Brownout.
    pub brownout_k_cap: usize,
    /// Skip the global encoder (decode local-only, Eq. 18–19 with the
    /// λ-mixture collapsed to its local term) in Brownout.
    pub brownout_skip_global: bool,
    /// Concurrent in-flight `/predict` requests admitted.
    pub max_inflight_predict: usize,
    /// Concurrent in-flight `/ingest` requests admitted.
    pub max_inflight_ingest: usize,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            brownout_sojourn: Duration::from_millis(50),
            shed_sojourn: Duration::from_millis(250),
            recovery_streak: 3,
            brownout_utilisation: 0.0,
            brownout_k_cap: 3,
            brownout_skip_global: true,
            max_inflight_predict: 256,
            max_inflight_ingest: 32,
        }
    }
}

/// Shared overload state: tier, queue-age signal, worker health, and the
/// per-endpoint in-flight counters.
pub struct OverloadState {
    policy: OverloadPolicy,
    /// Epoch for the micros-since-start encoding of enqueue times.
    t0: Instant,
    tier: AtomicU8,
    healthy_streak: AtomicU32,
    /// Lowered when the batcher exits or its channel disconnects while the
    /// server is still answering — the strongest possible shed signal.
    worker_healthy: AtomicBool,
    queue_depth: AtomicUsize,
    /// Enqueue time (micros since `t0`) of (approximately) the oldest item
    /// still queued; [`EMPTY`] when the queue was last seen empty. An
    /// *under*-estimate of queue age is impossible by construction: the
    /// value only moves forward when the batcher actually dequeues.
    head_enqueued_micros: AtomicU64,
    inflight_predict: AtomicUsize,
    inflight_ingest: AtomicUsize,
    metrics: Arc<Metrics>,
}

/// RAII token for one admitted in-flight request (concurrency cap).
pub struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

impl OverloadState {
    /// A fresh state at tier Normal.
    pub fn new(policy: OverloadPolicy, metrics: Arc<Metrics>) -> Self {
        Self {
            policy,
            t0: Instant::now(),
            tier: AtomicU8::new(Tier::Normal as u8),
            healthy_streak: AtomicU32::new(0),
            worker_healthy: AtomicBool::new(true),
            queue_depth: AtomicUsize::new(0),
            head_enqueued_micros: AtomicU64::new(EMPTY),
            inflight_predict: AtomicUsize::new(0),
            inflight_ingest: AtomicUsize::new(0),
            metrics,
        }
    }

    /// The policy this state was built with (read by the registry for the
    /// Brownout degradation knobs).
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    fn micros(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.t0).as_micros() as u64
    }

    /// Records one item entering the work queue. Must be called *before*
    /// the send that makes the item visible to the batcher — otherwise the
    /// dequeue accounting can run first and leave a permanently stale head
    /// anchor (an empty queue that reads as ever-growing age). A send that
    /// then fails must be rolled back with [`Self::note_send_failed`].
    pub fn note_enqueued(&self, at: Instant) {
        self.queue_depth.fetch_add(1, Ordering::AcqRel);
        // Only claim the head slot when the queue was believed empty —
        // otherwise an older item already anchors the age signal.
        let _ = self.head_enqueued_micros.compare_exchange(
            EMPTY,
            self.micros(at),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Rolls back a [`Self::note_enqueued`] whose send failed (queue full
    /// or disconnected): the item never became visible to the batcher. The
    /// head anchor may transiently keep the failed item's timestamp when
    /// other work is queued — a conservative over-estimate of queue age
    /// that the next real dequeue corrects.
    pub fn note_send_failed(&self) {
        let depth = self
            .queue_depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                Some(d.saturating_sub(1))
            })
            .unwrap_or(1)
            .saturating_sub(1);
        if depth == 0 {
            self.head_enqueued_micros.store(EMPTY, Ordering::Release);
        }
    }

    /// Records one item leaving the work queue; feeds the sojourn signal
    /// into the state machine and returns the observed sojourn. Called by
    /// the batcher thread only.
    pub fn note_dequeued(&self, enqueued_at: Instant, now: Instant) -> Duration {
        let depth = self
            .queue_depth
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |d| {
                Some(d.saturating_sub(1))
            })
            .unwrap_or(1)
            .saturating_sub(1);
        if depth == 0 {
            self.head_enqueued_micros.store(EMPTY, Ordering::Release);
        } else {
            // Anything still queued arrived at or after this item: advance
            // the age anchor to the dequeued item's enqueue time (a slight
            // over-estimate of the head's age — conservative by design).
            self.head_enqueued_micros
                .store(self.micros(enqueued_at), Ordering::Release);
        }
        let sojourn = now.saturating_duration_since(enqueued_at);
        self.metrics.queue_sojourn.observe(sojourn.as_secs_f64());
        let target = if sojourn >= self.policy.shed_sojourn {
            Tier::Shed
        } else if sojourn >= self.policy.brownout_sojourn {
            Tier::Brownout
        } else {
            Tier::Normal
        };
        self.observe_target(target);
        sojourn
    }

    /// Feeds one compute-utilisation observation (pool threads busy per
    /// wall-second over a batch) into the state machine. A no-op when the
    /// utilisation signal is disabled (`brownout_utilisation == 0`).
    pub fn observe_utilisation(&self, util: f64) {
        if self.policy.brownout_utilisation <= 0.0 {
            return;
        }
        let target = if util >= self.policy.brownout_utilisation {
            Tier::Brownout
        } else {
            Tier::Normal
        };
        self.observe_target(target);
    }

    /// The transition function: escalate immediately, recover one tier per
    /// `recovery_streak` consecutive healthy observations. Single-writer
    /// (the batcher thread).
    fn observe_target(&self, target: Tier) {
        let cur = Tier::from_u8(self.tier.load(Ordering::Acquire));
        let next = if target >= cur {
            self.healthy_streak.store(0, Ordering::Release);
            target
        } else {
            let streak = self.healthy_streak.fetch_add(1, Ordering::AcqRel) + 1;
            if streak >= self.policy.recovery_streak {
                self.healthy_streak.store(0, Ordering::Release);
                Tier::from_u8((cur as u8).saturating_sub(1))
            } else {
                cur
            }
        };
        self.tier.store(next as u8, Ordering::Release);
        self.metrics
            .degradation_tier
            .store(next as u64, Ordering::Relaxed);
    }

    /// Age of the oldest queued work (zero when the queue is empty) — the
    /// instantaneous admission signal, valid even when the batcher is
    /// wedged in a long batch and produces no fresh observations.
    pub fn queue_wait(&self, now: Instant) -> Duration {
        let head = self.head_enqueued_micros.load(Ordering::Acquire);
        if head == EMPTY {
            return Duration::ZERO;
        }
        Duration::from_micros(self.micros(now).saturating_sub(head))
    }

    /// The effective tier at `now`: the state machine's tier, escalated by
    /// the instantaneous queue age and by worker death.
    pub fn tier(&self, now: Instant) -> Tier {
        if !self.worker_healthy.load(Ordering::Acquire) {
            return Tier::Shed;
        }
        let stored = Tier::from_u8(self.tier.load(Ordering::Acquire));
        let wait = self.queue_wait(now);
        let instant = if wait >= self.policy.shed_sojourn {
            Tier::Shed
        } else if wait >= self.policy.brownout_sojourn {
            Tier::Brownout
        } else {
            Tier::Normal
        };
        stored.max(instant)
    }

    /// Whether an incoming `/predict` should be refused outright. Shed
    /// refuses only while there is an actual backlog (or the worker is
    /// gone): once the queue drains, probe requests are admitted even at
    /// stored-tier Shed — their healthy sojourn observations are the only
    /// signal that can drive the recovery streak, so a hard refusal would
    /// otherwise wedge the server at Shed forever.
    pub fn should_shed_predict(&self, now: Instant) -> bool {
        if !self.worker_healthy.load(Ordering::Acquire) {
            return true;
        }
        self.tier(now) == Tier::Shed && self.queue_depth.load(Ordering::Acquire) > 0
    }

    /// Marks the model worker unhealthy (batcher exit, channel disconnect,
    /// injected death). The tier reads as Shed from now on.
    pub fn mark_worker_unhealthy(&self) {
        self.worker_healthy.store(false, Ordering::Release);
        self.metrics
            .degradation_tier
            .store(Tier::Shed as u64, Ordering::Relaxed);
    }

    /// Whether the model worker is still believed healthy.
    pub fn worker_healthy(&self) -> bool {
        self.worker_healthy.load(Ordering::Acquire)
    }

    /// Admits one `/predict` under the concurrency cap, or refuses.
    pub fn try_acquire_predict(&self) -> Option<InflightGuard<'_>> {
        Self::acquire(&self.inflight_predict, self.policy.max_inflight_predict)
    }

    /// Admits one `/ingest` under the concurrency cap, or refuses.
    pub fn try_acquire_ingest(&self) -> Option<InflightGuard<'_>> {
        Self::acquire(&self.inflight_ingest, self.policy.max_inflight_ingest)
    }

    fn acquire<'a>(counter: &'a AtomicUsize, cap: usize) -> Option<InflightGuard<'a>> {
        counter
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < cap.max(1)).then_some(n + 1)
            })
            .ok()
            .map(|_| InflightGuard { counter })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(policy: OverloadPolicy) -> OverloadState {
        OverloadState::new(policy, Arc::new(Metrics::default()))
    }

    fn policy() -> OverloadPolicy {
        OverloadPolicy {
            brownout_sojourn: Duration::from_millis(50),
            shed_sojourn: Duration::from_millis(250),
            recovery_streak: 3,
            ..OverloadPolicy::default()
        }
    }

    #[test]
    fn escalates_immediately_and_recovers_after_a_streak() {
        let s = state(policy());
        let now = Instant::now();
        assert_eq!(s.tier(now), Tier::Normal);
        s.observe_target(Tier::Shed);
        assert_eq!(s.tier(now), Tier::Shed);
        // Two healthy observations are not enough to step down…
        s.observe_target(Tier::Normal);
        s.observe_target(Tier::Normal);
        assert_eq!(s.tier(now), Tier::Shed);
        // …the third steps down exactly one tier.
        s.observe_target(Tier::Normal);
        assert_eq!(s.tier(now), Tier::Brownout);
        // Three more reach Normal: bounded recovery in 2 × streak.
        for _ in 0..3 {
            s.observe_target(Tier::Normal);
        }
        assert_eq!(s.tier(now), Tier::Normal);
    }

    #[test]
    fn a_bad_observation_resets_the_recovery_streak() {
        let s = state(policy());
        s.observe_target(Tier::Brownout);
        s.observe_target(Tier::Normal);
        s.observe_target(Tier::Normal);
        s.observe_target(Tier::Brownout); // streak broken
        s.observe_target(Tier::Normal);
        s.observe_target(Tier::Normal);
        assert_eq!(s.tier(Instant::now()), Tier::Brownout);
        s.observe_target(Tier::Normal);
        assert_eq!(s.tier(Instant::now()), Tier::Normal);
    }

    #[test]
    fn sojourn_observations_drive_the_tier() {
        let s = state(policy());
        let t = Instant::now();
        // 300ms sojourn (>= shed threshold) escalates straight to Shed.
        let sojourn = s.note_dequeued(t, t + Duration::from_millis(300));
        assert_eq!(sojourn, Duration::from_millis(300));
        assert_eq!(s.tier(t), Tier::Shed);
        // 100ms sojourns are in the brownout band: they hold Shed back
        // from recovering only until the streak of sub-brownout ones.
        for _ in 0..6 {
            s.note_dequeued(t, t + Duration::from_millis(1));
        }
        assert_eq!(s.tier(t), Tier::Normal);
    }

    #[test]
    fn queue_wait_tracks_oldest_enqueue_and_escalates_admission() {
        let s = state(policy());
        let t = Instant::now();
        assert_eq!(s.queue_wait(t), Duration::ZERO);
        s.note_enqueued(t);
        // A later enqueue does not move the head anchor.
        s.note_enqueued(t + Duration::from_millis(10));
        let wait = s.queue_wait(t + Duration::from_millis(300));
        assert!(wait >= Duration::from_millis(299), "{wait:?}");
        // Stored tier is still Normal (no dequeues), yet admission sees
        // Shed through the instantaneous signal.
        assert_eq!(s.tier(t + Duration::from_millis(300)), Tier::Shed);
        // Draining both items empties the signal.
        s.note_dequeued(t, t + Duration::from_millis(301));
        s.note_dequeued(
            t + Duration::from_millis(10),
            t + Duration::from_millis(301),
        );
        assert_eq!(s.queue_wait(t + Duration::from_millis(302)), Duration::ZERO);
    }

    #[test]
    fn failed_send_rolls_back_the_queue_age_anchor() {
        let s = state(policy());
        let t = Instant::now();
        s.note_enqueued(t);
        s.note_send_failed();
        assert_eq!(
            s.queue_wait(t + Duration::from_secs(5)),
            Duration::ZERO,
            "a rolled-back enqueue must not read as queue age"
        );
        assert_eq!(s.tier(t + Duration::from_secs(5)), Tier::Normal);
    }

    #[test]
    fn worker_death_reads_as_shed() {
        let s = state(policy());
        assert!(s.worker_healthy());
        s.mark_worker_unhealthy();
        assert_eq!(s.tier(Instant::now()), Tier::Shed);
        assert!(s.should_shed_predict(Instant::now()));
    }

    #[test]
    fn shed_admits_probes_once_the_backlog_drains() {
        let s = state(policy());
        let t = Instant::now();
        // A 300ms sojourn pins the stored tier at Shed…
        s.note_dequeued(t, t + Duration::from_millis(300));
        assert_eq!(s.tier(t), Tier::Shed);
        // …but with an empty queue, predicts are admitted as probes: the
        // resulting observations are the only path back to Normal.
        assert!(!s.should_shed_predict(t));
        // While a backlog exists, Shed refuses.
        s.note_enqueued(t);
        assert!(s.should_shed_predict(t));
        s.note_dequeued(t, t + Duration::from_millis(1));
        assert!(!s.should_shed_predict(t));
    }

    #[test]
    fn inflight_caps_enforce_and_release() {
        let s = state(OverloadPolicy {
            max_inflight_predict: 2,
            ..policy()
        });
        let a = s.try_acquire_predict();
        let b = s.try_acquire_predict();
        assert!(a.is_some() && b.is_some());
        assert!(s.try_acquire_predict().is_none(), "cap must refuse a third");
        drop(a);
        assert!(s.try_acquire_predict().is_some(), "release must reopen");
    }

    #[test]
    fn utilisation_signal_escalates_only_when_enabled() {
        let off = state(policy());
        off.observe_utilisation(100.0);
        assert_eq!(off.tier(Instant::now()), Tier::Normal);
        let on = state(OverloadPolicy {
            brownout_utilisation: 2.0,
            ..policy()
        });
        on.observe_utilisation(2.5);
        assert_eq!(on.tier(Instant::now()), Tier::Brownout);
    }
}
