//! The model registry: loads checkpoints, validates them against their
//! configuration, and executes batched predictions and online ingestion.
//!
//! The registry lives on the single worker thread (the autograd graph is
//! `Rc`-based and therefore not `Send`), so it is built *on* that thread
//! from a [`ModelSpec`] list; startup errors are reported back through a
//! channel before the server starts accepting traffic.
//!
//! With durability enabled ([`Registry::enable_durability`]) the registry
//! also owns the ingest [`Wal`]: recovery loads the last compaction
//! snapshot, replays the log's intact frames, and every subsequent ingest
//! is applied → logged → group-commit fsynced → only then acknowledged.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use logcl_core::model::SharedEncoding;
use logcl_core::serving_snapshot::SERVING_SNAPSHOT_VERSION;
use logcl_core::{
    trainer, DedupEntry, EncoderState, EvalContext, LogCl, LogClConfig, ModelParamSnapshot,
    ServingSnapshot, ShardSpec, SoftmaxStat, TrainOptions,
};
use logcl_tensor::serialize::Checkpoint;
use logcl_tkg::quad::Quad;
use logcl_tkg::{DatasetExtension, HistoryIndex, Snapshot, TkgDataset};

use crate::batcher::{
    BatchHandler, IngestJob, IngestOutcome, PredictJob, PredictOutcome, ServeError, ShardDetail,
};
use crate::cache::EncodingCache;
use crate::error::StartError;
use crate::metrics::Metrics;
use crate::shed::{OverloadState, Tier};
use crate::wal::{Wal, WalRecord};

/// Log file name inside the durability directory.
pub const WAL_FILE: &str = "ingest.wal";
/// Compaction-snapshot file name inside the durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.ckpt";
/// How many ingest ids the idempotency window remembers (oldest evicted).
pub const DEDUP_WINDOW: usize = 1024;

/// Everything needed to materialise one served model (all fields are
/// `Send`, unlike the model itself).
pub struct ModelSpec {
    /// Registry key; `/predict` bodies select it via `"model"` (default
    /// `"default"`).
    pub name: String,
    /// Model configuration; must match the checkpoint's fingerprint.
    pub cfg: LogClConfig,
    /// Pre-trained parameters to restore, validated on load.
    pub checkpoint: Option<Checkpoint>,
    /// Train from scratch at startup when no checkpoint is given.
    pub train: Option<TrainOptions>,
}

/// A cached query-independent forward state for one timestamp.
///
/// `history: None` marks a head entry (query at the live horizon): it reads
/// the registry-wide incrementally-advanced [`HistoryIndex`] instead of a
/// pinned per-timestamp copy. Ingestion invalidates every entry at or past
/// the ingested timestamp before the shared index moves on, so a surviving
/// `None` entry is always consistent with it.
struct CachedEncoding {
    shared: SharedEncoding,
    history: Option<HistoryIndex>,
}

struct ModelEntry {
    name: String,
    model: LogCl,
    cache: EncodingCache<CachedEncoding>,
    /// The incrementally-advanced streaming encoder state (always equal to
    /// what a from-scratch build over the current parameters + snapshots
    /// would produce; head ingests advance it in O(Δ)).
    state: EncoderState,
}

/// Registry tunables that aren't shared handles (bundled so
/// [`Registry::build`] stays readable as knobs accumulate).
#[derive(Debug, Clone, Copy)]
pub struct RegistryOptions {
    /// Fuse each batch's unique queries into one `forward_queries` call.
    pub fused: bool,
    /// Cached snapshot encodings retained per model.
    pub cache_capacity: usize,
    /// Max online fine-tuning gradient steps per `update:true` ingest
    /// (`0` disables online adaptation entirely).
    pub online_steps: usize,
    /// Score only this entity shard's candidate range (`None` = the whole
    /// vocabulary, i.e. ordinary single-node serving).
    pub shard: Option<ShardSpec>,
}

impl Default for RegistryOptions {
    fn default() -> Self {
        Self {
            fused: false,
            cache_capacity: 16,
            online_steps: 1,
            shard: None,
        }
    }
}

/// Insertion-ordered idempotency window: remembers the outcome acked for
/// each recent `X-LogCL-Ingest-Id` so a retry replays the answer, not the
/// work. Bounded at [`DEDUP_WINDOW`]; the oldest id is evicted first.
#[derive(Default)]
struct DedupWindow {
    map: BTreeMap<String, IngestOutcome>,
    order: VecDeque<String>,
}

impl DedupWindow {
    fn get(&self, id: &str) -> Option<&IngestOutcome> {
        self.map.get(id)
    }

    fn insert(&mut self, id: String, outcome: IngestOutcome) {
        if self.map.insert(id.clone(), outcome).is_none() {
            self.order.push_back(id);
            while self.order.len() > DEDUP_WINDOW {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    fn to_entries(&self) -> Vec<DedupEntry> {
        self.order
            .iter()
            .filter_map(|id| {
                self.map.get(id).map(|o| DedupEntry {
                    id: id.clone(),
                    appended: o.appended,
                    invalidated: o.invalidated,
                    updated: o.updated,
                    horizon: o.horizon,
                })
            })
            .collect()
    }

    fn from_entries(entries: &[DedupEntry]) -> Self {
        let mut window = DedupWindow::default();
        for e in entries {
            window.insert(
                e.id.clone(),
                IngestOutcome {
                    appended: e.appended,
                    invalidated: e.invalidated,
                    updated: e.updated,
                    horizon: e.horizon,
                    // An entry persisted in a durable snapshot was, by
                    // construction, durably acknowledged.
                    durable: true,
                    deduplicated: false,
                },
            );
        }
        window
    }
}

/// The registry's durable-ingest state (present only when the server was
/// started with a WAL directory).
struct DurableState {
    wal: Wal,
    dir: PathBuf,
    /// Compact (snapshot + truncate) after this many logged ingests
    /// (`0` = never compact automatically).
    compact_every: u64,
    /// Frames currently in the log (reset to 0 by compaction).
    since_compact: u64,
}

/// What startup recovery found; surfaced by [`Registry::enable_durability`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whether a compaction snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Facts restored from the snapshot's dataset extension.
    pub snapshot_facts: usize,
    /// Intact WAL frames replayed.
    pub replayed_frames: usize,
    /// Facts appended by WAL replay (after dedup against the snapshot).
    pub replayed_facts: usize,
    /// Torn-tail bytes truncated off the log.
    pub truncated_bytes: u64,
}

/// The worker-side model store and [`BatchHandler`] implementation.
pub struct Registry {
    ds: TkgDataset,
    snapshots: Vec<Snapshot>,
    entries: Vec<ModelEntry>,
    metrics: Arc<Metrics>,
    /// Mirrors `ds.num_times` for handler threads (default query time).
    horizon: Arc<AtomicUsize>,
    /// Fuse each batch's unique queries into one `forward_queries` call
    /// (faster, but the global encoder then unions the batch's query
    /// subgraphs — answers may depend on co-batched requests). Off by
    /// default: exact single-query semantics, encoding still shared.
    fused: bool,
    /// Degradation tier and brownout policy, shared with the admission
    /// path; in Brownout predictions are answered with a capped top-k and
    /// (optionally) without the global encoder.
    overload: Arc<OverloadState>,
    /// The global history vocabulary over every consumed snapshot, advanced
    /// in place by head ingests (rebuilt only on the rare backfill path).
    /// Head predictions and head online adaptation read it directly.
    head_history: HistoryIndex,
    /// Max online fine-tuning steps per `update:true` ingest.
    online_steps: usize,
    /// Entity-shard assignment with its resolved candidate range
    /// (`None` = single-node serving over the full vocabulary).
    shard: Option<(ShardSpec, (usize, usize))>,
    /// Durable-ingest state; `None` = memory-only ingestion.
    durable: Option<DurableState>,
    /// Idempotency window (active with or without durability).
    dedup: DedupWindow,
    /// Test-split length of the base dataset at build time, before any
    /// recovery or ingestion — the anchor compaction snapshots diff against.
    base_test_len: usize,
    /// Ingests applied since the base (monotone across compactions).
    applied_ingests: u64,
}

/// Scores `queries` over the shared encoding, honouring the brownout
/// local-only fallback and (in shard mode) restricting the decode to
/// `entity_range`. Returns one score vector per query — full `|E|`-length
/// in single-node mode, the `[lo, hi)` slice in shard mode. An empty shard
/// range yields empty slices without touching the model (a zero-row
/// candidate matmul has nothing to compute).
fn score_queries(
    model: &mut LogCl,
    shared: &SharedEncoding,
    history: &HistoryIndex,
    queries: &[Quad],
    skip_global: bool,
    entity_range: Option<(usize, usize)>,
) -> Vec<Vec<f32>> {
    if let Some((lo, hi)) = entity_range {
        if lo == hi {
            return vec![Vec::new(); queries.len()];
        }
    }
    let out = match (entity_range, skip_global) {
        (Some(range), true) => {
            model.forward_queries_local_only_sharded(shared, history, queries, range)
        }
        (Some(range), false) => model.forward_queries_sharded(shared, history, queries, range),
        (None, true) => model.forward_queries_local_only(shared, history, queries),
        (None, false) => model.forward_queries(shared, history, queries, false),
    };
    let logits = out.logits.to_tensor();
    (0..queries.len()).map(|i| logits.row(i).to_vec()).collect()
}

impl Registry {
    /// Builds every model, restoring and validating checkpoints; returns a
    /// typed [`StartError`] (not a panic) for any mismatch.
    pub fn build(
        ds: TkgDataset,
        specs: Vec<ModelSpec>,
        metrics: Arc<Metrics>,
        horizon: Arc<AtomicUsize>,
        options: RegistryOptions,
        overload: Arc<OverloadState>,
    ) -> Result<Self, StartError> {
        if specs.is_empty() {
            return Err(StartError::NoModels);
        }
        let snapshots = ds.snapshots();
        let mut entries = Vec::with_capacity(specs.len());
        for spec in specs {
            #[cfg(feature = "fault-inject")]
            {
                if crate::fault::checkpoint_read_error() {
                    return Err(StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: logcl_tensor::serialize::CheckpointError::Corrupt(
                            "injected checkpoint read fault".into(),
                        ),
                    });
                }
            }
            let mut model = LogCl::new(&ds, spec.cfg.clone());
            if let Some(ckpt) = &spec.checkpoint {
                ckpt.validate_meta(&spec.cfg.variant_name(), &spec.cfg.fingerprint())
                    .map_err(|e| StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: e,
                    })?;
                logcl_tensor::serialize::restore(&model.params, ckpt).map_err(|e| {
                    StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: e,
                    }
                })?;
            } else if let Some(opts) = &spec.train {
                trainer::train(&mut model, &ds, opts).map_err(|e| StartError::Train {
                    model: spec.name.clone(),
                    source: e,
                })?;
            }
            // Boot the streaming state over the full base history; every
            // later head ingest advances it in O(Δ) instead of re-encoding.
            let state = model.init_encoder_state(&snapshots);
            metrics
                .encoder_state_rebuilds
                .boot
                .fetch_add(1, Ordering::Relaxed);
            entries.push(ModelEntry {
                name: spec.name,
                model,
                cache: EncodingCache::new(options.cache_capacity),
                state,
            });
        }
        let head_history = HistoryIndex::build(&snapshots);
        horizon.store(ds.num_times, Ordering::SeqCst);
        metrics
            .encoder_state_horizon
            .store(ds.num_times as u64, Ordering::Relaxed);
        let base_test_len = ds.test.len();
        let num_entities = ds.num_entities;
        Ok(Self {
            ds,
            snapshots,
            entries,
            metrics,
            horizon,
            fused: options.fused,
            overload,
            head_history,
            online_steps: options.online_steps,
            shard: options.shard.map(|s| (s, s.range(num_entities))),
            durable: None,
            dedup: DedupWindow::default(),
            base_test_len,
            applied_ingests: 0,
        })
    }

    /// Model names in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    fn entry_index(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Scores one group of same-`(model, t)` jobs against the shared (and
    /// cached) snapshot encoding, answering every job.
    fn predict_group(&mut self, group: Vec<PredictJob>) {
        // The batcher only forms non-empty groups; an empty one is a no-op,
        // not a panic.
        let Some(first) = group.first() else {
            return;
        };
        let t = first.t;
        let Some(idx) = self.entry_index(&first.model) else {
            let err = ServeError::not_found(format!("unknown model {:?}", first.model));
            for job in group {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        };

        // Per-job validation; invalid jobs are answered and dropped here so
        // they can never panic the model.
        let mut valid = Vec::with_capacity(group.len());
        for job in group {
            match logcl_core::validate_query(&self.ds, job.s, job.r, job.t) {
                Ok(()) => valid.push(job),
                Err(e) => {
                    let _ = job.reply.send(Err(ServeError::bad_request(e.to_string())));
                }
            }
        }
        if valid.is_empty() {
            return;
        }
        let batch_size = valid.len();

        // Brownout degradation (crate::shed): under pressure, cap the
        // effective top-k and — when the model has a local encoder to fall
        // back on — skip the per-query global subgraph encoder entirely, so
        // the cached snapshot encoding alone answers the batch (the decoder
        // λ-mixture, Eq. 18–19, collapses to its local term).
        let brownout = self.overload.tier(Instant::now()) >= Tier::Brownout;
        let policy = self.overload.policy();
        let k_cap = if brownout {
            policy.brownout_k_cap.max(1)
        } else {
            usize::MAX
        };
        // Only meaningful for models that actually have a local encoding to
        // fall back on; global-only variants keep full-fidelity decoding.
        let skip_global = brownout
            && policy.brownout_skip_global
            && self.entries[idx].model.cfg.use_local
            && self.entries[idx].model.cfg.use_global;

        // Snapshot-encoding cache: compute once per (model, t), reuse for
        // every other request in this batch and every later one at `t`.
        let at_head = t == self.ds.num_times;
        let entry = &mut self.entries[idx];
        let cache_hit = entry.cache.contains(t);
        if cache_hit {
            self.metrics
                .cache_hits
                .fetch_add(batch_size as u64, Ordering::Relaxed);
        } else {
            let (shared, history) = if at_head {
                // Head query: the streaming state already holds the fully
                // evolved encoding — materialise it instead of re-encoding
                // the window, and read the shared advanced history index.
                (entry.model.shared_from_state(&entry.state), None)
            } else {
                // Historical query: encode the query-relative window from
                // scratch and pin the history prefix it was scored against.
                let mut history = HistoryIndex::new();
                for snap in &self.snapshots[..t] {
                    history.advance(snap);
                }
                (entry.model.encode(&self.snapshots, t, false), Some(history))
            };
            entry.cache.insert(t, CachedEncoding { shared, history });
            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            if batch_size > 1 {
                self.metrics
                    .cache_hits
                    .fetch_add(batch_size as u64 - 1, Ordering::Relaxed);
            }
        }
        let Some(cached) = entry.cache.get(t) else {
            // Unreachable by construction (inserted above when absent), but
            // a cache miss here must degrade to an error reply, not a panic
            // that takes the model worker down with it.
            let err = ServeError {
                status: 500,
                message: "encoding cache lost the entry it just admitted".into(),
            };
            for job in valid {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        };
        let history = cached.history.as_ref().unwrap_or(&self.head_history);

        // Unique (s, r) pairs: concurrent requests for the same hot query
        // share one decode whichever mode is active.
        let mut uniques: Vec<(usize, usize)> = Vec::new();
        for job in &valid {
            if !uniques.contains(&(job.s, job.r)) {
                uniques.push((job.s, job.r));
            }
        }

        // In `--shard i/N` mode every decode is restricted to this worker's
        // candidate range: the scores below are then *slices* (`scores[j]`
        // is the logit of global entity `lo + j`), bit-identical per entity
        // to the single-node run.
        let entity_range = self.shard.map(|(_, range)| range);
        let mut scores: Vec<Vec<f32>> = Vec::with_capacity(uniques.len());
        if self.fused {
            // One forward_queries call for the whole batch — the repo's
            // batched-evaluation semantics (query subgraphs unioned).
            let queries: Vec<Quad> = uniques
                .iter()
                .map(|&(s, r)| Quad::new(s, r, 0, t))
                .collect();
            scores = score_queries(
                &mut entry.model,
                &cached.shared,
                history,
                &queries,
                skip_global,
                entity_range,
            );
        } else {
            // Exact mode: per-unique-query decode over the shared encoding —
            // bit-identical to sequential `predict_topk_stream` at the head
            // and `predict_topk` at historical timestamps, independent of
            // whatever else happens to be in the batch.
            for &(s, r) in &uniques {
                let query = [Quad::new(s, r, 0, t)];
                let mut one = score_queries(
                    &mut entry.model,
                    &cached.shared,
                    history,
                    &query,
                    skip_global,
                    entity_range,
                );
                scores.push(one.remove(0));
            }
        }

        for job in valid {
            let scored = uniques
                .iter()
                .position(|&p| p == (job.s, job.r))
                .and_then(|u| scores.get(u));
            let Some(scored) = scored else {
                // Every valid job seeded `uniques`, so this cannot happen —
                // but answering 500 beats poisoning the worker thread.
                let _ = job.reply.send(Err(ServeError {
                    status: 500,
                    message: "batch bookkeeping lost a query's scores".into(),
                }));
                continue;
            };
            let k_eff = job.k.min(k_cap);
            let degraded = skip_global || k_eff < job.k;
            if degraded {
                self.metrics
                    .degraded_responses
                    .fetch_add(1, Ordering::Relaxed);
            }
            let (predictions, shard) = match self.shard {
                Some((spec, (lo, hi))) => {
                    // Shard-local ranking + softmax partials; probabilities
                    // are over this worker's range only, and the router
                    // recombines global ones from the per-shard stats.
                    let stat = SoftmaxStat::from_scores(scored);
                    let ranked = logcl_core::shard_topk(scored, lo, k_eff);
                    let predictions = ranked
                        .into_iter()
                        .map(|c| logcl_core::Prediction {
                            entity: c.entity,
                            name: self.ds.entity_name(c.entity),
                            probability: stat.probability(c.score),
                            score: c.score,
                        })
                        .collect();
                    (predictions, Some(ShardDetail { spec, lo, hi, stat }))
                }
                None => (logcl_core::topk_from_scores(&self.ds, scored, k_eff), None),
            };
            let _ = job.reply.send(Ok(PredictOutcome {
                predictions,
                batch_size,
                cache_hit,
                degraded,
                shard,
            }));
        }
    }

    /// Fail-closed admission for one ingest: resolves the model and checks
    /// every precondition *before* anything is mutated or logged. Returns
    /// the entry index of the target model.
    fn validate_ingest(
        &self,
        model: &str,
        t: usize,
        facts: &[(usize, usize, usize)],
    ) -> Result<usize, ServeError> {
        let Some(idx) = self.entry_index(model) else {
            return Err(ServeError::not_found(format!("unknown model {model:?}")));
        };
        if facts.is_empty() {
            return Err(ServeError::bad_request("no facts given"));
        }
        if t > self.ds.num_times {
            return Err(ServeError::bad_request(format!(
                "time {} would leave a gap: horizon is {} (use t <= horizon)",
                t, self.ds.num_times
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for &(s, r, o) in facts {
            if s >= self.ds.num_entities || o >= self.ds.num_entities {
                return Err(ServeError::bad_request(format!(
                    "entity out of range in fact ({s}, {r}, {o}): |E| = {}",
                    self.ds.num_entities
                )));
            }
            if r >= self.ds.num_rels {
                return Err(ServeError::bad_request(format!(
                    "relation out of range in fact ({s}, {r}, {o}): |R| = {} \
                     (ingest base-direction facts only)",
                    self.ds.num_rels
                )));
            }
            if !seen.insert((s, r, o)) {
                return Err(ServeError::bad_request(format!(
                    "fact ({s}, {r}, {o}) appears more than once in the request body"
                )));
            }
        }
        Ok(idx)
    }

    /// Applies one validated ingest: appends facts at `t`, advances (or
    /// rebuilds) the streaming encoder states and the global history index,
    /// invalidates affected cache entries, and optionally runs a bounded
    /// online fine-tuning loop (Fig. 10). Infallible after
    /// [`Registry::validate_ingest`] — and idempotent: re-applying the same
    /// facts appends nothing and (since `appended == 0`) skips both the
    /// online loop and the structure rebuilds, which is what makes WAL
    /// replay over a compaction snapshot crash-safe.
    ///
    /// Cost model: a head append (`t == |T|`) is O(Δ) — one
    /// `HistoryIndex::advance` plus one `advance_encoder_state` per model.
    /// A backfill (`t < |T|`) mutates an already-consumed snapshot, so the
    /// advance-only structures are rebuilt from scratch (rare path, counted
    /// in `logcl_encoder_state_rebuilds_total`).
    fn apply_ingest(
        &mut self,
        idx: usize,
        t: usize,
        facts: &[(usize, usize, usize)],
        update: bool,
    ) -> IngestOutcome {
        let was_head = t == self.ds.num_times;
        // Append new (deduplicated) facts to the test split — snapshots and
        // time-aware filtering read all splits uniformly.
        let existing: std::collections::BTreeSet<(usize, usize, usize)> = self
            .ds
            .all_quads()
            .iter()
            .filter(|q| q.t == t)
            .map(|q| q.triple())
            .collect();
        let fresh: Vec<Quad> = facts
            .iter()
            .filter(|f| !existing.contains(f))
            .map(|&(s, r, o)| Quad::new(s, r, o, t))
            .collect();
        let appended = fresh.len();
        self.ds.test.extend_from_slice(&fresh);
        self.ds.num_times = self.ds.num_times.max(t + 1);
        self.snapshots = self.ds.snapshots();
        self.horizon.store(self.ds.num_times, Ordering::SeqCst);
        self.applied_ingests += 1;
        self.metrics
            .ingested_facts
            .fetch_add(appended as u64, Ordering::Relaxed);

        // Structural invalidation: encodings at and after t read (or are
        // about to read) the changed snapshot.
        let mut invalidated = 0;
        for entry in &mut self.entries {
            invalidated += entry.cache.invalidate_from(t);
        }

        // Bounded online fine-tuning on the fresh facts, before the head
        // history advances past them (`head_history` covers exactly `[..t]`
        // here when `t` closes the head snapshot). The loss guard inside
        // `online_adapt` restores the parameters bit-exactly on divergence,
        // so a rollback leaves caches and encoder states valid.
        let mut report = trainer::OnlineAdaptReport::default();
        if update && appended > 0 && self.online_steps > 0 {
            let opts = trainer::OnlineAdaptOptions {
                max_steps: self.online_steps,
                ..Default::default()
            };
            report = if was_head {
                let ctx = EvalContext {
                    ds: &self.ds,
                    snapshots: &self.snapshots,
                    history: &self.head_history,
                    t,
                };
                trainer::online_adapt(&mut self.entries[idx].model, &ctx, &fresh, &opts)
            } else {
                let history = HistoryIndex::build(&self.snapshots[..t]);
                let ctx = EvalContext {
                    ds: &self.ds,
                    snapshots: &self.snapshots,
                    history: &history,
                    t,
                };
                trainer::online_adapt(&mut self.entries[idx].model, &ctx, &fresh, &opts)
            };
            self.metrics.online_updates.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .online_steps
                .fetch_add(report.steps as u64, Ordering::Relaxed);
            if report.rolled_back {
                self.metrics
                    .online_rollbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let params_changed = report.steps > 0;
        if params_changed {
            // Weight update: only the adapted model's cached encodings are
            // stale (models do not share parameters), so other models keep
            // every entry below `t`.
            invalidated += self.entries[idx].cache.clear();
        }

        // Incremental advance (the streaming invariant): keep
        // `head_history` and every model's `EncoderState` equal to what a
        // from-scratch build over (parameters, snapshots) would produce.
        let advance_started = Instant::now();
        if was_head {
            if params_changed {
                // The adapted model's state was evolved under the old
                // parameters; rebuild it under the new ones (the rebuild
                // also consumes the just-closed snapshot, so the advance
                // loop below skips it via the horizon check).
                let rebuilt = self.entries[idx].model.init_encoder_state(&self.snapshots);
                self.entries[idx].state = rebuilt;
                self.metrics
                    .encoder_state_rebuilds
                    .weight_update
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.head_history.advance(&self.snapshots[t]);
            for entry in &mut self.entries {
                if entry.state.horizon == t {
                    entry
                        .model
                        .advance_encoder_state(&mut entry.state, &self.snapshots[t]);
                }
            }
        } else if appended > 0 {
            // Backfill: an already-consumed snapshot changed under the
            // advance-only structures, so O(Δ) is off the table — rebuild
            // them over the amended timeline (the rare path by design).
            self.head_history = HistoryIndex::build(&self.snapshots);
            for entry in &mut self.entries {
                let rebuilt = entry.model.init_encoder_state(&self.snapshots);
                entry.state = rebuilt;
            }
            self.metrics
                .encoder_state_rebuilds
                .backfill
                .fetch_add(self.entries.len() as u64, Ordering::Relaxed);
        }
        self.metrics
            .ingest_advance
            .observe(advance_started.elapsed().as_secs_f64());

        self.metrics
            .cache_invalidations
            .fetch_add(invalidated as u64, Ordering::Relaxed);
        self.metrics
            .encoder_state_horizon
            .store(self.ds.num_times as u64, Ordering::Relaxed);
        let hits = self.metrics.cache_hits.load(Ordering::Relaxed);
        let misses = self.metrics.cache_misses.load(Ordering::Relaxed);
        if let Some(ppm) = (hits * 1_000_000).checked_div(hits + misses) {
            self.metrics
                .post_ingest_hit_ratio_ppm
                .store(ppm, Ordering::Relaxed);
        }

        IngestOutcome {
            appended,
            invalidated,
            updated: params_changed,
            horizon: self.ds.num_times,
            durable: false,
            deduplicated: false,
        }
    }

    /// Turns on durable ingestion rooted at `dir` and runs crash recovery:
    /// load the compaction snapshot if one exists (dataset extension, model
    /// parameters, idempotency window), then replay the WAL's intact frames
    /// in order — a torn tail is truncated, everything else is applied
    /// through the normal ingest path so recovery is bit-identical to
    /// having served those requests. Fail-closed: recovered state that
    /// contradicts the base refuses startup instead of dropping acks.
    pub fn enable_durability(
        &mut self,
        dir: &Path,
        compact_every: u64,
    ) -> Result<RecoveryStats, StartError> {
        let mut stats = RecoveryStats::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let snap = ServingSnapshot::load(&snap_path).map_err(|e| StartError::Checkpoint {
                model: "<serving-snapshot>".into(),
                source: e,
            })?;
            snap.extension
                .apply(&mut self.ds)
                .map_err(|e| StartError::Recovery {
                    context: format!("applying the snapshot's dataset extension: {e}"),
                })?;
            stats.snapshot_loaded = true;
            stats.snapshot_facts = snap.extension.quads.len();
            self.snapshots = self.ds.snapshots();
            self.horizon.store(self.ds.num_times, Ordering::SeqCst);
            for ms in &snap.models {
                let Some(idx) = self.entry_index(&ms.name) else {
                    return Err(StartError::Recovery {
                        context: format!(
                            "snapshot carries parameters for unknown model {:?}",
                            ms.name
                        ),
                    });
                };
                {
                    let entry = &self.entries[idx];
                    ms.checkpoint
                        .validate_meta(
                            &entry.model.cfg.variant_name(),
                            &entry.model.cfg.fingerprint(),
                        )
                        .map_err(|e| StartError::Checkpoint {
                            model: ms.name.clone(),
                            source: e,
                        })?;
                    logcl_tensor::serialize::restore(&entry.model.params, &ms.checkpoint).map_err(
                        |e| StartError::Checkpoint {
                            model: ms.name.clone(),
                            source: e,
                        },
                    )?;
                }
                if let Some(rng) = &ms.rng {
                    // Resume the model's random stream so online adaptation
                    // after the restart continues exactly where the
                    // uninterrupted server would have been.
                    self.entries[idx].model.restore_rng_state(*rng);
                }
                // Prefer the persisted streaming state (bit-exact resume of
                // the pre-crash float stream); fall back to a deterministic
                // rebuild for legacy snapshots or a stale horizon.
                let restored = ms
                    .state
                    .as_ref()
                    .filter(|rec| rec.horizon == self.ds.num_times)
                    .and_then(|rec| EncoderState::from_record(rec).ok());
                match restored {
                    Some(state) => self.entries[idx].state = state,
                    None => {
                        let rebuilt = self.entries[idx].model.init_encoder_state(&self.snapshots);
                        self.entries[idx].state = rebuilt;
                        self.metrics
                            .encoder_state_rebuilds
                            .recovery
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.head_history = HistoryIndex::build(&self.snapshots);
            self.metrics
                .encoder_state_horizon
                .store(self.ds.num_times as u64, Ordering::Relaxed);
            self.dedup = DedupWindow::from_entries(&snap.dedup);
            self.applied_ingests = snap.applied_ingests;
        }

        let opened = Wal::open(dir.join(WAL_FILE)).map_err(|e| StartError::Wal {
            context: "opening the ingest write-ahead log".into(),
            source: e,
        })?;
        stats.truncated_bytes = opened.truncated_bytes;
        stats.replayed_frames = opened.records.len();
        let frames_in_log = opened.records.len() as u64;
        for record in opened.records {
            // A frame whose id the window already remembers predates the
            // snapshot (crash between snapshot write and log truncation):
            // its effect is already restored.
            if let Some(id) = &record.ingest_id {
                if self.dedup.get(id).is_some() {
                    continue;
                }
            }
            let idx = self
                .validate_ingest(&record.model, record.t, &record.facts)
                .map_err(|e| StartError::Recovery {
                    context: format!(
                        "replaying a logged ingest (model {:?}, t {}): {}",
                        record.model, record.t, e.message
                    ),
                })?;
            let outcome = self.apply_ingest(idx, record.t, &record.facts, record.update);
            stats.replayed_facts += outcome.appended;
            if let Some(id) = record.ingest_id {
                let mut remembered = outcome;
                remembered.durable = true;
                self.dedup.insert(id, remembered);
            }
        }
        self.metrics
            .wal_replayed_frames
            .fetch_add(stats.replayed_frames as u64, Ordering::Relaxed);
        self.metrics
            .wal_truncated_bytes
            .fetch_add(stats.truncated_bytes, Ordering::Relaxed);
        self.metrics.wal_recovered_facts.fetch_add(
            (stats.snapshot_facts + stats.replayed_facts) as u64,
            Ordering::Relaxed,
        );
        self.durable = Some(DurableState {
            wal: opened.wal,
            dir: dir.to_path_buf(),
            compact_every,
            since_compact: frames_in_log,
        });
        Ok(stats)
    }

    /// The complete durable state right now, as a compaction snapshot.
    fn snapshot_now(&self) -> ServingSnapshot {
        ServingSnapshot {
            version: SERVING_SNAPSHOT_VERSION,
            extension: DatasetExtension::capture(&self.ds, self.base_test_len),
            models: self
                .entries
                .iter()
                .map(|e| ModelParamSnapshot {
                    name: e.name.clone(),
                    checkpoint: logcl_tensor::serialize::snapshot_with_meta(
                        &e.model.params,
                        &e.model.cfg.variant_name(),
                        &e.model.cfg.fingerprint(),
                    ),
                    // Persist the advanced streaming state + RNG stream so a
                    // restart resumes the exact float stream instead of
                    // re-deriving it (and so ingests applied while the
                    // process was down replay through the same incremental
                    // advance path the live server used).
                    state: Some(e.state.to_record()),
                    rng: Some(e.model.rng_state()),
                })
                .collect(),
            dedup: self.dedup.to_entries(),
            applied_ingests: self.applied_ingests,
        }
    }

    /// Compacts when the log has accumulated `compact_every` frames: write
    /// the snapshot (atomic tmp + fsync + rename), then truncate the log.
    /// A crash between the two steps is safe — replaying the stale frames
    /// over the new snapshot is a no-op (see [`Registry::apply_ingest`]).
    /// Failures leave the previous snapshot + full log intact and are
    /// counted, never escalated: serving continues, the log just grows.
    fn maybe_compact(&mut self) {
        let due = match &self.durable {
            Some(d) => d.compact_every > 0 && d.since_compact >= d.compact_every,
            None => false,
        };
        if !due {
            return;
        }
        let snap = self.snapshot_now();
        let Some(d) = &mut self.durable else {
            return;
        };
        if snap.save(d.dir.join(SNAPSHOT_FILE)).is_err() {
            self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match d.wal.reset() {
            Ok(()) => {
                d.since_compact = 0;
                self.metrics.wal_compactions.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Final flush on shutdown: fsync any unsynced frames. Group commit
    /// syncs after every ingest run, so this is a cheap safety net for the
    /// drain path; errors are counted, not propagated (we are exiting).
    pub fn flush_durability(&mut self) {
        if let Some(d) = &mut self.durable {
            if d.wal.pending() > 0 && d.wal.sync().is_err() {
                self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl BatchHandler for Registry {
    fn handle_predict_group(&mut self, group: Vec<PredictJob>) {
        self.predict_group(group);
    }

    fn handle_ingest(&mut self, job: IngestJob) {
        self.handle_ingest_group(vec![job]);
    }

    /// The durable ingest path: per job — idempotency check, fail-closed
    /// validation, in-memory apply, WAL append — then ONE group-commit
    /// fsync for the whole run, and only after it succeeds are the jobs
    /// acknowledged (and their ids remembered). A WAL failure answers 500
    /// without recording the id: the state is applied in memory but not
    /// durable, and a retry re-converges because `apply_ingest` is
    /// idempotent.
    fn handle_ingest_group(&mut self, jobs: Vec<IngestJob>) {
        // Brownout degradation: online fine-tuning is optional work, shed
        // under pressure like any other. The decision is taken *before* the
        // WAL sees the record so crash replay re-applies exactly what the
        // live path did (`apply_ingest` itself never consults the tier).
        let brownout = self.overload.tier(Instant::now()) >= Tier::Brownout;
        let mut acks = Vec::with_capacity(jobs.len());
        for job in jobs {
            let effective_update = job.update && !brownout;
            if let Some(id) = &job.ingest_id {
                if let Some(remembered) = self.dedup.get(id) {
                    self.metrics
                        .ingest_dedup_hits
                        .fetch_add(1, Ordering::Relaxed);
                    let mut replayed = remembered.clone();
                    replayed.deduplicated = true;
                    let _ = job.reply.send(Ok(replayed));
                    continue;
                }
            }
            let idx = match self.validate_ingest(&job.model, job.t, &job.facts) {
                Ok(idx) => idx,
                Err(e) => {
                    let _ = job.reply.send(Err(e));
                    continue;
                }
            };
            let outcome = self.apply_ingest(idx, job.t, &job.facts, effective_update);
            if self.durable.is_some() {
                let record = WalRecord {
                    model: job.model.clone(),
                    t: job.t,
                    facts: job.facts.clone(),
                    update: effective_update,
                    ingest_id: job.ingest_id.clone(),
                };
                let appended_ok = match &mut self.durable {
                    Some(d) => {
                        let r = d.wal.append(&record);
                        if r.is_ok() {
                            d.since_compact += 1;
                        }
                        r
                    }
                    None => Ok(()),
                };
                if let Err(e) = appended_ok {
                    self.metrics.wal_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(ServeError {
                        status: 500,
                        message: format!(
                            "ingest applied but not logged durably: {e}; retry is safe \
                             (idempotent application)"
                        ),
                    }));
                    continue;
                }
                self.metrics
                    .wal_appended_frames
                    .fetch_add(1, Ordering::Relaxed);
            }
            acks.push((job.reply, outcome, job.ingest_id));
        }

        // Group commit: one fsync covers every frame appended above.
        if !acks.is_empty() {
            if let Some(d) = &mut self.durable {
                if let Err(e) = d.wal.sync() {
                    self.metrics
                        .wal_errors
                        .fetch_add(acks.len() as u64, Ordering::Relaxed);
                    let message = format!(
                        "ingest applied but not fsynced: {e}; retry is safe \
                         (idempotent application)"
                    );
                    for (reply, _, _) in acks {
                        let _ = reply.send(Err(ServeError {
                            status: 500,
                            message: message.clone(),
                        }));
                    }
                    return;
                }
                self.metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }

        let durable = self.durable.is_some();
        for (reply, mut outcome, id) in acks {
            outcome.durable = durable;
            if durable {
                self.metrics.durable_acks.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(id) = id {
                self.dedup.insert(id, outcome.clone());
            }
            let _ = reply.send(Ok(outcome));
        }
        self.maybe_compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tkg::SyntheticPreset;

    fn tiny_cfg() -> LogClConfig {
        LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        }
    }

    fn tiny_ds() -> TkgDataset {
        SyntheticPreset::Icews14.generate_scaled(0.15)
    }

    fn build(specs: Vec<ModelSpec>) -> Result<Registry, StartError> {
        Registry::build(
            tiny_ds(),
            specs,
            Arc::new(Metrics::default()),
            Arc::new(AtomicUsize::new(0)),
            RegistryOptions::default(),
            Arc::new(OverloadState::new(
                crate::shed::OverloadPolicy::default(),
                Arc::new(Metrics::default()),
            )),
        )
    }

    #[test]
    fn rejects_checkpoint_with_wrong_config_fingerprint() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        let ckpt = logcl_tensor::serialize::snapshot_with_meta(
            &model.params,
            "LogCL",
            &tiny_cfg().fingerprint(),
        );
        // Loading under a *different* dim must fail with the fingerprint
        // message, not a shape panic.
        let other = LogClConfig {
            dim: 32,
            ..tiny_cfg()
        };
        let err = build(vec![ModelSpec {
            name: "default".into(),
            cfg: other,
            checkpoint: Some(ckpt),
            train: None,
        }])
        .err()
        .expect("mismatched fingerprint must be rejected");
        assert!(
            matches!(err, StartError::Checkpoint { .. }),
            "expected a checkpoint error, got: {err}"
        );
        assert!(err.to_string().contains("config"), "{err}");
    }

    #[test]
    fn rejects_legacy_checkpoint_with_wrong_shapes_cleanly() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        // Legacy checkpoint: no metadata, so only restore()'s shape check
        // can catch the mismatch — as an error, not a panic.
        let ckpt = logcl_tensor::serialize::snapshot(&model.params);
        let err = build(vec![ModelSpec {
            name: "default".into(),
            cfg: LogClConfig {
                dim: 32,
                ..tiny_cfg()
            },
            checkpoint: Some(ckpt),
            train: None,
        }])
        .err()
        .expect("mismatched shapes must be rejected");
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn weight_update_clears_only_the_updated_models_cache() {
        let mut reg = build(vec![
            ModelSpec {
                name: "a".into(),
                cfg: tiny_cfg(),
                checkpoint: None,
                train: None,
            },
            ModelSpec {
                name: "b".into(),
                cfg: tiny_cfg(),
                checkpoint: None,
                train: None,
            },
        ])
        .unwrap();

        // Warm model a's cache at a historical timestamp (below the head).
        let t0 = reg.ds.num_times - 1;
        let (tx, rx) = std::sync::mpsc::channel();
        reg.predict_group(vec![PredictJob {
            model: "a".into(),
            s: 0,
            r: 0,
            t: t0,
            k: 3,
            deadline: Instant::now() + std::time::Duration::from_secs(30),
            enqueued_at: Instant::now(),
            reply: tx,
        }]);
        rx.recv().unwrap().unwrap();
        assert!(reg.entries[0].cache.contains(t0));

        // Model b ingests at the head with update:true. Its own cache is
        // cleared by the weight update, but model a's historical entry is
        // untouched — the clear is scoped to the adapted model.
        let head = reg.ds.num_times;
        let idx_b = reg.entry_index("b").unwrap();
        let outcome = reg.apply_ingest(idx_b, head, &[(0, 0, 1), (1, 1, 2)], true);
        assert!(outcome.updated, "online adaptation should have stepped");
        assert!(
            reg.entries[0].cache.contains(t0),
            "model a's cache must survive model b's update:true ingest"
        );

        // The streaming invariant held throughout: every state and the
        // shared history index cover the (now extended) full timeline.
        for entry in &reg.entries {
            assert_eq!(entry.state.horizon, reg.ds.num_times);
        }
        assert_eq!(outcome.horizon, head + 1);
    }

    #[test]
    fn accepts_matching_checkpoint_and_publishes_horizon() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        let ckpt = logcl_tensor::serialize::snapshot_with_meta(
            &model.params,
            "LogCL",
            &tiny_cfg().fingerprint(),
        );
        let horizon = Arc::new(AtomicUsize::new(0));
        let reg = Registry::build(
            tiny_ds(),
            vec![ModelSpec {
                name: "default".into(),
                cfg: tiny_cfg(),
                checkpoint: Some(ckpt),
                train: None,
            }],
            Arc::new(Metrics::default()),
            horizon.clone(),
            RegistryOptions::default(),
            Arc::new(OverloadState::new(
                crate::shed::OverloadPolicy::default(),
                Arc::new(Metrics::default()),
            )),
        )
        .unwrap();
        assert_eq!(reg.model_names(), vec!["default".to_string()]);
        assert_eq!(horizon.load(Ordering::SeqCst), reg.ds.num_times);
    }
}
