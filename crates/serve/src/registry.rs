//! The model registry: loads checkpoints, validates them against their
//! configuration, and executes batched predictions and online ingestion.
//!
//! The registry lives on the single worker thread (the autograd graph is
//! `Rc`-based and therefore not `Send`), so it is built *on* that thread
//! from a [`ModelSpec`] list; startup errors are reported back through a
//! channel before the server starts accepting traffic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use logcl_core::model::SharedEncoding;
use logcl_core::{trainer, EvalContext, LogCl, LogClConfig, TrainOptions};
use logcl_tensor::serialize::Checkpoint;
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, Snapshot, TkgDataset};

use crate::batcher::{
    BatchHandler, IngestJob, IngestOutcome, PredictJob, PredictOutcome, ServeError,
};
use crate::cache::EncodingCache;
use crate::error::StartError;
use crate::metrics::Metrics;
use crate::shed::{OverloadState, Tier};

/// Everything needed to materialise one served model (all fields are
/// `Send`, unlike the model itself).
pub struct ModelSpec {
    /// Registry key; `/predict` bodies select it via `"model"` (default
    /// `"default"`).
    pub name: String,
    /// Model configuration; must match the checkpoint's fingerprint.
    pub cfg: LogClConfig,
    /// Pre-trained parameters to restore, validated on load.
    pub checkpoint: Option<Checkpoint>,
    /// Train from scratch at startup when no checkpoint is given.
    pub train: Option<TrainOptions>,
}

/// A cached query-independent forward state for one timestamp.
struct CachedEncoding {
    shared: SharedEncoding,
    history: HistoryIndex,
}

struct ModelEntry {
    name: String,
    model: LogCl,
    cache: EncodingCache<CachedEncoding>,
}

/// The worker-side model store and [`BatchHandler`] implementation.
pub struct Registry {
    ds: TkgDataset,
    snapshots: Vec<Snapshot>,
    entries: Vec<ModelEntry>,
    metrics: Arc<Metrics>,
    /// Mirrors `ds.num_times` for handler threads (default query time).
    horizon: Arc<AtomicUsize>,
    /// Fuse each batch's unique queries into one `forward_queries` call
    /// (faster, but the global encoder then unions the batch's query
    /// subgraphs — answers may depend on co-batched requests). Off by
    /// default: exact single-query semantics, encoding still shared.
    fused: bool,
    /// Degradation tier and brownout policy, shared with the admission
    /// path; in Brownout predictions are answered with a capped top-k and
    /// (optionally) without the global encoder.
    overload: Arc<OverloadState>,
}

impl Registry {
    /// Builds every model, restoring and validating checkpoints; returns a
    /// typed [`StartError`] (not a panic) for any mismatch.
    pub fn build(
        ds: TkgDataset,
        specs: Vec<ModelSpec>,
        metrics: Arc<Metrics>,
        horizon: Arc<AtomicUsize>,
        fused: bool,
        cache_capacity: usize,
        overload: Arc<OverloadState>,
    ) -> Result<Self, StartError> {
        if specs.is_empty() {
            return Err(StartError::NoModels);
        }
        let mut entries = Vec::with_capacity(specs.len());
        for spec in specs {
            #[cfg(feature = "fault-inject")]
            {
                if crate::fault::checkpoint_read_error() {
                    return Err(StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: logcl_tensor::serialize::CheckpointError::Corrupt(
                            "injected checkpoint read fault".into(),
                        ),
                    });
                }
            }
            let mut model = LogCl::new(&ds, spec.cfg.clone());
            if let Some(ckpt) = &spec.checkpoint {
                ckpt.validate_meta(&spec.cfg.variant_name(), &spec.cfg.fingerprint())
                    .map_err(|e| StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: e,
                    })?;
                logcl_tensor::serialize::restore(&model.params, ckpt).map_err(|e| {
                    StartError::Checkpoint {
                        model: spec.name.clone(),
                        source: e,
                    }
                })?;
            } else if let Some(opts) = &spec.train {
                trainer::train(&mut model, &ds, opts).map_err(|e| StartError::Train {
                    model: spec.name.clone(),
                    source: e,
                })?;
            }
            entries.push(ModelEntry {
                name: spec.name,
                model,
                cache: EncodingCache::new(cache_capacity),
            });
        }
        let snapshots = ds.snapshots();
        horizon.store(ds.num_times, Ordering::SeqCst);
        Ok(Self {
            ds,
            snapshots,
            entries,
            metrics,
            horizon,
            fused,
            overload,
        })
    }

    /// Model names in registration order.
    pub fn model_names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    fn entry_index(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    /// Scores one group of same-`(model, t)` jobs against the shared (and
    /// cached) snapshot encoding, answering every job.
    fn predict_group(&mut self, group: Vec<PredictJob>) {
        // The batcher only forms non-empty groups; an empty one is a no-op,
        // not a panic.
        let Some(first) = group.first() else {
            return;
        };
        let t = first.t;
        let Some(idx) = self.entry_index(&first.model) else {
            let err = ServeError::not_found(format!("unknown model {:?}", first.model));
            for job in group {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        };

        // Per-job validation; invalid jobs are answered and dropped here so
        // they can never panic the model.
        let mut valid = Vec::with_capacity(group.len());
        for job in group {
            match logcl_core::validate_query(&self.ds, job.s, job.r, job.t) {
                Ok(()) => valid.push(job),
                Err(e) => {
                    let _ = job.reply.send(Err(ServeError::bad_request(e.to_string())));
                }
            }
        }
        if valid.is_empty() {
            return;
        }
        let batch_size = valid.len();

        // Brownout degradation (crate::shed): under pressure, cap the
        // effective top-k and — when the model has a local encoder to fall
        // back on — skip the per-query global subgraph encoder entirely, so
        // the cached snapshot encoding alone answers the batch (the decoder
        // λ-mixture, Eq. 18–19, collapses to its local term).
        let brownout = self.overload.tier(Instant::now()) >= Tier::Brownout;
        let policy = self.overload.policy();
        let k_cap = if brownout {
            policy.brownout_k_cap.max(1)
        } else {
            usize::MAX
        };
        // Only meaningful for models that actually have a local encoding to
        // fall back on; global-only variants keep full-fidelity decoding.
        let skip_global = brownout
            && policy.brownout_skip_global
            && self.entries[idx].model.cfg.use_local
            && self.entries[idx].model.cfg.use_global;

        // Snapshot-encoding cache: compute once per (model, t), reuse for
        // every other request in this batch and every later one at `t`.
        let entry = &mut self.entries[idx];
        let cache_hit = entry.cache.contains(t);
        if cache_hit {
            self.metrics
                .cache_hits
                .fetch_add(batch_size as u64, Ordering::Relaxed);
        } else {
            let mut history = HistoryIndex::new();
            for snap in &self.snapshots[..t] {
                history.advance(snap);
            }
            let shared = entry.model.encode(&self.snapshots, t, false);
            entry.cache.insert(t, CachedEncoding { shared, history });
            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            if batch_size > 1 {
                self.metrics
                    .cache_hits
                    .fetch_add(batch_size as u64 - 1, Ordering::Relaxed);
            }
        }
        let Some(cached) = entry.cache.get(t) else {
            // Unreachable by construction (inserted above when absent), but
            // a cache miss here must degrade to an error reply, not a panic
            // that takes the model worker down with it.
            let err = ServeError {
                status: 500,
                message: "encoding cache lost the entry it just admitted".into(),
            };
            for job in valid {
                let _ = job.reply.send(Err(err.clone()));
            }
            return;
        };

        // Unique (s, r) pairs: concurrent requests for the same hot query
        // share one decode whichever mode is active.
        let mut uniques: Vec<(usize, usize)> = Vec::new();
        for job in &valid {
            if !uniques.contains(&(job.s, job.r)) {
                uniques.push((job.s, job.r));
            }
        }

        let mut scores: Vec<Vec<f32>> = Vec::with_capacity(uniques.len());
        if self.fused {
            // One forward_queries call for the whole batch — the repo's
            // batched-evaluation semantics (query subgraphs unioned).
            let queries: Vec<Quad> = uniques
                .iter()
                .map(|&(s, r)| Quad::new(s, r, 0, t))
                .collect();
            let out = if skip_global {
                entry
                    .model
                    .forward_queries_local_only(&cached.shared, &cached.history, &queries)
            } else {
                entry
                    .model
                    .forward_queries(&cached.shared, &cached.history, &queries, false)
            };
            let logits = out.logits.to_tensor();
            scores.extend((0..uniques.len()).map(|i| logits.row(i).to_vec()));
        } else {
            // Exact mode: per-unique-query decode over the shared encoding —
            // bit-identical to sequential `predict_topk`, independent of
            // whatever else happens to be in the batch.
            for &(s, r) in &uniques {
                let query = [Quad::new(s, r, 0, t)];
                let out = if skip_global {
                    entry
                        .model
                        .forward_queries_local_only(&cached.shared, &cached.history, &query)
                } else {
                    entry
                        .model
                        .forward_queries(&cached.shared, &cached.history, &query, false)
                };
                scores.push(out.logits.to_tensor().row(0).to_vec());
            }
        }

        for job in valid {
            let scored = uniques
                .iter()
                .position(|&p| p == (job.s, job.r))
                .and_then(|u| scores.get(u));
            let Some(scored) = scored else {
                // Every valid job seeded `uniques`, so this cannot happen —
                // but answering 500 beats poisoning the worker thread.
                let _ = job.reply.send(Err(ServeError {
                    status: 500,
                    message: "batch bookkeeping lost a query's scores".into(),
                }));
                continue;
            };
            let k_eff = job.k.min(k_cap);
            let degraded = skip_global || k_eff < job.k;
            if degraded {
                self.metrics
                    .degraded_responses
                    .fetch_add(1, Ordering::Relaxed);
            }
            let predictions = logcl_core::topk_from_scores(&self.ds, scored, k_eff);
            let _ = job.reply.send(Ok(PredictOutcome {
                predictions,
                batch_size,
                cache_hit,
                degraded,
            }));
        }
    }

    /// Appends facts at `job.t`, invalidates affected cache entries, and
    /// optionally runs one online adaptation step (Fig. 10).
    fn ingest(&mut self, job: IngestJob) -> Result<IngestOutcome, ServeError> {
        let Some(idx) = self.entry_index(&job.model) else {
            return Err(ServeError::not_found(format!(
                "unknown model {:?}",
                job.model
            )));
        };
        if job.facts.is_empty() {
            return Err(ServeError::bad_request("no facts given"));
        }
        if job.t > self.ds.num_times {
            return Err(ServeError::bad_request(format!(
                "time {} would leave a gap: horizon is {} (use t <= horizon)",
                job.t, self.ds.num_times
            )));
        }
        for &(s, r, o) in &job.facts {
            if s >= self.ds.num_entities || o >= self.ds.num_entities {
                return Err(ServeError::bad_request(format!(
                    "entity out of range in fact ({s}, {r}, {o}): |E| = {}",
                    self.ds.num_entities
                )));
            }
            if r >= self.ds.num_rels {
                return Err(ServeError::bad_request(format!(
                    "relation out of range in fact ({s}, {r}, {o}): |R| = {} \
                     (ingest base-direction facts only)",
                    self.ds.num_rels
                )));
            }
        }

        // Append new (deduplicated) facts to the test split — snapshots and
        // time-aware filtering read all splits uniformly.
        let existing: std::collections::BTreeSet<(usize, usize, usize)> = self
            .ds
            .all_quads()
            .iter()
            .filter(|q| q.t == job.t)
            .map(|q| q.triple())
            .collect();
        let fresh: Vec<Quad> = job
            .facts
            .iter()
            .filter(|f| !existing.contains(f))
            .map(|&(s, r, o)| Quad::new(s, r, o, job.t))
            .collect();
        let appended = fresh.len();
        self.ds.test.extend_from_slice(&fresh);
        self.ds.num_times = self.ds.num_times.max(job.t + 1);
        self.snapshots = self.ds.snapshots();
        self.horizon.store(self.ds.num_times, Ordering::SeqCst);
        self.metrics
            .ingested_facts
            .fetch_add(appended as u64, Ordering::Relaxed);

        // Structural invalidation: encodings at and after t read (or are
        // about to read) the changed snapshot.
        let mut invalidated = 0;
        for entry in &mut self.entries {
            invalidated += entry.cache.invalidate_from(job.t);
        }

        let updated = job.update && appended > 0;
        if updated {
            let mut history = HistoryIndex::new();
            for snap in &self.snapshots[..job.t] {
                history.advance(snap);
            }
            let ctx = EvalContext {
                ds: &self.ds,
                snapshots: &self.snapshots,
                history: &history,
                t: job.t,
            };
            trainer::online_step(&mut self.entries[idx].model, &ctx, &fresh);
            self.metrics.online_updates.fetch_add(1, Ordering::Relaxed);
            // Weight update: every cached encoding (any t, any model that
            // shares parameters — here, just this one) is now stale.
            invalidated += self.entries[idx].cache.clear();
        }
        self.metrics
            .cache_invalidations
            .fetch_add(invalidated as u64, Ordering::Relaxed);

        Ok(IngestOutcome {
            appended,
            invalidated,
            updated,
            horizon: self.ds.num_times,
        })
    }
}

impl BatchHandler for Registry {
    fn handle_predict_group(&mut self, group: Vec<PredictJob>) {
        self.predict_group(group);
    }

    fn handle_ingest(&mut self, job: IngestJob) {
        let reply = job.reply.clone();
        let _ = reply.send(self.ingest(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tkg::SyntheticPreset;

    fn tiny_cfg() -> LogClConfig {
        LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        }
    }

    fn tiny_ds() -> TkgDataset {
        SyntheticPreset::Icews14.generate_scaled(0.15)
    }

    fn build(specs: Vec<ModelSpec>) -> Result<Registry, StartError> {
        Registry::build(
            tiny_ds(),
            specs,
            Arc::new(Metrics::default()),
            Arc::new(AtomicUsize::new(0)),
            false,
            16,
            Arc::new(OverloadState::new(
                crate::shed::OverloadPolicy::default(),
                Arc::new(Metrics::default()),
            )),
        )
    }

    #[test]
    fn rejects_checkpoint_with_wrong_config_fingerprint() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        let ckpt = logcl_tensor::serialize::snapshot_with_meta(
            &model.params,
            "LogCL",
            &tiny_cfg().fingerprint(),
        );
        // Loading under a *different* dim must fail with the fingerprint
        // message, not a shape panic.
        let other = LogClConfig {
            dim: 32,
            ..tiny_cfg()
        };
        let err = build(vec![ModelSpec {
            name: "default".into(),
            cfg: other,
            checkpoint: Some(ckpt),
            train: None,
        }])
        .err()
        .expect("mismatched fingerprint must be rejected");
        assert!(
            matches!(err, StartError::Checkpoint { .. }),
            "expected a checkpoint error, got: {err}"
        );
        assert!(err.to_string().contains("config"), "{err}");
    }

    #[test]
    fn rejects_legacy_checkpoint_with_wrong_shapes_cleanly() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        // Legacy checkpoint: no metadata, so only restore()'s shape check
        // can catch the mismatch — as an error, not a panic.
        let ckpt = logcl_tensor::serialize::snapshot(&model.params);
        let err = build(vec![ModelSpec {
            name: "default".into(),
            cfg: LogClConfig {
                dim: 32,
                ..tiny_cfg()
            },
            checkpoint: Some(ckpt),
            train: None,
        }])
        .err()
        .expect("mismatched shapes must be rejected");
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn accepts_matching_checkpoint_and_publishes_horizon() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        let ckpt = logcl_tensor::serialize::snapshot_with_meta(
            &model.params,
            "LogCL",
            &tiny_cfg().fingerprint(),
        );
        let horizon = Arc::new(AtomicUsize::new(0));
        let reg = Registry::build(
            tiny_ds(),
            vec![ModelSpec {
                name: "default".into(),
                cfg: tiny_cfg(),
                checkpoint: Some(ckpt),
                train: None,
            }],
            Arc::new(Metrics::default()),
            horizon.clone(),
            false,
            16,
            Arc::new(OverloadState::new(
                crate::shed::OverloadPolicy::default(),
                Arc::new(Metrics::default()),
            )),
        )
        .unwrap();
        assert_eq!(reg.model_names(), vec!["default".to_string()]);
        assert_eq!(horizon.load(Ordering::SeqCst), reg.ds.num_times);
    }
}
