//! `logcl-serve`: a std-only inference server for LogCL temporal knowledge
//! graph models.
//!
//! The crate hand-rolls everything a small production server needs on top of
//! `std::net` — no async runtime, no HTTP framework:
//!
//! * [`http`] — an HTTP/1.1 request parser and response writer tolerant of
//!   fragmented reads, with hard caps on head and body sizes.
//! * [`metrics`] — lock-free Prometheus-format counters and histograms.
//! * [`cache`] — the per-model snapshot-encoding cache keyed by timestamp.
//! * [`batcher`] — the single model-worker loop coalescing concurrent
//!   predict requests at the same timestamp into micro-batches.
//! * [`registry`] — checkpoint loading/validation and the actual model
//!   calls behind the batcher.
//! * [`server`] — the thread-pool, routing, and graceful shutdown glue.
//! * [`shed`] — overload resilience: deadline-aware shedding and the
//!   Normal → Brownout → Shed degradation state machine.
//! * [`wal`] — the durable-ingest write-ahead log: CRC32-framed records,
//!   group-commit fsync, torn-tail truncation on replay.
//!
//! Under the `fault-inject` cargo feature (tests only — lint L008 proves it
//! never reaches a default build) the `fault` module adds deterministic
//! fault injection at audited boundaries for chaos testing.
//!
//! Start one with [`Server::start`] and a [`ServeConfig`]; see the README's
//! "Serving" section for the HTTP API.

pub mod batcher;
pub mod cache;
pub mod deadline;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod shed;
pub mod wal;

pub use batcher::{BatcherOptions, ServeError, ShardDetail};
pub use cache::EncodingCache;
pub use error::StartError;
pub use metrics::Metrics;
pub use registry::{ModelSpec, Registry};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use shed::{OverloadPolicy, OverloadState, Tier};
pub use wal::{Wal, WalError, WalRecord};
