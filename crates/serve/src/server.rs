//! The HTTP server: a hand-rolled thread-pool accepting connections, JSON
//! endpoint routing, and graceful shutdown with connection drain.
//!
//! Endpoints:
//! * `GET  /healthz`  — liveness probe.
//! * `GET  /metrics`  — Prometheus text exposition ([`crate::metrics`]).
//! * `POST /predict`  — `{"subject", "relation", "time"?, "k"?, "inverse"?,
//!   "model"?}`; subject/relation accept names or numeric ids. Answers the
//!   top-k entities with softmax probabilities.
//! * `POST /ingest`   — `{"time", "facts": [[s, r, o], ...], "update"?,
//!   "model"?}`; appends facts and (by default) runs one online adaptation
//!   step, invalidating affected cached encodings. With durability enabled
//!   the ack means the facts are fsynced to the write-ahead log; an
//!   `X-LogCL-Ingest-Id` header makes retries idempotent.
//! * `POST /shutdown` — begins graceful shutdown (the SIGTERM equivalent:
//!   pure-std processes cannot install signal handlers, so the flag is
//!   raised over HTTP or programmatically via [`Server::shutdown_handle`]).

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use logcl_core::ShardSpec;
use logcl_tkg::TkgDataset;
use serde_json::{json, Value};

use crate::batcher::{run_batcher, BatcherOptions, IngestJob, PredictJob, ServeError, WorkItem};
use crate::error::StartError;
use crate::http::{read_request_limited, write_response, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::registry::{ModelSpec, Registry, RegistryOptions};
use crate::shed::{OverloadPolicy, OverloadState};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Connection-handler threads.
    pub threads: usize,
    /// Kernel-backend compute threads shared by the micro-batcher's model
    /// worker (`0` = auto-detect, `1` = serial). The backends are
    /// bit-identical, so this only affects latency, never rankings.
    pub compute_threads: usize,
    /// Micro-batch linger window.
    pub linger: Duration,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Bounded work-queue depth; excess requests are answered `503`.
    pub queue_cap: usize,
    /// `k` when a predict request does not specify one.
    pub default_k: usize,
    /// Cached encodings kept per model.
    pub cache_capacity: usize,
    /// Fuse a batch's unique queries into one `forward_queries` call (see
    /// [`crate::registry::Registry`]); default off for exact per-query
    /// semantics.
    pub fused: bool,
    /// Serve `POST /shutdown` (disable when fronted by untrusted traffic).
    pub enable_shutdown_endpoint: bool,
    /// Per-connection socket read timeout; a peer that stalls longer is
    /// answered `408` and disconnected (counted in `/metrics`).
    pub read_timeout: Duration,
    /// Per-request body-size cap in bytes; larger declared bodies are
    /// answered `413` without being read (counted in `/metrics`).
    pub max_body_bytes: usize,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Per-request deadline applied when the client sends no
    /// `X-LogCL-Deadline-Ms` header.
    pub default_deadline: Duration,
    /// Ceiling clamped onto client-supplied deadlines.
    pub max_deadline: Duration,
    /// Queue sojourn at which the degradation tier escalates to Brownout
    /// ([`crate::shed`]).
    pub brownout_sojourn: Duration,
    /// Queue sojourn at which the degradation tier escalates to Shed and
    /// incoming `/predict` is answered `503` (`/healthz` and `/metrics`
    /// are never shed).
    pub shed_sojourn: Duration,
    /// Consecutive healthy observations needed to step the tier down once.
    pub recovery_streak: u32,
    /// Compute-utilisation threshold feeding Brownout (`0.0` disables the
    /// utilisation signal).
    pub brownout_utilisation: f64,
    /// Effective top-k cap applied to predictions while in Brownout.
    pub brownout_k_cap: usize,
    /// Skip the per-query global encoder in Brownout: decode local-only,
    /// i.e. the λ-mixture of Eq. 18–19 collapses to its local term.
    pub brownout_skip_global: bool,
    /// Concurrent in-flight `/predict` requests admitted.
    pub max_inflight_predict: usize,
    /// Concurrent in-flight `/ingest` requests admitted.
    pub max_inflight_ingest: usize,
    /// `Retry-After` seconds advertised on shed (503/504) responses.
    pub retry_after_secs: u64,
    /// Directory for the durable-ingest write-ahead log and serving
    /// snapshot; `None` disables durability (accepted ingests live only in
    /// memory and are lost on crash).
    pub wal_dir: Option<std::path::PathBuf>,
    /// Snapshot-compact the WAL after this many logged ingests
    /// (`0` = never compact; the log grows without bound).
    pub wal_compact_every: u64,
    /// Max online fine-tuning gradient steps per `update:true` ingest
    /// (`0` disables online adaptation; the loss guard may stop — and roll
    /// back — a loop before the budget is spent).
    pub online_steps: usize,
    /// Serve as entity shard `i/N`: `/predict` scores only this worker's
    /// contiguous candidate range and reports shard-local softmax partials
    /// for a scatter-gather router to merge. `/ingest` is unaffected (every
    /// shard holds the full model and history). `None` = single-node.
    pub shard: Option<ShardSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            compute_threads: 0,
            linger: Duration::from_millis(2),
            max_batch: 32,
            queue_cap: 1024,
            default_k: 10,
            cache_capacity: 64,
            fused: false,
            enable_shutdown_endpoint: true,
            read_timeout: Duration::from_secs(10),
            max_body_bytes: crate::http::MAX_BODY_BYTES,
            write_timeout: Duration::from_secs(10),
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(120),
            brownout_sojourn: Duration::from_millis(50),
            shed_sojourn: Duration::from_millis(250),
            recovery_streak: 3,
            brownout_utilisation: 0.0,
            brownout_k_cap: 3,
            brownout_skip_global: true,
            max_inflight_predict: 256,
            max_inflight_ingest: 32,
            retry_after_secs: 1,
            wal_dir: None,
            wal_compact_every: 64,
            online_steps: 1,
            shard: None,
        }
    }
}

/// A latch other threads can wait on; raising it begins shutdown.
pub struct ShutdownState {
    raised: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl ShutdownState {
    fn new() -> Self {
        Self {
            raised: AtomicBool::new(false),
            lock: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Raises the flag and wakes every waiter. Idempotent. A poisoned lock
    /// (a handler panicked mid-notify) cannot stop shutdown: the boolean
    /// state is valid regardless, so the poison is shrugged off.
    pub fn trigger(&self) {
        self.raised.store(true, Ordering::SeqCst);
        *self.lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_triggered(&self) -> bool {
        self.raised.load(Ordering::SeqCst)
    }

    /// Blocks until [`ShutdownState::trigger`] is called. Poison-tolerant
    /// for the same reason as [`ShutdownState::trigger`].
    pub fn wait(&self) {
        let mut raised = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*raised {
            raised = self.cv.wait(raised).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Cloneable handle for initiating shutdown from anywhere (tests, a signal
/// bridge, an admin thread).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<ShutdownState>);

impl ShutdownHandle {
    /// Begins graceful shutdown.
    pub fn trigger(&self) {
        self.0.trigger();
    }
}

/// Immutable vocabulary shared with handler threads for name resolution
/// (entity/relation vocabularies never change; the horizon may grow, so it
/// lives in an atomic).
struct Vocab {
    num_rels: usize,
    entity_by_name: BTreeMap<String, usize>,
    rel_by_name: BTreeMap<String, usize>,
}

impl Vocab {
    fn from_dataset(ds: &TkgDataset) -> Self {
        Self {
            num_rels: ds.num_rels,
            entity_by_name: ds
                .entity_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i))
                .collect(),
            rel_by_name: ds
                .rel_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i))
                .collect(),
        }
    }
}

struct HandlerCtx {
    vocab: Vocab,
    work_tx: SyncSender<WorkItem>,
    metrics: Arc<Metrics>,
    shutdown: Arc<ShutdownState>,
    horizon: Arc<AtomicUsize>,
    overload: Arc<OverloadState>,
    default_k: usize,
    enable_shutdown_endpoint: bool,
    read_timeout: Duration,
    max_body_bytes: usize,
    write_timeout: Duration,
    default_deadline: Duration,
    max_deadline: Duration,
    retry_after_secs: u64,
    demand: Arc<ConnDemand>,
    /// Entity vocabulary size (immutable), surfaced by `/healthz` so a
    /// router can compute coverage fractions.
    num_entities: usize,
    /// This worker's shard assignment with its resolved range, if any.
    shard: Option<(ShardSpec, (usize, usize))>,
}

// ---------------------------------------------------------------- thread pool

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Demand signal shared between the pool and the connection handlers.
///
/// A persistent connection pins a pool worker for its whole lifetime, so
/// keep-alive is only honoured while nobody is queued behind the pool: as
/// soon as a connection waits for a worker, in-flight handlers finish their
/// current response with `Connection: close` and free their slot. Under
/// light load every connection stays persistent; under contention the
/// server degrades to one-request-per-connection instead of starving the
/// queued peers.
struct ConnDemand {
    /// Connections handed to the pool but not yet picked up by a worker.
    queued: AtomicUsize,
    /// Set when no pool workers could be spawned and connections run inline
    /// on the accept thread: a persistent connection there would wedge the
    /// accept loop itself, so keep-alive is never honoured.
    inline_only: AtomicBool,
}

impl ConnDemand {
    fn new() -> Self {
        Self {
            queued: AtomicUsize::new(0),
            inline_only: AtomicBool::new(false),
        }
    }

    fn contended(&self) -> bool {
        // Acquire pairs with the Release half of the enqueue/spawn-failure
        // writes: a handler that observes the demand signal also observes
        // the queue state that raised it.
        self.inline_only.load(Ordering::Acquire) || self.queued.load(Ordering::Acquire) > 0
    }
}

/// A fixed-size worker pool over a shared job channel. Dropping the sender
/// and joining drains in-flight jobs — the connection half of graceful
/// shutdown.
struct ThreadPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    demand: Arc<ConnDemand>,
}

impl ThreadPool {
    fn new(size: usize, demand: Arc<ConnDemand>) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(size.max(1));
        for i in 0..size.max(1) {
            let rx = Arc::clone(&rx);
            let demand = Arc::clone(&demand);
            let spawned = thread::Builder::new()
                .name(format!("logcl-serve-conn-{i}"))
                .spawn(move || loop {
                    // A worker that panicked mid-job poisons the receiver
                    // lock; the queue itself is still coherent, so the
                    // survivors keep draining it.
                    let job = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    demand.queued.fetch_sub(1, Ordering::AcqRel);
                    job();
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                // Thread exhaustion: serve degraded with however many
                // workers materialised instead of killing the accept loop.
                Err(_) => break,
            }
        }
        if workers.is_empty() {
            demand.inline_only.store(true, Ordering::Release);
        }
        Self {
            tx: (!workers.is_empty()).then_some(tx),
            workers,
            demand,
        }
    }

    fn execute(&self, job: Job) {
        let Some(tx) = &self.tx else {
            // Zero workers could be spawned: run connections inline on the
            // accept thread — slow, but the server still answers.
            job();
            return;
        };
        self.demand.queued.fetch_add(1, Ordering::AcqRel);
        if let Err(mpsc::SendError(job)) = tx.send(job) {
            // Queue already closed (shutdown): the job runs here, so no
            // worker will ever decrement for it.
            self.demand.queued.fetch_sub(1, Ordering::AcqRel);
            job();
        }
    }

    /// Closes the queue and joins every worker (drains in-flight jobs).
    fn join(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// -------------------------------------------------------------------- server

/// A running inference server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<ShutdownState>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    work_tx: Option<SyncSender<WorkItem>>,
    metrics: Arc<Metrics>,
    overload: Arc<OverloadState>,
}

impl Server {
    /// Binds, builds the model registry on the worker thread (propagating
    /// load/validation errors as typed [`StartError`]s), and starts
    /// accepting connections.
    pub fn start(
        cfg: ServeConfig,
        ds: TkgDataset,
        specs: Vec<ModelSpec>,
    ) -> Result<Server, StartError> {
        // The server owns the compute-thread budget: apply it now and make
        // every model spec agree, so `LogCl::new` (which applies its
        // config's thread count) cannot silently override it.
        logcl_tensor::kernels::set_threads(cfg.compute_threads);
        // Test-only deterministic-latency knob: a fault-inject build started
        // with LOGCL_FAULT_COMPUTE_DELAY_US=N slows every compute batch by a
        // seeded delay around N µs, so the load harness's ratchet tests can
        // manufacture a reproducible regression without touching the model.
        #[cfg(feature = "fault-inject")]
        if let Some(us) = std::env::var("LOGCL_FAULT_COMPUTE_DELAY_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&us| us > 0)
        {
            crate::fault::install(crate::fault::FaultPlan {
                compute_delay: Some(std::time::Duration::from_micros(us)),
                ..crate::fault::FaultPlan::default()
            });
        }
        let mut specs = specs;
        for spec in &mut specs {
            spec.cfg.threads = cfg.compute_threads;
        }
        let metrics = Arc::new(Metrics::default());
        let shutdown = Arc::new(ShutdownState::new());
        let overload = Arc::new(OverloadState::new(
            OverloadPolicy {
                brownout_sojourn: cfg.brownout_sojourn,
                shed_sojourn: cfg.shed_sojourn.max(cfg.brownout_sojourn),
                recovery_streak: cfg.recovery_streak.max(1),
                brownout_utilisation: cfg.brownout_utilisation,
                brownout_k_cap: cfg.brownout_k_cap,
                brownout_skip_global: cfg.brownout_skip_global,
                max_inflight_predict: cfg.max_inflight_predict,
                max_inflight_ingest: cfg.max_inflight_ingest,
            },
            Arc::clone(&metrics),
        ));
        let horizon = Arc::new(AtomicUsize::new(ds.num_times));
        let vocab = Vocab::from_dataset(&ds);
        let num_entities = ds.num_entities;
        let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_cap.max(1));

        // Model worker: owns the registry (the model is not Send, so it is
        // built on this thread); reports startup success/failure first.
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), StartError>>();
        let worker = {
            let metrics = Arc::clone(&metrics);
            let horizon = Arc::clone(&horizon);
            let opts = BatcherOptions {
                linger: cfg.linger,
                max_batch: cfg.max_batch.max(1),
            };
            let registry_options = RegistryOptions {
                fused: cfg.fused,
                cache_capacity: cfg.cache_capacity,
                online_steps: cfg.online_steps,
                shard: cfg.shard,
            };
            let overload = Arc::clone(&overload);
            let wal_dir = cfg.wal_dir.clone();
            let wal_compact_every = cfg.wal_compact_every;
            thread::Builder::new()
                .name("logcl-serve-model".into())
                .spawn(move || {
                    let mut registry = match Registry::build(
                        ds,
                        specs,
                        Arc::clone(&metrics),
                        horizon,
                        registry_options,
                        Arc::clone(&overload),
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    };
                    // Durable ingest: recover snapshot + WAL state before
                    // declaring readiness — a failed recovery fails startup
                    // (fail-closed; never silently drop acknowledged facts).
                    if let Some(dir) = &wal_dir {
                        if let Err(e) = registry.enable_durability(dir, wal_compact_every) {
                            let _ = ready_tx.send(Err(e));
                            return;
                        }
                    }
                    let _ = ready_tx.send(Ok(()));
                    run_batcher(&mut registry, &work_rx, &opts, &metrics, &overload);
                    // Shutdown drain: everything acked is already fsynced;
                    // this catches any trailing un-synced appends.
                    registry.flush_durability();
                })
                .map_err(|e| StartError::Io {
                    context: "spawn model worker".into(),
                    source: e,
                })?
        };
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = worker.join();
                return Err(e);
            }
            Err(_) => {
                let _ = worker.join();
                return Err(StartError::WorkerDied);
            }
        }

        let listener = TcpListener::bind(&cfg.addr).map_err(|e| StartError::Io {
            context: format!("bind {}", cfg.addr),
            source: e,
        })?;
        let addr = listener.local_addr().map_err(|e| StartError::Io {
            context: "local_addr".into(),
            source: e,
        })?;
        listener.set_nonblocking(true).map_err(|e| StartError::Io {
            context: "set_nonblocking".into(),
            source: e,
        })?;

        let demand = Arc::new(ConnDemand::new());
        let ctx = Arc::new(HandlerCtx {
            vocab,
            work_tx: work_tx.clone(),
            metrics: Arc::clone(&metrics),
            shutdown: Arc::clone(&shutdown),
            horizon,
            overload: Arc::clone(&overload),
            default_k: cfg.default_k.max(1),
            enable_shutdown_endpoint: cfg.enable_shutdown_endpoint,
            read_timeout: cfg.read_timeout,
            max_body_bytes: cfg.max_body_bytes,
            write_timeout: cfg.write_timeout,
            default_deadline: cfg.default_deadline,
            max_deadline: cfg.max_deadline.max(cfg.default_deadline),
            retry_after_secs: cfg.retry_after_secs.max(1),
            demand: Arc::clone(&demand),
            num_entities,
            shard: cfg.shard.map(|s| (s, s.range(num_entities))),
        });

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let threads = cfg.threads;
            thread::Builder::new()
                .name("logcl-serve-accept".into())
                .spawn(move || {
                    let mut pool = ThreadPool::new(threads, demand);
                    while !shutdown.is_triggered() {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let ctx = Arc::clone(&ctx);
                                pool.execute(Box::new(move || handle_connection(stream, &ctx)));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    // Connection drain: stop accepting, finish what's in
                    // flight. The model worker still answers because our
                    // handlers hold live work_tx clones until they return.
                    pool.join();
                })
                .map_err(|e| StartError::Io {
                    context: "spawn accept loop".into(),
                    source: e,
                })?
        };

        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
            worker: Some(worker),
            work_tx: Some(work_tx),
            metrics,
            overload,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-wide metrics (shared with `GET /metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The overload/degradation state (tier machine, queue-age signal) —
    /// shared with admission and the batcher; useful for tests and
    /// programmatic health probes.
    pub fn overload(&self) -> Arc<OverloadState> {
        Arc::clone(&self.overload)
    }

    /// A handle that can initiate shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Blocks until shutdown is triggered (via the handle or
    /// `POST /shutdown`), then drains and joins everything.
    pub fn run(mut self) {
        self.shutdown.wait();
        self.drain();
    }

    /// Triggers shutdown and drains: stop accepting, finish in-flight
    /// connections, answer every queued job, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown.trigger();
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown.trigger();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join(); // joins the pool ⇒ in-flight answered
        }
        self.work_tx.take(); // last sender gone ⇒ worker drains queue
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

// ------------------------------------------------------------------ handlers

/// Waits until the kept-alive peer has bytes ready (true) or the connection
/// should close (false): peer gone, idle past `read_timeout`, shutdown, or
/// other connections queued behind the pool. Polls with a short `peek`
/// timeout so the yield-to-demand check runs every few milliseconds; `peek`
/// consumes nothing, so a request arriving mid-poll is read intact.
fn wait_for_next_request(stream: &mut TcpStream, ctx: &HandlerCtx) -> bool {
    const POLL: Duration = Duration::from_millis(5);
    let idle_start = Instant::now();
    let _ = stream.set_read_timeout(Some(POLL));
    let ready = loop {
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => break false, // peer closed
            Ok(_) => break true,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.shutdown.is_triggered()
                    || ctx.demand.contended()
                    || idle_start.elapsed() >= ctx.read_timeout
                {
                    break false;
                }
            }
            Err(_) => break false,
        }
    };
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    ready
}

fn handle_connection(mut stream: TcpStream, ctx: &HandlerCtx) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    // Persistent connections are Nagle-sensitive: head and body go out in
    // separate writes, and with delayed ACKs each response would stall
    // ~40ms. One-shot connections never noticed because close flushes.
    let _ = stream.set_nodelay(true);
    #[cfg(feature = "fault-inject")]
    {
        // Simulated slow/stalled client socket holding a handler thread.
        if let Some(stall) = crate::fault::socket_stall() {
            thread::sleep(stall);
        }
    }
    // Persistent connections: serve requests until the client asks to close,
    // the exchange errors out, or shutdown begins. Each request's latency
    // clock (and deadline anchor) starts once its head and body have fully
    // arrived, so idle gaps between keep-alive requests never eat budgets.
    let mut served = 0usize;
    loop {
        // Between keep-alive requests, wait for the next head with short
        // `peek` polls instead of a blocking read: a worker parked on an
        // idle connection yields its pool slot the moment other connections
        // queue up (or shutdown begins) by closing the idle connection —
        // legal for HTTP keep-alive, and clients retry a failed reuse.
        if served > 0 && !wait_for_next_request(&mut stream, ctx) {
            return;
        }
        let (mut resp, keep_alive, started) =
            match read_request_limited(&mut stream, ctx.max_body_bytes) {
                Ok(req) => {
                    let started = Instant::now();
                    ctx.metrics.count_request(route_key(&req.path));
                    let keep = req.keep_alive && !ctx.shutdown.is_triggered();
                    (route(&req, ctx, started), keep, started)
                }
                Err(HttpError::Io(_)) => return, // peer vanished; nothing to answer
                // A kept-alive peer closing (or going quiet) between requests
                // is normal connection lifecycle, not a protocol error.
                Err(HttpError::UnexpectedEof | HttpError::ReadTimeout) if served > 0 => return,
                Err(e) => {
                    match &e {
                        HttpError::ReadTimeout => {
                            ctx.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        HttpError::BodyTooLarge => {
                            ctx.metrics.oversized_bodies.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    // After a malformed exchange the stream framing is
                    // unknown: answer once and close.
                    (
                        Response::json(e.status(), json!({ "error": e.to_string() }).to_string()),
                        false,
                        Instant::now(),
                    )
                }
            };
        // Overload surface: every response names the current degradation
        // tier, and every shed/timeout answer tells the client when to come
        // back.
        let tier = ctx.overload.tier(Instant::now());
        resp = resp.with_header("X-LogCL-Degradation", tier.name());
        if matches!(resp.status, 503 | 504)
            && !resp.headers.iter().any(|(name, _)| *name == "Retry-After")
        {
            resp = resp.with_header("Retry-After", ctx.retry_after_secs.to_string());
        }
        ctx.metrics.count_response(resp.status, started.elapsed());
        // Re-check at write time: shutdown may have started and other
        // connections may now be queued behind the pool (see [`ConnDemand`]).
        let keep_alive = keep_alive && !ctx.shutdown.is_triggered() && !ctx.demand.contended();
        if write_response(&mut stream, &resp, keep_alive).is_err() {
            return;
        }
        let _ = stream.flush();
        served += 1;
        if !keep_alive {
            return;
        }
    }
}

fn route_key(path: &str) -> &str {
    path.split('?').next().unwrap_or(path)
}

fn route(req: &Request, ctx: &HandlerCtx, started: Instant) -> Response {
    match (req.method.as_str(), route_key(&req.path)) {
        // `/healthz` and `/metrics` are never shed, whatever the tier: an
        // overloaded server must stay observable.
        ("GET", "/healthz") => Response::json(
            200,
            json!({
                "status": "ok",
                "horizon": ctx.horizon.load(Ordering::SeqCst),
                "tier": ctx.overload.tier(Instant::now()).name(),
                "entities": ctx.num_entities,
                "shard": shard_json(ctx.shard),
            })
            .to_string(),
        ),
        ("GET", "/metrics") => Response::text(200, ctx.metrics.render()),
        ("POST", "/predict") => predict(req, ctx, started),
        ("POST", "/ingest") => ingest(req, ctx, started),
        ("POST", "/shutdown") if ctx.enable_shutdown_endpoint => {
            ctx.shutdown.trigger();
            Response::json(200, json!({ "status": "shutting down" }).to_string())
        }
        ("GET", "/predict" | "/ingest" | "/shutdown") => error_response(&ServeError {
            status: 405,
            message: "use POST".into(),
        }),
        ("POST", "/healthz" | "/metrics") => error_response(&ServeError {
            status: 405,
            message: "use GET".into(),
        }),
        (_, path) => error_response(&ServeError::not_found(format!("no route for {path}"))),
    }
}

fn error_response(err: &ServeError) -> Response {
    Response::json(err.status, json!({ "error": err.message }).to_string())
}

/// The `"shard"` object advertised by `/healthz`: the assignment and its
/// resolved entity range, or `null` for a single-node server.
fn shard_json(shard: Option<(ShardSpec, (usize, usize))>) -> Value {
    match shard {
        Some((spec, (lo, hi))) => json!({
            "index": spec.index,
            "count": spec.count,
            "lo": lo,
            "hi": hi,
        }),
        None => Value::Null,
    }
}

fn parse_body(req: &Request) -> Result<Value, ServeError> {
    serde_json::from_slice(&req.body)
        .map_err(|e| ServeError::bad_request(format!("invalid JSON body: {e}")))
}

/// Resolves a JSON field that may be a numeric id or a vocabulary name.
fn resolve_id(
    value: &Value,
    what: &str,
    by_name: &BTreeMap<String, usize>,
) -> Result<usize, ServeError> {
    match value {
        Value::Number(n) => n
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| ServeError::bad_request(format!("{what} must be a non-negative id"))),
        Value::String(s) => by_name
            .get(s.as_str())
            .copied()
            .or_else(|| s.parse::<usize>().ok())
            .ok_or_else(|| ServeError::bad_request(format!("unknown {what} name {s:?}"))),
        _ => Err(ServeError::bad_request(format!(
            "{what} must be an id or a name"
        ))),
    }
}

/// Parses the client's `X-LogCL-Deadline-Ms` header into an absolute
/// deadline (clamped to the server ceiling); absent means the server
/// default applies.
fn request_deadline(
    req: &Request,
    ctx: &HandlerCtx,
    started: Instant,
) -> Result<Instant, ServeError> {
    let budget = match req.header("x-logcl-deadline-ms") {
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                ServeError::bad_request(format!(
                    "invalid X-LogCL-Deadline-Ms value {raw:?} (want milliseconds)"
                ))
            })?;
            Duration::from_millis(ms).min(ctx.max_deadline)
        }
        None => ctx.default_deadline,
    };
    Ok(started + budget)
}

/// Admission gates shared by the model-backed endpoints: expired deadline
/// (504) and, for `/predict`, the Shed tier (503). Returns the deadline.
fn admit_deadline(
    req: &Request,
    ctx: &HandlerCtx,
    started: Instant,
) -> Result<Instant, ServeError> {
    let deadline = request_deadline(req, ctx, started)?;
    if Instant::now() >= deadline {
        ctx.metrics
            .shed_deadline_admission
            .fetch_add(1, Ordering::Relaxed);
        return Err(ServeError {
            status: 504,
            message: "deadline expired before admission".into(),
        });
    }
    Ok(deadline)
}

fn queue_full_error() -> ServeError {
    ServeError {
        status: 503,
        message: "work queue full, retry later".into(),
    }
}

fn submit(ctx: &HandlerCtx, item: WorkItem) -> Result<(), ServeError> {
    #[cfg(feature = "fault-inject")]
    {
        if crate::fault::queue_saturated() {
            ctx.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(queue_full_error());
        }
    }
    let enqueued_at = match &item {
        WorkItem::Predict(j) => j.enqueued_at,
        WorkItem::Ingest(j) => j.enqueued_at,
    };
    // Count the enqueue *before* the send makes the item visible: if the
    // batcher's dequeue accounting ran first, the queue-age anchor would be
    // left permanently stale (see OverloadState::note_enqueued).
    ctx.overload.note_enqueued(enqueued_at);
    match ctx.work_tx.try_send(item) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(_)) => {
            ctx.overload.note_send_failed();
            ctx.metrics.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            Err(queue_full_error())
        }
        Err(TrySendError::Disconnected(_)) => {
            // The worker's receiver is gone while we are still admitting:
            // the model worker died (graceful shutdown keeps it alive until
            // every handler finishes). Route future admissions to Shed.
            ctx.overload.note_send_failed();
            ctx.overload.mark_worker_unhealthy();
            Err(ServeError {
                status: 503,
                message: "model worker unavailable; retry against a healthy replica".into(),
            })
        }
    }
}

fn await_reply<T>(
    rx: &Receiver<Result<T, ServeError>>,
    deadline: Instant,
) -> Result<T, ServeError> {
    let budget = crate::deadline::remaining_budget(deadline, Instant::now());
    match rx.recv_timeout(budget) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError {
            status: 504,
            message: "deadline exceeded waiting for the model worker".into(),
        }),
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError {
            status: 503,
            message: "model worker dropped the request; retry against a healthy replica".into(),
        }),
    }
}

fn predict(req: &Request, ctx: &HandlerCtx, started: Instant) -> Response {
    match predict_inner(req, ctx, started) {
        Ok(resp) => resp,
        Err(e) => error_response(&e),
    }
}

fn predict_inner(
    req: &Request,
    ctx: &HandlerCtx,
    started: Instant,
) -> Result<Response, ServeError> {
    let deadline = admit_deadline(req, ctx, started)?;
    // CoDel-style admission: in the Shed tier with a live backlog (or a
    // dead worker) `/predict` is refused before any parsing or queueing
    // (the central header logic adds Retry-After). With the queue drained,
    // probes pass through so recovery observations can happen at all.
    let now = Instant::now();
    if ctx.overload.should_shed_predict(now) {
        ctx.metrics.shed_overload.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError {
            status: 503,
            message: format!(
                "server overloaded (queue delay {}ms); retry later",
                ctx.overload.queue_wait(now).as_millis()
            ),
        });
    }
    let Some(_inflight) = ctx.overload.try_acquire_predict() else {
        ctx.metrics.shed_concurrency.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError {
            status: 503,
            message: "too many in-flight predict requests".into(),
        });
    };
    let body = parse_body(req)?;
    let subject = body
        .get("subject")
        .ok_or_else(|| ServeError::bad_request("missing field \"subject\""))?;
    let relation = body
        .get("relation")
        .ok_or_else(|| ServeError::bad_request("missing field \"relation\""))?;
    let s = resolve_id(subject, "subject", &ctx.vocab.entity_by_name)?;
    let mut r = resolve_id(relation, "relation", &ctx.vocab.rel_by_name)?;
    if body
        .get("inverse")
        .and_then(Value::as_bool)
        .unwrap_or(false)
    {
        r += ctx.vocab.num_rels;
    }
    let t = match body.get("time") {
        Some(v) => v
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| ServeError::bad_request("\"time\" must be a non-negative integer"))?,
        // Default: one-step-ahead forecast over the full current history.
        None => ctx.horizon.load(Ordering::SeqCst),
    };
    let k = match body.get("k") {
        Some(v) => v
            .as_u64()
            .map(|v| v as usize)
            .filter(|&k| k >= 1)
            .ok_or_else(|| ServeError::bad_request("\"k\" must be a positive integer"))?,
        None => ctx.default_k,
    };
    let model = body
        .get("model")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();

    let (reply, reply_rx) = mpsc::channel();
    submit(
        ctx,
        WorkItem::Predict(PredictJob {
            model: model.clone(),
            s,
            r,
            t,
            k,
            deadline,
            enqueued_at: Instant::now(),
            reply,
        }),
    )?;
    let outcome = await_reply(&reply_rx, deadline)?;
    let predictions: Vec<Value> = outcome
        .predictions
        .iter()
        .map(|p| {
            // `score_bits` is the raw logit's exact f32 bit pattern: JSON
            // decimal round-trips are not bit-reliable, and the router's
            // scatter-gather merge needs bit-exact scores to reproduce the
            // single-node ranking.
            json!({
                "entity": p.entity,
                "name": p.name,
                "probability": p.probability,
                "score": p.score,
                "score_bits": p.score.to_bits(),
            })
        })
        .collect();
    let mut response = json!({
        "model": model,
        "query": json!({ "subject": s, "relation": r, "time": t }),
        "predictions": predictions,
        "batch_size": outcome.batch_size,
        "cache_hit": outcome.cache_hit,
        "degraded": outcome.degraded,
    });
    if let (Some(shard), Value::Object(map)) = (&outcome.shard, &mut response) {
        // Shard provenance + softmax partials (as exact bit patterns, since
        // `max` may be -inf and JSON cannot carry infinities) so the router
        // can recombine global probabilities.
        map.insert(
            "shard".into(),
            json!({
                "index": shard.spec.index,
                "count": shard.spec.count,
                "lo": shard.lo,
                "hi": shard.hi,
                "entities": ctx.num_entities,
                "softmax_max_bits": shard.stat.max.to_bits(),
                "softmax_sum_exp_bits": shard.stat.sum_exp.to_bits(),
            }),
        );
    }
    Ok(Response::json(200, response.to_string()))
}

fn ingest(req: &Request, ctx: &HandlerCtx, started: Instant) -> Response {
    match ingest_inner(req, ctx, started) {
        Ok(resp) => resp,
        Err(e) => error_response(&e),
    }
}

fn ingest_inner(req: &Request, ctx: &HandlerCtx, started: Instant) -> Result<Response, ServeError> {
    let deadline = admit_deadline(req, ctx, started)?;
    let Some(_inflight) = ctx.overload.try_acquire_ingest() else {
        ctx.metrics.shed_concurrency.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError {
            status: 503,
            message: "too many in-flight ingest requests".into(),
        });
    };
    let body = parse_body(req)?;
    let t = body
        .get("time")
        .and_then(Value::as_u64)
        .ok_or_else(|| ServeError::bad_request("missing or invalid field \"time\""))?
        as usize;
    let facts_json = body
        .get("facts")
        .and_then(Value::as_array)
        .ok_or_else(|| ServeError::bad_request("missing field \"facts\" (array of [s, r, o])"))?;
    let mut facts = Vec::with_capacity(facts_json.len());
    for fact in facts_json {
        let Some([sv, rv, ov]) = fact.as_array().map(Vec::as_slice).and_then(|a| {
            if let [s, r, o] = a {
                Some([s, r, o])
            } else {
                None
            }
        }) else {
            return Err(ServeError::bad_request(
                "each fact must be a [s, r, o] triple",
            ));
        };
        let s = resolve_id(sv, "subject", &ctx.vocab.entity_by_name)?;
        let r = resolve_id(rv, "relation", &ctx.vocab.rel_by_name)?;
        let o = resolve_id(ov, "object", &ctx.vocab.entity_by_name)?;
        facts.push((s, r, o));
    }
    let update = body.get("update").and_then(Value::as_bool).unwrap_or(true);
    let model = body
        .get("model")
        .and_then(Value::as_str)
        .unwrap_or("default")
        .to_string();
    // Client-supplied idempotency key: a retried ingest carrying the same id
    // is answered from the dedup window instead of being applied twice.
    let ingest_id = match req.header("x-logcl-ingest-id") {
        Some(raw) => {
            let id = raw.trim();
            if id.is_empty() || id.len() > 128 {
                return Err(ServeError::bad_request(
                    "X-LogCL-Ingest-Id must be 1..=128 characters",
                ));
            }
            Some(id.to_string())
        }
        None => None,
    };

    let (reply, reply_rx) = mpsc::channel();
    submit(
        ctx,
        WorkItem::Ingest(IngestJob {
            model,
            t,
            facts,
            update,
            ingest_id,
            deadline,
            enqueued_at: Instant::now(),
            reply,
        }),
    )?;
    let outcome = await_reply(&reply_rx, deadline)?;
    Ok(Response::json(
        200,
        json!({
            "appended": outcome.appended,
            "invalidated_encodings": outcome.invalidated,
            "online_update": outcome.updated,
            "horizon": outcome.horizon,
            "durable": outcome.durable,
            "deduplicated": outcome.deduplicated,
        })
        .to_string(),
    ))
}
