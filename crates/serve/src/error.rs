//! Typed startup errors for the serving stack.
//!
//! [`StartError`] is the serve crate's boundary error: everything that can
//! go wrong between [`crate::Server::start`] and the first accepted
//! connection maps onto one of its variants, preserving the typed causes
//! ([`CheckpointError`], [`TrainError`], [`std::io::Error`]) instead of
//! flattening them into strings at the crate boundary.

use crate::wal::WalError;
use logcl_core::TrainError;
use logcl_tensor::serialize::CheckpointError;

/// Why the server (or its model registry) failed to start.
#[derive(Debug)]
pub enum StartError {
    /// The registry was given no model specs.
    NoModels,
    /// A model's checkpoint failed metadata validation or restoration.
    Checkpoint {
        /// The registry key of the offending model spec.
        model: String,
        /// The underlying checkpoint failure.
        source: CheckpointError,
    },
    /// Startup (train-from-scratch) training for a model failed.
    Train {
        /// The registry key of the offending model spec.
        model: String,
        /// The underlying training failure.
        source: TrainError,
    },
    /// Binding, configuring, or spawning server infrastructure failed.
    Io {
        /// What was being attempted (e.g. `"bind 127.0.0.1:7878"`).
        context: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// The model worker thread died before reporting readiness.
    WorkerDied,
    /// The write-ahead log could not be opened or replayed at startup.
    Wal {
        /// What recovery was doing (e.g. `"opening the ingest WAL"`).
        context: String,
        /// The underlying WAL failure.
        source: WalError,
    },
    /// Recovered durable state contradicts the configured base state
    /// (snapshot/WAL refers to unknown models, out-of-range facts, or a
    /// changed base dataset). Fail-closed: refuse to serve rather than
    /// silently drop acknowledged ingests.
    Recovery {
        /// What was inconsistent.
        context: String,
    },
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::NoModels => write!(f, "registry needs at least one model spec"),
            StartError::Checkpoint { model, source } => write!(f, "model {model:?}: {source}"),
            StartError::Train { model, source } => {
                write!(f, "model {model:?}: training failed: {source}")
            }
            StartError::Io { context, source } => write!(f, "{context}: {source}"),
            StartError::WorkerDied => write!(f, "model worker died during startup"),
            StartError::Wal { context, source } => write!(f, "{context}: {source}"),
            StartError::Recovery { context } => {
                write!(f, "durable state is inconsistent with the base: {context}")
            }
        }
    }
}

impl std::error::Error for StartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StartError::Checkpoint { source, .. } => Some(source),
            StartError::Train { source, .. } => Some(source),
            StartError::Io { source, .. } => Some(source),
            StartError::Wal { source, .. } => Some(source),
            StartError::NoModels | StartError::WorkerDied | StartError::Recovery { .. } => None,
        }
    }
}
