//! The snapshot-encoding cache.
//!
//! LogCL's forward pass splits into a query-independent part — the local
//! recurrent encoding of the last `m` snapshots before `t` (`model.encode`)
//! — and a cheap per-query part. The trainer already reuses one encoding
//! across the two propagation phases of a timestamp; the server widens that
//! reuse window across *requests*: all queries at the same `t` share one
//! encoding until ingestion invalidates it.
//!
//! Invalidation rules (see DESIGN.md):
//! * appending facts at `t` drops entries with key `>= t` (an encoding for
//!   `t_q` reads `snapshots[..t_q]`, so strictly `> t` would suffice; `>= t`
//!   also covers the entry whose history index the ingested timestamp is
//!   about to enter),
//! * an online weight update drops *everything* — every cached encoding was
//!   computed under the old parameters.

use std::collections::BTreeMap;

/// A bounded map from timestamp to cached value, evicting the smallest
/// (oldest) timestamp first — serving traffic clusters near the horizon.
pub struct EncodingCache<V> {
    map: BTreeMap<usize, V>,
    capacity: usize,
}

impl<V> EncodingCache<V> {
    /// An empty cache holding at most `capacity` encodings.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// The cached value for timestamp `t`, if present.
    pub fn get(&self, t: usize) -> Option<&V> {
        self.map.get(&t)
    }

    /// Whether timestamp `t` is cached.
    pub fn contains(&self, t: usize) -> bool {
        self.map.contains_key(&t)
    }

    /// Inserts (or replaces) the encoding for `t`, evicting the oldest
    /// timestamp when full.
    pub fn insert(&mut self, t: usize, value: V) {
        if !self.map.contains_key(&t) && self.map.len() >= self.capacity {
            self.map.pop_first();
        }
        self.map.insert(t, value);
    }

    /// Drops every entry with timestamp `>= t`; returns how many were
    /// dropped.
    pub fn invalidate_from(&mut self, t: usize) -> usize {
        let dropped = self.map.split_off(&t);
        dropped.len()
    }

    /// Drops everything (weights changed); returns how many entries died.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }

    /// Number of cached encodings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_capacity_eviction() {
        let mut c: EncodingCache<&'static str> = EncodingCache::new(2);
        c.insert(10, "ten");
        c.insert(11, "eleven");
        assert_eq!(c.get(10), Some(&"ten"));
        // Third insert evicts the oldest timestamp (10).
        c.insert(12, "twelve");
        assert_eq!(c.len(), 2);
        assert!(!c.contains(10));
        assert!(c.contains(11) && c.contains(12));
        // Re-inserting an existing key is a replace, not an eviction.
        c.insert(12, "TWELVE");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(12), Some(&"TWELVE"));
    }

    #[test]
    fn invalidate_from_drops_at_and_after() {
        let mut c: EncodingCache<usize> = EncodingCache::new(8);
        for t in [3, 5, 7, 9] {
            c.insert(t, t);
        }
        assert_eq!(c.invalidate_from(5), 3);
        assert!(c.contains(3));
        assert!(!c.contains(5) && !c.contains(7) && !c.contains(9));
        assert_eq!(c.invalidate_from(100), 0);
    }

    #[test]
    fn clear_reports_count() {
        let mut c: EncodingCache<u8> = EncodingCache::new(4);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }
}
