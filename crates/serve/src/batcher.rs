//! The micro-batcher.
//!
//! All model work funnels through one worker thread (the autograd graph is
//! `Rc`-based, so the model cannot be shared across threads — and a single
//! owner conveniently serialises weight updates against scoring). Handler
//! threads enqueue [`WorkItem`]s on a bounded channel; the worker coalesces
//! concurrent `/predict` requests with the same `(model, timestamp)` into
//! one batch, waiting up to a configurable linger for stragglers and
//! cutting the batch at a configurable maximum size.
//!
//! Every job carries an absolute deadline. The worker re-checks it at each
//! dequeue boundary and once more immediately before compute: an expired
//! job is answered `504` with the time it already spent queued and is shed
//! *before* any model work — under overload the queue never burns compute
//! on answers nobody is waiting for. Each dequeue also feeds the observed
//! sojourn time into the [`crate::shed`] state machine.
//!
//! On shutdown the senders are dropped; the worker drains every queued item
//! — answering each one — before it exits, so graceful shutdown never
//! abandons an accepted request. A disconnect observed *mid-linger* is not
//! a linger expiry: it closes the batch and marks the worker unhealthy so
//! admission stops routing new work at a channel nobody consumes.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use logcl_core::{Prediction, ShardSpec, SoftmaxStat};

use crate::metrics::Metrics;
use crate::shed::OverloadState;

/// A scoring request travelling from a handler thread to the worker.
pub struct PredictJob {
    /// Registry model name.
    pub model: String,
    /// Subject entity id.
    pub s: usize,
    /// Relation id (inverse-closed vocabulary, `0..2|R|`).
    pub r: usize,
    /// Query timestamp — the batching key.
    pub t: usize,
    /// How many candidates to return.
    pub k: usize,
    /// Absolute deadline: at or past it the job is shed (504), not computed.
    pub deadline: Instant,
    /// When the job entered the work queue (sojourn and shed accounting).
    pub enqueued_at: Instant,
    /// Where the worker sends the answer.
    pub reply: Sender<Result<PredictOutcome, ServeError>>,
}

/// Shard provenance attached to answers served in `--shard` mode, carrying
/// everything a scatter-gather router needs to merge this worker's partial
/// answer with its peers': the entity range actually scored and the
/// shard-local softmax statistics ([`SoftmaxStat`]) for recombining global
/// probabilities.
#[derive(Debug, Clone, Copy)]
pub struct ShardDetail {
    /// Which shard of how many this worker is.
    pub spec: ShardSpec,
    /// First entity id this worker scored (inclusive).
    pub lo: usize,
    /// One past the last entity id this worker scored.
    pub hi: usize,
    /// Shard-local softmax partials over `[lo, hi)`.
    pub stat: SoftmaxStat,
}

/// A successful prediction, plus how it was served.
#[derive(Debug)]
pub struct PredictOutcome {
    /// Ranked candidates with softmax probabilities.
    pub predictions: Vec<Prediction>,
    /// How many requests the containing micro-batch coalesced.
    pub batch_size: usize,
    /// Whether the snapshot encoding came from the cache.
    pub cache_hit: bool,
    /// Whether the answer was degraded (Brownout: capped k and/or
    /// local-only decoding).
    pub degraded: bool,
    /// `Some` when this worker scored only an entity shard; the
    /// probabilities above are then shard-local, and the merge happens at
    /// the router.
    pub shard: Option<ShardDetail>,
}

/// A fact-ingestion request.
pub struct IngestJob {
    /// Registry model name to adapt online (all models see the new facts).
    pub model: String,
    /// Timestamp the facts belong to; `t == |T|` extends the horizon.
    pub t: usize,
    /// `(s, r, o)` base-direction facts.
    pub facts: Vec<(usize, usize, usize)>,
    /// Run one online adaptation step (Fig. 10) after appending.
    pub update: bool,
    /// Client-supplied idempotency key (`X-LogCL-Ingest-Id`): a duplicate
    /// within the dedup window replays the remembered outcome.
    pub ingest_id: Option<String>,
    /// Absolute deadline: at or past it the job is shed (504), not applied.
    pub deadline: Instant,
    /// When the job entered the work queue.
    pub enqueued_at: Instant,
    /// Where the worker sends the answer.
    pub reply: Sender<Result<IngestOutcome, ServeError>>,
}

/// The result of an ingestion.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Facts actually appended (duplicates are dropped).
    pub appended: usize,
    /// Cached encodings invalidated across all registry models.
    pub invalidated: usize,
    /// Whether an online adaptation step ran.
    pub updated: bool,
    /// The dataset horizon `|T|` after ingestion.
    pub horizon: usize,
    /// Whether the acknowledgement is backed by an fsynced WAL frame
    /// (`false` when the server runs with durability disabled).
    pub durable: bool,
    /// Whether this was a duplicate ingest id answered from the
    /// idempotency window (nothing was re-applied).
    pub deduplicated: bool,
}

/// Anything the worker can be asked to do.
pub enum WorkItem {
    /// Score one query (the batchable kind).
    Predict(PredictJob),
    /// Append facts and optionally adapt online.
    Ingest(IngestJob),
}

impl WorkItem {
    fn enqueued_at(&self) -> Instant {
        match self {
            WorkItem::Predict(j) => j.enqueued_at,
            WorkItem::Ingest(j) => j.enqueued_at,
        }
    }

    fn deadline(&self) -> Instant {
        match self {
            WorkItem::Predict(j) => j.deadline,
            WorkItem::Ingest(j) => j.deadline,
        }
    }
}

/// An error answered to the client with the given HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
}

impl ServeError {
    /// A 400.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }
}

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatcherOptions {
    /// How long the first request of a batch waits for stragglers.
    pub linger: Duration,
    /// Hard cap on coalesced requests per batch.
    pub max_batch: usize,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        Self {
            linger: Duration::from_millis(2),
            max_batch: 32,
        }
    }
}

/// What the worker loop delegates model work to (the real implementation is
/// [`crate::registry::Registry`]; tests substitute a recorder).
pub trait BatchHandler {
    /// Answers every job in `group` (all share one `(model, t)` key).
    fn handle_predict_group(&mut self, group: Vec<PredictJob>);
    /// Answers one ingestion.
    fn handle_ingest(&mut self, job: IngestJob);
    /// Answers a run of consecutive ingestions drained from the queue in
    /// one go. A durable handler applies them all and acknowledges behind a
    /// single group-commit fsync; the default just loops
    /// [`BatchHandler::handle_ingest`].
    fn handle_ingest_group(&mut self, jobs: Vec<IngestJob>) {
        for job in jobs {
            self.handle_ingest(job);
        }
    }
}

/// The 504 answered to a job shed in the queue, carrying the time it spent.
fn expired_error(enqueued_at: Instant, now: Instant) -> ServeError {
    let waited = now.saturating_duration_since(enqueued_at).as_millis();
    ServeError {
        status: 504,
        message: format!("deadline exceeded after {waited}ms in queue; shed before compute"),
    }
}

fn count_queue_shed(metrics: &Metrics) {
    metrics.shed_deadline_queue.fetch_add(1, Ordering::Relaxed);
    metrics.shed_before_compute.fetch_add(1, Ordering::Relaxed);
}

/// Answers `job` 504 without compute (its deadline has passed).
fn shed_expired_predict(job: PredictJob, now: Instant, metrics: &Metrics) {
    count_queue_shed(metrics);
    let _ = job.reply.send(Err(expired_error(job.enqueued_at, now)));
}

/// Passes a still-live item through, or answers an expired one 504 and
/// swallows it — the shed-before-compute boundary at every dequeue.
fn shed_if_expired(item: WorkItem, metrics: &Metrics) -> Option<WorkItem> {
    let now = Instant::now();
    if now < item.deadline() {
        return Some(item);
    }
    match item {
        WorkItem::Predict(job) => shed_expired_predict(job, now, metrics),
        WorkItem::Ingest(job) => {
            count_queue_shed(metrics);
            let _ = job.reply.send(Err(expired_error(job.enqueued_at, now)));
        }
    }
    None
}

/// Runs the worker loop until every sender is gone and the queue is drained.
pub fn run_batcher<H: BatchHandler>(
    handler: &mut H,
    rx: &Receiver<WorkItem>,
    opts: &BatcherOptions,
    metrics: &Metrics,
    overload: &OverloadState,
) {
    // Items received while lingering for a different batch key.
    let mut pending: VecDeque<WorkItem> = VecDeque::new();
    // Index of the next predict batch to execute — the key deterministic
    // fault schedules are expressed in.
    #[cfg(feature = "fault-inject")]
    let mut fault_batches: u64 = 0;
    loop {
        let item = match pending.pop_front() {
            Some(item) => item,
            // Block for new work; a disconnect with nothing pending means
            // the server dropped its sender and every handler finished —
            // the drain is complete.
            None => match rx.recv() {
                Ok(item) => {
                    overload.note_dequeued(item.enqueued_at(), Instant::now());
                    item
                }
                Err(_) => return,
            },
        };

        #[cfg(feature = "fault-inject")]
        {
            if crate::fault::batcher_dies(fault_batches) {
                // Simulated worker-thread death: the in-hand item is
                // dropped unanswered (its reply channel closes) and the
                // tier machine learns the worker is gone.
                overload.mark_worker_unhealthy();
                return;
            }
        }

        let item = match shed_if_expired(item, metrics) {
            Some(item) => item,
            None => continue,
        };
        let first = match item {
            WorkItem::Ingest(job) => {
                // Coalesce the run of ingests already waiting behind this
                // one (set-aside queue first, then whatever is sitting in
                // the channel right now — no lingering) so a durable
                // handler can amortise one group-commit fsync across all
                // of them.
                let mut ingests = vec![job];
                'gather: while ingests.len() < opts.max_batch {
                    match pending.pop_front() {
                        Some(WorkItem::Ingest(next)) => {
                            if let Some(WorkItem::Ingest(live)) =
                                shed_if_expired(WorkItem::Ingest(next), metrics)
                            {
                                ingests.push(live);
                            }
                        }
                        Some(other) => {
                            pending.push_front(other);
                            break 'gather;
                        }
                        None => match rx.try_recv() {
                            Ok(item) => {
                                overload.note_dequeued(item.enqueued_at(), Instant::now());
                                match shed_if_expired(item, metrics) {
                                    Some(WorkItem::Ingest(live)) => ingests.push(live),
                                    Some(other) => {
                                        pending.push_back(other);
                                        break 'gather;
                                    }
                                    None => {}
                                }
                            }
                            Err(_) => break 'gather,
                        },
                    }
                }
                handler.handle_ingest_group(ingests);
                continue;
            }
            WorkItem::Predict(job) => job,
        };

        // Open a batch keyed by the first job, absorb matching pending
        // items, then linger on the channel for stragglers.
        let key = (first.model.clone(), first.t);
        let mut group = vec![first];
        let mut skipped = VecDeque::new();
        while let Some(item) = pending.pop_front() {
            let item = match shed_if_expired(item, metrics) {
                Some(item) => item,
                None => continue,
            };
            match item {
                WorkItem::Predict(j)
                    if group.len() < opts.max_batch && j.model == key.0 && j.t == key.1 =>
                {
                    group.push(j)
                }
                other => skipped.push_back(other),
            }
        }
        pending = skipped;
        let linger_deadline = Instant::now() + opts.linger;
        while group.len() < opts.max_batch {
            let now = Instant::now();
            if now >= linger_deadline {
                break;
            }
            match rx.recv_timeout(linger_deadline - now) {
                Ok(item) => {
                    overload.note_dequeued(item.enqueued_at(), Instant::now());
                    let item = match shed_if_expired(item, metrics) {
                        Some(item) => item,
                        None => continue,
                    };
                    match item {
                        WorkItem::Predict(j) if j.model == key.0 && j.t == key.1 => group.push(j),
                        other => pending.push_back(other),
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // Every sender vanished mid-linger: that is shutdown or
                    // worker isolation, not a linger expiry. Close the
                    // batch now and flag the worker unhealthy so admission
                    // stops routing work at a channel nobody will consume.
                    overload.mark_worker_unhealthy();
                    break;
                }
            }
        }

        // The linger window may have outlived some deadlines; this is the
        // last boundary before compute.
        let now = Instant::now();
        let mut live = Vec::with_capacity(group.len());
        for job in group {
            if now >= job.deadline {
                shed_expired_predict(job, now, metrics);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let group = live;

        #[cfg(feature = "fault-inject")]
        {
            if let Some(delay) = crate::fault::compute_delay(fault_batches) {
                std::thread::sleep(delay);
            }
        }

        metrics.batch_size.observe(group.len() as f64);
        // Utilisation = pool busy-time accrued during the batch divided by
        // wall time: the average number of compute threads kept busy. The
        // serial backend bypasses the pool, so it reads as 0 by design.
        let busy0 = logcl_tensor::kernels::busy_nanos();
        let started = Instant::now();
        handler.handle_predict_group(group);
        let wall = started.elapsed().as_secs_f64();
        let busy = logcl_tensor::kernels::busy_nanos().saturating_sub(busy0);
        metrics
            .kernel_busy_micros
            .fetch_add(busy / 1_000, Ordering::Relaxed);
        if wall > 0.0 {
            let util = busy as f64 / 1e9 / wall;
            metrics.compute_utilisation.observe(util);
            overload.observe_utilisation(util);
        }
        #[cfg(feature = "fault-inject")]
        {
            fault_batches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shed::OverloadPolicy;
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::thread;

    /// Records group shapes and answers every job (so reply channels see a
    /// response, like the real handler guarantees).
    #[derive(Default)]
    struct Recorder {
        groups: Vec<Vec<(usize, usize, usize)>>, // (s, r, t) per job
        ingests: usize,
        ingest_groups: Vec<usize>, // coalesced run sizes
    }

    impl BatchHandler for Recorder {
        fn handle_predict_group(&mut self, group: Vec<PredictJob>) {
            self.groups
                .push(group.iter().map(|j| (j.s, j.r, j.t)).collect());
            for job in group {
                let _ = job.reply.send(Ok(PredictOutcome {
                    predictions: Vec::new(),
                    batch_size: 1,
                    cache_hit: false,
                    degraded: false,
                    shard: None,
                }));
            }
        }
        fn handle_ingest(&mut self, job: IngestJob) {
            self.ingests += 1;
            let _ = job.reply.send(Ok(IngestOutcome {
                appended: job.facts.len(),
                invalidated: 0,
                updated: job.update,
                horizon: job.t + 1,
                durable: false,
                deduplicated: false,
            }));
        }
        fn handle_ingest_group(&mut self, jobs: Vec<IngestJob>) {
            self.ingest_groups.push(jobs.len());
            for job in jobs {
                self.handle_ingest(job);
            }
        }
    }

    fn overload() -> OverloadState {
        OverloadState::new(OverloadPolicy::default(), Arc::new(Metrics::default()))
    }

    fn job(s: usize, t: usize) -> (PredictJob, Receiver<Result<PredictOutcome, ServeError>>) {
        job_with_deadline(s, t, Instant::now() + Duration::from_secs(30))
    }

    fn job_with_deadline(
        s: usize,
        t: usize,
        deadline: Instant,
    ) -> (PredictJob, Receiver<Result<PredictOutcome, ServeError>>) {
        let (reply, reply_rx) = mpsc::channel();
        (
            PredictJob {
                model: "default".into(),
                s,
                r: 0,
                t,
                k: 3,
                deadline,
                enqueued_at: Instant::now(),
                reply,
            },
            reply_rx,
        )
    }

    #[test]
    fn max_batch_cutoff_splits_queued_work() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for i in 0..10 {
            let (j, r) = job(i, 5);
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        drop(tx);
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(1),
                max_batch: 4,
            },
            &Metrics::default(),
            &overload(),
        );
        let sizes: Vec<usize> = rec.groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        for r in replies {
            r.recv()
                .expect("every job must be answered")
                .expect("recorder answers Ok");
        }
    }

    #[test]
    fn different_timestamps_never_share_a_batch() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for (s, t) in [(0, 7), (1, 7), (2, 9), (3, 7)] {
            let (j, r) = job(s, t);
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        drop(tx);
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions::default(),
            &Metrics::default(),
            &overload(),
        );
        for g in &rec.groups {
            let t0 = g[0].2;
            assert!(g.iter().all(|&(_, _, t)| t == t0), "mixed batch {g:?}");
        }
        // All three t=7 jobs coalesce even though a t=9 job arrived between
        // them (it is set aside, not dropped).
        assert_eq!(rec.groups.len(), 2);
        assert_eq!(rec.groups[0].len(), 3);
        assert_eq!(rec.groups[1], vec![(2, 0, 9)]);
        for r in replies {
            r.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn linger_expiry_closes_a_batch_before_disconnect() {
        let (tx, rx) = mpsc::sync_channel(64);
        let (j, reply) = job(0, 3);
        tx.send(WorkItem::Predict(j)).unwrap();
        // Keep the sender alive well past the linger so the only way the
        // batch can close early is the linger deadline.
        let holder = thread::spawn(move || {
            thread::sleep(Duration::from_millis(400));
            drop(tx);
        });
        let started = Instant::now();
        let mut rec = Recorder::default();
        let state = overload();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(20),
                max_batch: 8,
            },
            &Metrics::default(),
            &state,
        );
        reply.recv().unwrap().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(20),
            "must linger at least the configured window"
        );
        assert_eq!(rec.groups, vec![vec![(0, 0, 3)]]);
        holder.join().unwrap();
    }

    #[test]
    fn disconnect_mid_linger_closes_the_batch_and_marks_unhealthy() {
        let (tx, rx) = mpsc::sync_channel(64);
        let (j, reply) = job(0, 3);
        tx.send(WorkItem::Predict(j)).unwrap();
        // Drop the sender early inside a long linger window: the batch must
        // close on the disconnect, not sit out the full linger, and the
        // worker must read as unhealthy afterwards.
        let dropper = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            drop(tx);
        });
        let started = Instant::now();
        let mut rec = Recorder::default();
        let state = overload();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(2_000),
                max_batch: 8,
            },
            &Metrics::default(),
            &state,
        );
        dropper.join().unwrap();
        reply
            .recv()
            .expect("job accepted before the disconnect must be answered")
            .expect("recorder answers Ok");
        assert!(
            started.elapsed() < Duration::from_millis(1_500),
            "disconnect must close the batch before the linger expires"
        );
        assert_eq!(rec.groups, vec![vec![(0, 0, 3)]]);
        assert!(
            !state.worker_healthy(),
            "mid-linger disconnect must mark the worker unhealthy"
        );
    }

    #[test]
    fn sender_dropped_mid_batch_still_answers_every_accepted_job() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for s in 0..3 {
            let (j, r) = job(s, 4);
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        drop(tx); // sender gone while the batch is still being assembled
        let mut rec = Recorder::default();
        let state = overload();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(500),
                max_batch: 8,
            },
            &Metrics::default(),
            &state,
        );
        assert_eq!(rec.groups, vec![vec![(0, 0, 4), (1, 0, 4), (2, 0, 4)]]);
        for r in replies {
            r.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn expired_jobs_are_shed_before_compute_with_504() {
        let (tx, rx) = mpsc::sync_channel(64);
        let past = Instant::now() - Duration::from_millis(5);
        let (dead, dead_rx) = job_with_deadline(0, 2, past);
        let (live, live_rx) = job(1, 2);
        tx.send(WorkItem::Predict(dead)).unwrap();
        tx.send(WorkItem::Predict(live)).unwrap();
        let (ingest_reply, ingest_rx) = mpsc::channel();
        tx.send(WorkItem::Ingest(IngestJob {
            model: "default".into(),
            t: 9,
            facts: vec![(0, 0, 1)],
            update: false,
            ingest_id: None,
            deadline: past,
            enqueued_at: Instant::now(),
            reply: ingest_reply,
        }))
        .unwrap();
        drop(tx);
        let mut rec = Recorder::default();
        let metrics = Metrics::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions::default(),
            &metrics,
            &overload(),
        );
        // Only the live job reached compute.
        assert_eq!(rec.groups, vec![vec![(1, 0, 2)]]);
        assert_eq!(rec.ingests, 0, "expired ingest must not apply");
        let err = dead_rx
            .recv()
            .unwrap()
            .expect_err("expired job answers Err");
        assert_eq!(err.status, 504);
        assert!(
            err.message.contains("shed before compute"),
            "{}",
            err.message
        );
        let ingest_err = ingest_rx.recv().unwrap().expect_err("expired ingest Err");
        assert_eq!(ingest_err.status, 504);
        live_rx.recv().unwrap().expect("live job answered Ok");
        assert_eq!(metrics.shed_before_compute.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.shed_deadline_queue.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shutdown_drains_every_queued_item() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for i in 0..5 {
            let (j, r) = job(i, i); // five distinct timestamps
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        let (ingest_reply, ingest_rx) = mpsc::channel();
        tx.send(WorkItem::Ingest(IngestJob {
            model: "default".into(),
            t: 9,
            facts: vec![(0, 0, 1)],
            update: false,
            ingest_id: None,
            deadline: Instant::now() + Duration::from_secs(30),
            enqueued_at: Instant::now(),
            reply: ingest_reply,
        }))
        .unwrap();
        drop(tx); // "SIGTERM": no more senders
        let mut rec = Recorder::default();
        let metrics = Metrics::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions::default(),
            &metrics,
            &overload(),
        );
        assert_eq!(rec.groups.len(), 5, "each timestamp drained as a batch");
        assert_eq!(rec.ingests, 1);
        for r in replies {
            r.recv()
                .expect("drained job must still be answered")
                .expect("recorder answers Ok");
        }
        ingest_rx.recv().unwrap().unwrap();
        assert_eq!(metrics.batch_size.total(), 5);
    }

    #[test]
    fn consecutive_ingests_coalesce_into_one_group() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for i in 0..3 {
            let (reply, r) = mpsc::channel();
            tx.send(WorkItem::Ingest(IngestJob {
                model: "default".into(),
                t: 9 + i,
                facts: vec![(0, 0, 1)],
                update: false,
                ingest_id: None,
                deadline: Instant::now() + Duration::from_secs(30),
                enqueued_at: Instant::now(),
                reply,
            }))
            .unwrap();
            replies.push(r);
        }
        let (j, predict_rx) = job(0, 2);
        tx.send(WorkItem::Predict(j)).unwrap();
        drop(tx);
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions::default(),
            &Metrics::default(),
            &overload(),
        );
        assert_eq!(
            rec.ingest_groups,
            vec![3],
            "queued ingests must coalesce into one group-commit run"
        );
        assert_eq!(rec.ingests, 3);
        assert_eq!(rec.groups.len(), 1, "the predict still runs on its own");
        for r in replies {
            r.recv().unwrap().unwrap();
        }
        predict_rx.recv().unwrap().unwrap();
    }
}
