//! The micro-batcher.
//!
//! All model work funnels through one worker thread (the autograd graph is
//! `Rc`-based, so the model cannot be shared across threads — and a single
//! owner conveniently serialises weight updates against scoring). Handler
//! threads enqueue [`WorkItem`]s on a bounded channel; the worker coalesces
//! concurrent `/predict` requests with the same `(model, timestamp)` into
//! one batch, waiting up to a configurable linger for stragglers and
//! cutting the batch at a configurable maximum size.
//!
//! On shutdown the senders are dropped; the worker drains every queued item
//! — answering each one — before it exits, so graceful shutdown never
//! abandons an accepted request.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use logcl_core::Prediction;

use crate::metrics::Metrics;

/// A scoring request travelling from a handler thread to the worker.
pub struct PredictJob {
    /// Registry model name.
    pub model: String,
    /// Subject entity id.
    pub s: usize,
    /// Relation id (inverse-closed vocabulary, `0..2|R|`).
    pub r: usize,
    /// Query timestamp — the batching key.
    pub t: usize,
    /// How many candidates to return.
    pub k: usize,
    /// Where the worker sends the answer.
    pub reply: Sender<Result<PredictOutcome, ServeError>>,
}

/// A successful prediction, plus how it was served.
pub struct PredictOutcome {
    /// Ranked candidates with softmax probabilities.
    pub predictions: Vec<Prediction>,
    /// How many requests the containing micro-batch coalesced.
    pub batch_size: usize,
    /// Whether the snapshot encoding came from the cache.
    pub cache_hit: bool,
}

/// A fact-ingestion request.
pub struct IngestJob {
    /// Registry model name to adapt online (all models see the new facts).
    pub model: String,
    /// Timestamp the facts belong to; `t == |T|` extends the horizon.
    pub t: usize,
    /// `(s, r, o)` base-direction facts.
    pub facts: Vec<(usize, usize, usize)>,
    /// Run one online adaptation step (Fig. 10) after appending.
    pub update: bool,
    /// Where the worker sends the answer.
    pub reply: Sender<Result<IngestOutcome, ServeError>>,
}

/// The result of an ingestion.
pub struct IngestOutcome {
    /// Facts actually appended (duplicates are dropped).
    pub appended: usize,
    /// Cached encodings invalidated across all registry models.
    pub invalidated: usize,
    /// Whether an online adaptation step ran.
    pub updated: bool,
    /// The dataset horizon `|T|` after ingestion.
    pub horizon: usize,
}

/// Anything the worker can be asked to do.
pub enum WorkItem {
    /// Score one query (the batchable kind).
    Predict(PredictJob),
    /// Append facts and optionally adapt online.
    Ingest(IngestJob),
}

/// An error answered to the client with the given HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status to answer with.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
}

impl ServeError {
    /// A 400.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }
}

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatcherOptions {
    /// How long the first request of a batch waits for stragglers.
    pub linger: Duration,
    /// Hard cap on coalesced requests per batch.
    pub max_batch: usize,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        Self {
            linger: Duration::from_millis(2),
            max_batch: 32,
        }
    }
}

/// What the worker loop delegates model work to (the real implementation is
/// [`crate::registry::Registry`]; tests substitute a recorder).
pub trait BatchHandler {
    /// Answers every job in `group` (all share one `(model, t)` key).
    fn handle_predict_group(&mut self, group: Vec<PredictJob>);
    /// Answers one ingestion.
    fn handle_ingest(&mut self, job: IngestJob);
}

/// Runs the worker loop until every sender is gone and the queue is drained.
pub fn run_batcher<H: BatchHandler>(
    handler: &mut H,
    rx: &Receiver<WorkItem>,
    opts: &BatcherOptions,
    metrics: &Metrics,
) {
    // Items received while lingering for a different batch key.
    let mut pending: VecDeque<WorkItem> = VecDeque::new();
    loop {
        let item = match pending.pop_front() {
            Some(item) => item,
            // Block for new work; a disconnect with nothing pending means
            // the server dropped its sender and every handler finished —
            // the drain is complete.
            None => match rx.recv() {
                Ok(item) => item,
                Err(_) => return,
            },
        };
        let first = match item {
            WorkItem::Ingest(job) => {
                handler.handle_ingest(job);
                continue;
            }
            WorkItem::Predict(job) => job,
        };

        // Open a batch keyed by the first job, absorb matching pending
        // items, then linger on the channel for stragglers.
        let key = (first.model.clone(), first.t);
        let mut group = vec![first];
        let mut skipped = VecDeque::new();
        while let Some(item) = pending.pop_front() {
            match item {
                WorkItem::Predict(j)
                    if group.len() < opts.max_batch && j.model == key.0 && j.t == key.1 =>
                {
                    group.push(j)
                }
                other => skipped.push_back(other),
            }
        }
        pending = skipped;
        let deadline = Instant::now() + opts.linger;
        while group.len() < opts.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(WorkItem::Predict(j)) if j.model == key.0 && j.t == key.1 => group.push(j),
                Ok(other) => pending.push_back(other),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        metrics.batch_size.observe(group.len() as f64);
        // Utilisation = pool busy-time accrued during the batch divided by
        // wall time: the average number of compute threads kept busy. The
        // serial backend bypasses the pool, so it reads as 0 by design.
        let busy0 = logcl_tensor::kernels::busy_nanos();
        let started = Instant::now();
        handler.handle_predict_group(group);
        let wall = started.elapsed().as_secs_f64();
        let busy = logcl_tensor::kernels::busy_nanos().saturating_sub(busy0);
        metrics
            .kernel_busy_micros
            .fetch_add(busy / 1_000, std::sync::atomic::Ordering::Relaxed);
        if wall > 0.0 {
            metrics
                .compute_utilisation
                .observe(busy as f64 / 1e9 / wall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    /// Records group shapes and answers every job (so reply channels see a
    /// response, like the real handler guarantees).
    #[derive(Default)]
    struct Recorder {
        groups: Vec<Vec<(usize, usize, usize)>>, // (s, r, t) per job
        ingests: usize,
    }

    impl BatchHandler for Recorder {
        fn handle_predict_group(&mut self, group: Vec<PredictJob>) {
            self.groups
                .push(group.iter().map(|j| (j.s, j.r, j.t)).collect());
            for job in group {
                let _ = job.reply.send(Ok(PredictOutcome {
                    predictions: Vec::new(),
                    batch_size: 1,
                    cache_hit: false,
                }));
            }
        }
        fn handle_ingest(&mut self, job: IngestJob) {
            self.ingests += 1;
            let _ = job.reply.send(Ok(IngestOutcome {
                appended: job.facts.len(),
                invalidated: 0,
                updated: job.update,
                horizon: job.t + 1,
            }));
        }
    }

    fn job(s: usize, t: usize) -> (PredictJob, Receiver<Result<PredictOutcome, ServeError>>) {
        let (reply, reply_rx) = mpsc::channel();
        (
            PredictJob {
                model: "default".into(),
                s,
                r: 0,
                t,
                k: 3,
                reply,
            },
            reply_rx,
        )
    }

    #[test]
    fn max_batch_cutoff_splits_queued_work() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for i in 0..10 {
            let (j, r) = job(i, 5);
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        drop(tx);
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(1),
                max_batch: 4,
            },
            &Metrics::default(),
        );
        let sizes: Vec<usize> = rec.groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        for r in replies {
            r.recv()
                .expect("every job must be answered")
                .expect("recorder answers Ok");
        }
    }

    #[test]
    fn different_timestamps_never_share_a_batch() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for (s, t) in [(0, 7), (1, 7), (2, 9), (3, 7)] {
            let (j, r) = job(s, t);
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        drop(tx);
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions::default(),
            &Metrics::default(),
        );
        for g in &rec.groups {
            let t0 = g[0].2;
            assert!(g.iter().all(|&(_, _, t)| t == t0), "mixed batch {g:?}");
        }
        // All three t=7 jobs coalesce even though a t=9 job arrived between
        // them (it is set aside, not dropped).
        assert_eq!(rec.groups.len(), 2);
        assert_eq!(rec.groups[0].len(), 3);
        assert_eq!(rec.groups[1], vec![(2, 0, 9)]);
        for r in replies {
            r.recv().unwrap().unwrap();
        }
    }

    #[test]
    fn linger_expiry_closes_a_batch_before_disconnect() {
        let (tx, rx) = mpsc::sync_channel(64);
        let (j, reply) = job(0, 3);
        tx.send(WorkItem::Predict(j)).unwrap();
        // Keep the sender alive well past the linger so the only way the
        // batch can close early is the linger deadline.
        let holder = thread::spawn(move || {
            thread::sleep(Duration::from_millis(400));
            drop(tx);
        });
        let started = Instant::now();
        let mut rec = Recorder::default();
        run_batcher(
            &mut rec,
            &rx,
            &BatcherOptions {
                linger: Duration::from_millis(20),
                max_batch: 8,
            },
            &Metrics::default(),
        );
        reply.recv().unwrap().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(20),
            "must linger at least the configured window"
        );
        assert_eq!(rec.groups, vec![vec![(0, 0, 3)]]);
        holder.join().unwrap();
    }

    #[test]
    fn shutdown_drains_every_queued_item() {
        let (tx, rx) = mpsc::sync_channel(64);
        let mut replies = Vec::new();
        for i in 0..5 {
            let (j, r) = job(i, i); // five distinct timestamps
            tx.send(WorkItem::Predict(j)).unwrap();
            replies.push(r);
        }
        let (ingest_reply, ingest_rx) = mpsc::channel();
        tx.send(WorkItem::Ingest(IngestJob {
            model: "default".into(),
            t: 9,
            facts: vec![(0, 0, 1)],
            update: false,
            reply: ingest_reply,
        }))
        .unwrap();
        drop(tx); // "SIGTERM": no more senders
        let mut rec = Recorder::default();
        let metrics = Metrics::default();
        run_batcher(&mut rec, &rx, &BatcherOptions::default(), &metrics);
        assert_eq!(rec.groups.len(), 5, "each timestamp drained as a batch");
        assert_eq!(rec.ingests, 1);
        for r in replies {
            r.recv()
                .expect("drained job must still be answered")
                .expect("recorder answers Ok");
        }
        ingest_rx.recv().unwrap().unwrap();
        assert_eq!(metrics.batch_size.total(), 5);
    }
}
