//! Worker shard mode (`--shard i/N`) end-to-end: N sharded servers over
//! the same model must, between them, carry exactly the information a
//! router needs to reproduce the single-node answer — bit-identical raw
//! scores over disjoint entity ranges, plus softmax partials that
//! recombine into the global probabilities.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use logcl_core::{merge_topk, LogClConfig, ScoredEntity, ShardSpec, SoftmaxStat};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

const SHARDS: usize = 3;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

/// Untrained spec: `LogCl::new` init is deterministic in the config seed,
/// so every server booted from this spec holds bit-identical parameters.
fn spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

fn boot(shard: Option<ShardSpec>) -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        linger: Duration::from_millis(0),
        shard,
        // Exactness test: keep degradation out of reach (see integration.rs).
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![spec()]).expect("server must start")
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// `(entity, score_bits)` pairs from a `/predict` reply, in reply order.
fn scored(body: &Value) -> Vec<ScoredEntity> {
    body.get("predictions")
        .and_then(Value::as_array)
        .expect("predictions array")
        .iter()
        .map(|p| ScoredEntity {
            entity: p.get("entity").and_then(Value::as_u64).expect("entity") as usize,
            score: f32::from_bits(
                p.get("score_bits").and_then(Value::as_u64).expect("bits") as u32,
            ),
        })
        .collect()
}

#[test]
fn sharded_workers_reconstruct_the_single_node_answer_bit_exactly() {
    let single = boot(None);
    let workers: Vec<Server> = (0..SHARDS)
        .map(|i| boot(Some(ShardSpec::new(i, SHARDS).expect("spec"))))
        .collect();

    let t = {
        let (status, body) = request(single.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };
    let k = 10usize;

    for (s, r) in [(0u64, 0u64), (1, 0), (2, 1)] {
        let query = format!(r#"{{"subject": {s}, "relation": {r}, "time": {t}, "k": {k}}}"#);

        let (status, body) = request(single.addr(), "POST", "/predict", &query);
        assert_eq!(status, 200, "{body}");
        let reference = json(&body);
        let want = scored(&reference);
        assert_eq!(want.len(), k);

        let mut per_shard: Vec<Vec<ScoredEntity>> = Vec::new();
        let mut stats: Vec<SoftmaxStat> = Vec::new();
        let mut total_entities = 0u64;
        for (i, w) in workers.iter().enumerate() {
            let (status, body) = request(w.addr(), "POST", "/predict", &query);
            assert_eq!(status, 200, "shard {i}: {body}");
            let reply = json(&body);

            // Shard provenance: index/count/range plus softmax partials.
            let shard = reply.get("shard").expect("shard object in --shard mode");
            assert_eq!(shard.get("index").and_then(Value::as_u64), Some(i as u64));
            assert_eq!(
                shard.get("count").and_then(Value::as_u64),
                Some(SHARDS as u64)
            );
            let lo = shard.get("lo").and_then(Value::as_u64).expect("lo") as usize;
            let hi = shard.get("hi").and_then(Value::as_u64).expect("hi") as usize;
            let (want_lo, want_hi) = ShardSpec::new(i, SHARDS).unwrap().range(
                shard
                    .get("entities")
                    .and_then(Value::as_u64)
                    .expect("entities") as usize,
            );
            assert_eq!((lo, hi), (want_lo, want_hi));
            total_entities = shard.get("entities").and_then(Value::as_u64).unwrap();

            let candidates = scored(&reply);
            assert!(
                candidates.iter().all(|c| c.entity >= lo && c.entity < hi),
                "shard {i} leaked candidates outside [{lo}, {hi})"
            );
            per_shard.push(candidates);
            stats.push(SoftmaxStat {
                max: f32::from_bits(
                    shard
                        .get("softmax_max_bits")
                        .and_then(Value::as_u64)
                        .expect("max bits") as u32,
                ),
                sum_exp: f32::from_bits(
                    shard
                        .get("softmax_sum_exp_bits")
                        .and_then(Value::as_u64)
                        .expect("sum bits") as u32,
                ),
            });
        }
        assert!(total_entities > 0);

        // Router-equivalent merge: same entities, same order, same bits.
        let merged = merge_topk(&per_shard, k);
        assert_eq!(merged.len(), want.len());
        for (rank, (m, w)) in merged.iter().zip(want.iter()).enumerate() {
            assert_eq!(m.entity, w.entity, "rank {rank} entity mismatch");
            assert_eq!(
                m.score.to_bits(),
                w.score.to_bits(),
                "rank {rank} score bits mismatch"
            );
        }

        // Recombined softmax partials reproduce global probabilities.
        let combined = SoftmaxStat::combine(&stats);
        let ref_probs: Vec<f32> = reference
            .get("predictions")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|p| p.get("probability").and_then(Value::as_f64).unwrap() as f32)
            .collect();
        for (m, want_p) in merged.iter().zip(ref_probs.iter()) {
            let got = combined.probability(m.score);
            assert!(
                (got - want_p).abs() <= 1e-5,
                "entity {}: combined probability {got} vs single-node {want_p}",
                m.entity
            );
        }
    }

    for w in workers {
        w.shutdown();
    }
    single.shutdown();
}

#[test]
fn worker_healthz_advertises_its_shard_assignment() {
    let worker = boot(Some(ShardSpec::new(1, SHARDS).expect("spec")));
    let (status, body) = request(worker.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health = json(&body);
    let shard = health.get("shard").expect("shard object");
    assert_eq!(shard.get("index").and_then(Value::as_u64), Some(1));
    assert_eq!(
        shard.get("count").and_then(Value::as_u64),
        Some(SHARDS as u64)
    );
    let entities = health
        .get("entities")
        .and_then(Value::as_u64)
        .expect("entities");
    assert!(entities > 0);
    let lo = shard.get("lo").and_then(Value::as_u64).unwrap();
    let hi = shard.get("hi").and_then(Value::as_u64).unwrap();
    assert!(lo < hi && hi <= entities);
    worker.shutdown();
}
