//! Deadlock canary: four threads hammer one server with the operations
//! whose lock interactions L009/L010 reason about statically — predict
//! (batcher + encoding cache), head ingest without adaptation, head ingest
//! with `update: true` (weight-update rebuild path), and `/metrics`
//! scrapes — and the test simply requires that all of them finish inside a
//! generous wall-clock bound. A lock-order inversion or a blocking call
//! under a guard that the static lints missed shows up here as a hang, and
//! the watchdog turns the hang into a failure instead of a stuck CI job.
//!
//! The workload is deterministic: fixed thread count, fixed iteration
//! counts, a fixed dataset seed, and a completion channel instead of
//! sleeps. Only the interleaving varies run to run — which is the point.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

/// Whole-canary budget. Generous: the workload completes in a few seconds
/// on a loaded CI runner; a deadlock never completes.
const CANARY_DEADLINE: Duration = Duration::from_secs(120);

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

fn test_server() -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 6,
        linger: Duration::from_millis(2),
        max_batch: 32,
        // Overload shedding has its own tests; here every request should
        // be answered, not shed, so completion is the only signal.
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let spec = ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    };
    Server::start(cfg, tiny_ds(), vec![spec]).expect("server must start")
}

/// Minimal blocking HTTP/1.1 client: one request per connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set read timeout");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn horizon_of(addr: std::net::SocketAddr) -> u64 {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str::<Value>(&body)
        .expect("healthz JSON")
        .get("horizon")
        .and_then(Value::as_u64)
        .expect("horizon field")
}

#[test]
fn concurrent_predict_ingest_update_and_scrape_all_complete() {
    let server = test_server();
    let addr = server.addr();
    let (done_tx, done_rx) = mpsc::channel::<&'static str>();

    let mut handles = Vec::new();

    // 1) Predict hammer: exercises the batcher, the encoding cache, and
    //    the kernel pool while ingests invalidate the cache under it.
    {
        let tx = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..48u64 {
                let body = format!(
                    r#"{{"subject": {}, "relation": {}, "time": 0, "k": 3}}"#,
                    i % 7,
                    i % 3
                );
                let (status, body) = request(addr, "POST", "/predict", &body);
                assert!(status < 500, "predict {i}: {status} {body}");
            }
            tx.send("predict").expect("report completion");
        }));
    }

    // 2) Head ingest without adaptation: advances the streaming encoder
    //    state and the history index (racing ingests may land as
    //    backfills — also answered, also fine).
    {
        let tx = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..8u64 {
                let t = horizon_of(addr);
                let body = format!(
                    r#"{{"time": {t}, "facts": [[{}, 0, {}]], "update": false}}"#,
                    i % 5,
                    (i + 1) % 5
                );
                let (status, body) = request(addr, "POST", "/ingest", &body);
                assert!(status < 500, "ingest {i}: {status} {body}");
            }
            tx.send("ingest").expect("report completion");
        }));
    }

    // 3) Head ingest with online adaptation: the heaviest path — gradient
    //    steps plus the weight-update encoder-state rebuild.
    {
        let tx = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..4u64 {
                let t = horizon_of(addr);
                let body = format!(
                    r#"{{"time": {t}, "facts": [[{}, 1, {}]], "update": true}}"#,
                    i % 5,
                    (i + 2) % 5
                );
                let (status, body) = request(addr, "POST", "/ingest", &body);
                assert!(status < 500, "adapting ingest {i}: {status} {body}");
            }
            tx.send("update").expect("report completion");
        }));
    }

    // 4) Metrics scrapes: reads every counter family while the other
    //    threads are writing them.
    {
        let tx = done_tx.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..48u64 {
                let (status, body) = request(addr, "GET", "/metrics", "");
                assert_eq!(status, 200, "scrape {i}: {body}");
                assert!(
                    body.contains("logcl_encoder_state_rebuilds_total"),
                    "{body}"
                );
            }
            tx.send("scrape").expect("report completion");
        }));
    }
    drop(done_tx);

    // Watchdog: every worker must report within the shared deadline. A
    // deadlock anywhere in the serve stack leaves at least one worker
    // silent and fails here instead of hanging the test binary.
    let deadline = std::time::Instant::now() + CANARY_DEADLINE;
    let mut finished = Vec::new();
    while finished.len() < 4 {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        match done_rx.recv_timeout(left) {
            Ok(name) => finished.push(name),
            Err(e) => panic!(
                "deadlock canary tripped ({e}): only {finished:?} finished within \
                 {CANARY_DEADLINE:?} — a lock-order inversion or blocking-under-lock \
                 regression is the likely cause"
            ),
        }
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    server.shutdown();
}
