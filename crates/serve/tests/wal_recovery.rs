//! Durable-ingest tests: crash recovery from the write-ahead log, torn-tail
//! truncation at every byte offset, client idempotency, snapshot compaction,
//! and fail-closed `/ingest` validation.
//!
//! The kill-9 tests never get to call the process-level `kill`: instead they
//! copy the WAL directory *while the server is still running* — that copy is
//! exactly the on-disk image an abrupt death would leave (every acked ingest
//! is fsynced before its ack, so the live directory is always crash-ready) —
//! and boot a second server from the copy.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_serve::wal::{Wal, WalRecord};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

fn untrained_spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

/// A fresh per-test scratch directory (removed on a best-effort basis by the
/// next run; unique per process so parallel test binaries never collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logcl-walrec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots a durable server over `dir` with degradation thresholds pushed out
/// of reach (durability semantics are what's under test here).
fn durable_server(dir: &Path, compact_every: u64) -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        linger: Duration::from_millis(1),
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        wal_dir: Some(dir.to_path_buf()),
        wal_compact_every: compact_every,
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("server must start")
}

/// Copies every regular file in `src` into a fresh `dst` — the crash image.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read wal dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    request_full(addr, method, path, body, &[])
}

fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let extra: String = extra_headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn horizon_of(addr: std::net::SocketAddr) -> u64 {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    json(&body).get("horizon").and_then(Value::as_u64).unwrap()
}

/// The full `/predict` answer as a canonical string — used for bit-identity
/// assertions across a crash/restart boundary.
fn predict_answer(addr: std::net::SocketAddr, t: u64) -> String {
    let body = format!(r#"{{"subject": 1, "relation": 0, "time": {t}, "k": 5}}"#);
    let (status, body) = request(addr, "POST", "/predict", &body);
    assert_eq!(status, 200, "{body}");
    json(&body)
        .get("predictions")
        .expect("predictions array")
        .to_string()
}

fn ingest(
    addr: std::net::SocketAddr,
    t: u64,
    facts: &str,
    update: bool,
    id: Option<&str>,
) -> Value {
    let body = format!(r#"{{"time": {t}, "facts": {facts}, "update": {update}}}"#);
    let headers: Vec<(&str, &str)> = id.map(|i| ("X-LogCL-Ingest-Id", i)).into_iter().collect();
    let (status, body) = request_full(addr, "POST", "/ingest", &body, &headers);
    assert_eq!(status, 200, "{body}");
    json(&body)
}

// ---------------------------------------------------------------- recovery

/// Kill-9 equivalence, append-only path (`update: false`): a server restarted
/// from the crash image answers `/predict` bit-identically to the
/// uninterrupted server, with every acked fact present.
#[test]
fn crash_image_recovers_append_only_ingests_bit_identically() {
    let dir = scratch("append-only");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);

    let v = ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", false, None);
    assert_eq!(v.get("durable").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("appended").and_then(Value::as_u64), Some(2));
    let v = ingest(addr, t0 + 1, "[[2, 0, 5]]", false, None);
    assert_eq!(v.get("durable").and_then(Value::as_bool), Some(true));

    let horizon = horizon_of(addr);
    assert_eq!(horizon, t0 + 2);
    let uninterrupted = predict_answer(addr, horizon);

    // The crash image: copied while the first server is still live.
    let crash = scratch("append-only-crash");
    copy_dir(&dir, &crash);
    server.shutdown();

    let reborn = durable_server(&crash, 0);
    assert_eq!(horizon_of(reborn.addr()), horizon, "horizon must recover");
    assert_eq!(
        predict_answer(reborn.addr(), horizon),
        uninterrupted,
        "recovered predictions must be bit-identical to the uninterrupted server"
    );
    let m = reborn.metrics();
    assert_eq!(m.wal_replayed_frames.load(Ordering::Relaxed), 2);
    assert_eq!(m.wal_recovered_facts.load(Ordering::Relaxed), 3);
    let (_, text) = request(reborn.addr(), "GET", "/metrics", "");
    assert!(
        text.contains("logcl_wal_frames_total{kind=\"replayed\"} 2"),
        "{text}"
    );
    assert!(text.contains("logcl_wal_recovered_facts_total 3"), "{text}");
    reborn.shutdown();
}

/// Kill-9 equivalence, online-update path (`update: true`): replay re-runs
/// the same adaptation steps in the same order, so the recovered weights —
/// and therefore `/predict` — are bit-identical.
#[test]
fn crash_image_recovers_online_update_ingests_bit_identically() {
    let dir = scratch("online");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);

    let v = ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, None);
    assert_eq!(v.get("online_update").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("durable").and_then(Value::as_bool), Some(true));
    let v = ingest(addr, t0 + 1, "[[4, 1, 1]]", true, None);
    assert_eq!(v.get("online_update").and_then(Value::as_bool), Some(true));

    let horizon = horizon_of(addr);
    let uninterrupted = predict_answer(addr, horizon);

    let crash = scratch("online-crash");
    copy_dir(&dir, &crash);
    server.shutdown();

    let reborn = durable_server(&crash, 0);
    assert_eq!(horizon_of(reborn.addr()), horizon);
    assert_eq!(
        predict_answer(reborn.addr(), horizon),
        uninterrupted,
        "replayed online updates must reproduce the exact weights"
    );
    // Replay routed through the same incremental path the live server used:
    // the streaming encoder state was advanced to the recovered horizon.
    let (_, text) = request(reborn.addr(), "GET", "/metrics", "");
    assert!(
        text.contains(&format!("logcl_encoder_state_horizon {horizon}")),
        "replay must advance the streaming state to the recovered head:\n{text}"
    );
    reborn.shutdown();
}

/// Snapshot compaction: with `wal_compact_every: 1` every ingest triggers a
/// checkpoint + WAL truncate; recovery then loads the snapshot (no frames to
/// replay) and still answers bit-identically.
#[test]
fn compacted_state_recovers_from_the_snapshot_alone() {
    let dir = scratch("compact");
    let server = durable_server(&dir, 1);
    let addr = server.addr();
    let t0 = horizon_of(addr);

    ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, None);
    ingest(addr, t0 + 1, "[[2, 0, 5]]", false, None);
    let horizon = horizon_of(addr);
    let uninterrupted = predict_answer(addr, horizon);
    assert_eq!(server.metrics().wal_compactions.load(Ordering::Relaxed), 2);

    let crash = scratch("compact-crash");
    copy_dir(&dir, &crash);
    server.shutdown();

    assert!(
        crash.join("snapshot.ckpt").exists(),
        "compaction must have written a snapshot"
    );
    let reborn = durable_server(&crash, 1);
    assert_eq!(horizon_of(reborn.addr()), horizon);
    assert_eq!(predict_answer(reborn.addr(), horizon), uninterrupted);
    assert_eq!(
        reborn.metrics().wal_replayed_frames.load(Ordering::Relaxed),
        0,
        "a compacted log has nothing to replay"
    );
    // The snapshot carried the advanced streaming state: recovery restored
    // it instead of rebuilding (the single rebuild is the boot-time init
    // over the base dataset, before the snapshot was even read).
    let rebuilds = &reborn.metrics().encoder_state_rebuilds;
    assert_eq!(
        rebuilds.boot.load(Ordering::Relaxed),
        1,
        "the one rebuild must be the boot-time init"
    );
    assert_eq!(
        rebuilds.recovery.load(Ordering::Relaxed),
        0,
        "a valid persisted state record must be restored, not rebuilt"
    );
    assert_eq!(rebuilds.total(), 1);
    reborn.shutdown();
}

// ------------------------------------------------------------- idempotency

/// A client retry carrying the same `X-LogCL-Ingest-Id` is answered from the
/// dedup window: applied exactly once, `deduplicated: true` on the retry,
/// and still exactly once after a crash restart.
#[test]
fn duplicate_ingest_id_is_applied_exactly_once_even_across_restart() {
    let dir = scratch("dedup");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);

    let first = ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, Some("req-abc"));
    assert_eq!(first.get("appended").and_then(Value::as_u64), Some(2));
    assert_eq!(
        first.get("deduplicated").and_then(Value::as_bool),
        Some(false)
    );
    let after_first = predict_answer(addr, horizon_of(addr));

    let retry = ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, Some("req-abc"));
    assert_eq!(
        retry.get("deduplicated").and_then(Value::as_bool),
        Some(true),
        "{retry}"
    );
    assert_eq!(
        retry.get("appended").and_then(Value::as_u64),
        first.get("appended").and_then(Value::as_u64),
        "the remembered outcome must be replayed verbatim"
    );
    assert_eq!(
        horizon_of(addr),
        t0 + 1,
        "a deduplicated retry must not advance the horizon again"
    );
    assert_eq!(
        predict_answer(addr, horizon_of(addr)),
        after_first,
        "a deduplicated retry must not touch the weights"
    );
    assert_eq!(
        server.metrics().ingest_dedup_hits.load(Ordering::Relaxed),
        1
    );

    let crash = scratch("dedup-crash");
    copy_dir(&dir, &crash);
    server.shutdown();

    // The WAL holds one frame for "req-abc"; replay applies it once and a
    // post-restart retry still hits the recovered dedup window.
    let reborn = durable_server(&crash, 0);
    let addr = reborn.addr();
    assert_eq!(horizon_of(addr), t0 + 1);
    assert_eq!(predict_answer(addr, t0 + 1), after_first);
    let retry = ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, Some("req-abc"));
    assert_eq!(
        retry.get("deduplicated").and_then(Value::as_bool),
        Some(true),
        "the dedup window must survive recovery: {retry}"
    );
    assert_eq!(horizon_of(addr), t0 + 1);
    reborn.shutdown();
}

// ----------------------------------------------------------- torn tails

/// Truncating the log at *every* byte offset recovers exactly the longest
/// intact prefix of records — never a partial record, never an error — and
/// the repair is idempotent (a second open sees a clean log).
#[test]
fn truncation_at_every_byte_offset_recovers_the_longest_valid_prefix() {
    let dir = scratch("torn");
    let path = dir.join("ingest.wal");
    let records: Vec<WalRecord> = (0..4)
        .map(|i| WalRecord {
            model: "default".into(),
            t: 100 + i,
            facts: vec![(i, i + 1, i + 2), (i + 3, i, i + 1)],
            update: i % 2 == 0,
            ingest_id: if i % 2 == 0 {
                Some(format!("id-{i}"))
            } else {
                None
            },
        })
        .collect();

    // Append everything, tracking each frame's end offset.
    let mut boundaries = Vec::new();
    {
        let mut open = Wal::open(&path).expect("fresh open");
        assert!(open.records.is_empty());
        for r in &records {
            open.wal.append(r).expect("append");
            open.wal.sync().expect("sync");
            boundaries.push(std::fs::metadata(&path).expect("stat").len());
        }
    }
    let full = std::fs::read(&path).expect("read full log");
    let total = full.len() as u64;
    assert_eq!(boundaries.last().copied(), Some(total));

    for cut in 0..=total {
        let torn = dir.join(format!("torn-{cut}.wal"));
        std::fs::write(&torn, &full[..cut as usize]).expect("write torn log");
        let open = Wal::open(&torn).expect("torn open must never fail");
        let intact = boundaries.iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            open.records,
            records[..intact],
            "cut at byte {cut}: wrong prefix recovered"
        );
        let last_boundary = boundaries[..intact].last().copied().unwrap_or(0);
        assert_eq!(
            open.truncated_bytes,
            cut - last_boundary,
            "cut at byte {cut}: wrong torn-tail accounting"
        );
        drop(open);
        // The repair truncated the file: a second open is clean.
        let reopened = Wal::open(&torn).expect("reopen after repair");
        assert_eq!(reopened.records, records[..intact]);
        assert_eq!(reopened.truncated_bytes, 0, "repair must be idempotent");
        let _ = std::fs::remove_file(&torn);
    }
}

/// A server restarted over a torn log serves the intact prefix: truncation
/// is counted, never fatal, and the server never fails open.
#[test]
fn server_recovers_over_a_torn_tail_and_serves_the_intact_prefix() {
    let dir = scratch("torn-server");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);
    ingest(addr, t0, "[[1, 0, 2]]", false, None);
    ingest(addr, t0 + 1, "[[3, 1, 4]]", false, None);
    let crash = scratch("torn-server-crash");
    copy_dir(&dir, &crash);
    server.shutdown();

    // Tear mid-frame: chop 3 bytes off the second frame.
    let wal_path = crash.join("ingest.wal");
    let bytes = std::fs::read(&wal_path).expect("read wal");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).expect("tear wal");

    let reborn = durable_server(&crash, 0);
    assert_eq!(
        horizon_of(reborn.addr()),
        t0 + 1,
        "only the intact first frame must be recovered"
    );
    let m = reborn.metrics();
    assert_eq!(m.wal_replayed_frames.load(Ordering::Relaxed), 1);
    assert!(m.wal_truncated_bytes.load(Ordering::Relaxed) > 0);
    reborn.shutdown();
}

// ------------------------------------------------------------- validation

/// `/ingest` validation fails closed with typed 400s — including the
/// duplicate-fact-in-body rule — and rejected requests leave no trace in
/// memory or in the durable state.
#[test]
fn invalid_ingests_are_rejected_without_corrupting_durable_state() {
    let dir = scratch("validation");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);

    let cases: &[(String, &str)] = &[
        // Empty facts array.
        (format!(r#"{{"time": {t0}, "facts": []}}"#), "no facts"),
        // Non-monotonic time: a gap past the horizon.
        (
            format!(r#"{{"time": {}, "facts": [[1, 0, 2]]}}"#, t0 + 10),
            "gap",
        ),
        // Out-of-range entity id.
        (
            format!(r#"{{"time": {t0}, "facts": [[999999, 0, 2]]}}"#),
            "out of range",
        ),
        // Out-of-range relation id.
        (
            format!(r#"{{"time": {t0}, "facts": [[1, 999999, 2]]}}"#),
            "out of range",
        ),
        // The same fact twice in one body.
        (
            format!(r#"{{"time": {t0}, "facts": [[1, 0, 2], [1, 0, 2]]}}"#),
            "more than once",
        ),
    ];
    for (body, needle) in cases {
        let (status, resp) = request(addr, "POST", "/ingest", body);
        assert_eq!(status, 400, "{body} -> {resp}");
        assert!(resp.contains(needle), "{body} -> {resp}");
    }
    // An oversized idempotency key is refused before any work happens.
    let long_id = "x".repeat(129);
    let (status, resp) = request_full(
        addr,
        "POST",
        "/ingest",
        &format!(r#"{{"time": {t0}, "facts": [[1, 0, 2]]}}"#),
        &[("X-LogCL-Ingest-Id", &long_id)],
    );
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("X-LogCL-Ingest-Id"), "{resp}");

    // Nothing moved: no horizon change, no durable acks, no logged frames.
    assert_eq!(horizon_of(addr), t0);
    let m = server.metrics();
    assert_eq!(m.durable_acks.load(Ordering::Relaxed), 0);
    assert_eq!(m.wal_appended_frames.load(Ordering::Relaxed), 0);

    // A valid ingest still lands, and a restart replays only it.
    ingest(addr, t0, "[[1, 0, 2]]", false, None);
    let crash = scratch("validation-crash");
    copy_dir(&dir, &crash);
    server.shutdown();
    let reborn = durable_server(&crash, 0);
    assert_eq!(horizon_of(reborn.addr()), t0 + 1);
    assert_eq!(
        reborn.metrics().wal_replayed_frames.load(Ordering::Relaxed),
        1
    );
    reborn.shutdown();
}

/// `/shutdown` drains the WAL: after a graceful stop the live directory
/// itself (not a crash image) recovers every acked ingest.
#[test]
fn graceful_shutdown_leaves_a_recoverable_wal() {
    let dir = scratch("graceful");
    let server = durable_server(&dir, 0);
    let addr = server.addr();
    let t0 = horizon_of(addr);
    ingest(addr, t0, "[[1, 0, 2], [3, 1, 4]]", true, None);
    let horizon = horizon_of(addr);
    let answer = predict_answer(addr, horizon);
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.run();

    let reborn = durable_server(&dir, 0);
    assert_eq!(horizon_of(reborn.addr()), horizon);
    assert_eq!(predict_answer(reborn.addr(), horizon), answer);
    reborn.shutdown();
}
