//! Deterministic chaos suite (`--features fault-inject`).
//!
//! Each test installs a seeded [`logcl_serve::fault::FaultPlan`] and drives
//! a real server over sockets, asserting the overload-resilience contract:
//! no panics, `/healthz` and `/metrics` always answer, every shed response
//! carries `Retry-After`, the tier recovers to Normal once the fault
//! clears, and predictions after a degradation episode are bit-identical
//! to predictions before it.
//!
//! The fault plan is process-global, so the tests serialise on a mutex and
//! clear the plan before releasing it.

#![cfg(feature = "fault-inject")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use logcl_core::LogClConfig;
use logcl_serve::fault::{self, FaultPlan, FaultPoint};
use logcl_serve::{ModelSpec, ServeConfig, Server, StartError};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialises chaos tests (the fault plan is process-global) and clears
/// any plan a previous — possibly panicked — test left installed.
fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

fn untrained_spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        linger: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

/// Minimal blocking HTTP/1.1 client returning status, headers
/// (lower-cased names), and body.
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    (status, headers, body)
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let want = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == want)
        .map(|(_, v)| v.as_str())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn horizon_of(addr: std::net::SocketAddr) -> u64 {
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz must always be live");
    json(&body).get("horizon").and_then(Value::as_u64).unwrap()
}

/// Asserts the liveness endpoints answer 200 and returns the tier healthz
/// reports — callable at any point of any fault episode.
fn health_always_live(addr: std::net::SocketAddr) -> String {
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "healthz shed: {body}");
    let tier = json(&body)
        .get("tier")
        .and_then(Value::as_str)
        .expect("healthz reports the tier")
        .to_string();
    let (status, _, _) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "metrics shed");
    tier
}

#[test]
fn injected_checkpoint_fault_fails_startup_with_a_typed_error() {
    let _guard = serial();
    fault::install(FaultPlan {
        checkpoint_read_error: true,
        ..FaultPlan::default()
    });
    let err = match Server::start(serve_config(), tiny_ds(), vec![untrained_spec()]) {
        Ok(_) => panic!("injected checkpoint fault must fail startup"),
        Err(e) => e,
    };
    assert!(
        matches!(err, StartError::Checkpoint { .. }),
        "wrong error kind: {err}"
    );
    assert_eq!(fault::fired(FaultPoint::CheckpointRead), 1);

    // With the plan cleared, the same configuration starts cleanly.
    fault::clear();
    let server =
        Server::start(serve_config(), tiny_ds(), vec![untrained_spec()]).expect("clean start");
    assert_eq!(health_always_live(server.addr()), "normal");
    server.shutdown();
}

#[test]
fn compute_delay_overload_sheds_then_recovers_bit_identically() {
    let _guard = serial();
    let cfg = ServeConfig {
        brownout_sojourn: Duration::from_millis(20),
        shed_sojourn: Duration::from_millis(60),
        recovery_streak: 2,
        ..serve_config()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t = horizon_of(addr);
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 5}}"#);

    // Unloaded baseline, full fidelity.
    let (status, headers, baseline) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200, "{baseline}");
    assert_eq!(header_of(&headers, "X-LogCL-Degradation"), Some("normal"));
    let baseline = json(&baseline)
        .get("predictions")
        .expect("predictions array")
        .to_string();

    // Inject a deterministic compute stall into every batch, then pile
    // work up behind it.
    fault::install(FaultPlan {
        seed: 42,
        compute_delay: Some(Duration::from_millis(400)),
        ..FaultPlan::default()
    });
    let stalled = std::thread::spawn(move || {
        let body = format!(r#"{{"subject": 1, "relation": 0, "time": {t}, "k": 5}}"#);
        request(addr, "POST", "/predict", &body)
    });
    std::thread::sleep(Duration::from_millis(100));
    let queued = std::thread::spawn(move || {
        let body = format!(r#"{{"subject": 2, "relation": 0, "time": {t}, "k": 5}}"#);
        request(addr, "POST", "/predict", &body)
    });
    std::thread::sleep(Duration::from_millis(150));

    // By now the queued job is far older than shed_sojourn: fresh predicts
    // must be refused with Retry-After, while liveness stays untouched.
    let (status, headers, body) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 503, "overloaded server must shed: {body}");
    assert!(
        header_of(&headers, "Retry-After").is_some(),
        "shed without Retry-After: {headers:?}"
    );
    let tier = health_always_live(addr);
    assert_ne!(tier, "normal", "tier must reflect the episode");

    // Work admitted before the overload is still answered, not dropped.
    let (status, _, body) = stalled.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = queued.join().unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(fault::fired(FaultPoint::ComputeDelay) >= 1);
    assert!(
        server.metrics().shed_overload.load(Ordering::Relaxed) >= 1,
        "admission shed must be counted"
    );

    // Clear the fault: probe traffic must walk the tier back to Normal
    // (recovery is streak-bounded, so a handful of probes suffices).
    fault::clear();
    let mut recovered = None;
    for _ in 0..50 {
        let (status, headers, body) = request(addr, "POST", "/predict", &query);
        if status == 200 && header_of(&headers, "X-LogCL-Degradation") == Some("normal") {
            let v = json(&body);
            if v.get("degraded").and_then(Value::as_bool) == Some(false) {
                recovered = Some(v.get("predictions").expect("predictions").to_string());
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let recovered = recovered.expect("tier never recovered to normal");
    assert_eq!(
        recovered, baseline,
        "post-episode predictions must be bit-identical to the unloaded baseline"
    );
    assert_eq!(health_always_live(addr), "normal");
    server.shutdown();
}

#[test]
fn batcher_death_sheds_predicts_but_leaves_liveness_up() {
    let _guard = serial();
    let server = Server::start(serve_config(), tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t = horizon_of(addr);
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}}}"#);

    // One healthy answer first (also advances the batch counter past 0).
    let (status, _, _) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);

    fault::install(FaultPlan {
        batcher_death_at_batch: Some(0),
        ..FaultPlan::default()
    });
    // The next dequeue kills the worker: the in-hand request is answered
    // 503 (dropped reply channel), not left hanging.
    let (status, headers, body) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 503, "{body}");
    assert!(header_of(&headers, "Retry-After").is_some(), "{headers:?}");
    assert_eq!(fault::fired(FaultPoint::BatcherDeath), 1);

    // Subsequent predicts shed at admission — the worker is known dead —
    // while health stays live and names the tier.
    let (status, headers, _) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 503);
    assert!(header_of(&headers, "Retry-After").is_some());
    assert_eq!(health_always_live(addr), "shed");

    fault::clear();
    server.shutdown();
}

#[test]
fn queue_saturation_fault_sheds_with_retry_after() {
    let _guard = serial();
    let server = Server::start(serve_config(), tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t = horizon_of(addr);
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}}}"#);

    fault::install(FaultPlan {
        queue_saturated: true,
        ..FaultPlan::default()
    });
    let (status, headers, body) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("queue full"), "{body}");
    assert!(header_of(&headers, "Retry-After").is_some(), "{headers:?}");
    assert!(fault::fired(FaultPoint::QueueSaturate) >= 1);
    assert!(server.metrics().shed_queue_full.load(Ordering::Relaxed) >= 1);
    health_always_live(addr);

    fault::clear();
    let (status, _, _) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200, "cleared saturation must admit again");
    server.shutdown();
}

// ------------------------------------------------------------- WAL faults

fn wal_scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("logcl-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn durable_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        wal_dir: Some(dir.to_path_buf()),
        wal_compact_every: 0,
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..serve_config()
    }
}

fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read wal dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

fn ingest_with_id(addr: std::net::SocketAddr, t: u64, id: &str) -> (u16, String) {
    let body = format!(r#"{{"time": {t}, "facts": [[1, 0, 2], [3, 1, 4]], "update": true}}"#);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "POST /ingest HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nX-LogCL-Ingest-Id: {id}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// An injected WAL append failure fails the ack (500, naming the safe
/// retry), and the idempotent retry converges: the fact set is applied
/// exactly once in memory and exactly once in the durable log.
#[test]
fn wal_append_fault_fails_the_ack_and_the_retry_converges() {
    let _guard = serial();
    let dir = wal_scratch("append-fault");
    let server =
        Server::start(durable_config(&dir), tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t0 = horizon_of(addr);

    // The first (0th) append fails; the retry's append succeeds.
    fault::install(FaultPlan {
        wal_append_error_at: Some(0),
        ..FaultPlan::default()
    });
    let (status, body) = ingest_with_id(addr, t0, "retry-append");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("retry is safe"), "{body}");
    assert_eq!(fault::fired(FaultPoint::WalAppend), 1);
    // The application already happened in memory (the failure was in the
    // log, not the model) — the horizon moved, but nothing was acked.
    assert_eq!(horizon_of(addr), t0 + 1);
    assert_eq!(server.metrics().durable_acks.load(Ordering::Relaxed), 0);
    assert_eq!(server.metrics().wal_errors.load(Ordering::Relaxed), 1);

    let (status, body) = ingest_with_id(addr, t0, "retry-append");
    assert_eq!(status, 200, "the retry must succeed: {body}");
    let v = json(&body);
    assert_eq!(v.get("durable").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("appended").and_then(Value::as_u64),
        Some(0),
        "idempotent re-application appends nothing new"
    );
    assert_eq!(horizon_of(addr), t0 + 1, "applied exactly once");
    assert_eq!(fault::fired(FaultPoint::WalAppend), 1, "fault is one-shot");

    // The retried frame is durable: a crash image recovers the facts.
    let crash = wal_scratch("append-fault-crash");
    copy_dir(&dir, &crash);
    fault::clear();
    server.shutdown();
    let reborn =
        Server::start(durable_config(&crash), tiny_ds(), vec![untrained_spec()]).expect("reborn");
    assert_eq!(horizon_of(reborn.addr()), t0 + 1);
    reborn.shutdown();
}

/// An injected group-commit fsync failure fails every ack in the group; the
/// retry converges and — although the log then holds two frames for the same
/// ingest id — recovery replays the application exactly once.
#[test]
fn wal_fsync_fault_fails_the_group_and_recovery_applies_exactly_once() {
    let _guard = serial();
    let dir = wal_scratch("fsync-fault");
    let server =
        Server::start(durable_config(&dir), tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t0 = horizon_of(addr);

    fault::install(FaultPlan {
        wal_fsync_error_at: Some(0),
        ..FaultPlan::default()
    });
    let (status, body) = ingest_with_id(addr, t0, "retry-fsync");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("retry is safe"), "{body}");
    assert_eq!(fault::fired(FaultPoint::WalFsync), 1);
    assert_eq!(server.metrics().durable_acks.load(Ordering::Relaxed), 0);

    let (status, body) = ingest_with_id(addr, t0, "retry-fsync");
    assert_eq!(status, 200, "the retry must succeed: {body}");
    assert_eq!(
        json(&body).get("durable").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(horizon_of(addr), t0 + 1, "applied exactly once");
    let answer = {
        let q = format!(
            r#"{{"subject": 1, "relation": 0, "time": {}, "k": 5}}"#,
            t0 + 1
        );
        let (status, _, body) = request(addr, "POST", "/predict", &q);
        assert_eq!(status, 200, "{body}");
        json(&body)
            .get("predictions")
            .expect("predictions")
            .to_string()
    };

    let crash = wal_scratch("fsync-fault-crash");
    copy_dir(&dir, &crash);
    fault::clear();
    server.shutdown();

    // Both frames carry "retry-fsync": the first replay records the id, the
    // second is skipped — one application, bit-identical to the live server.
    let reborn =
        Server::start(durable_config(&crash), tiny_ds(), vec![untrained_spec()]).expect("reborn");
    let addr = reborn.addr();
    assert_eq!(
        horizon_of(addr),
        t0 + 1,
        "duplicate frame must not re-apply"
    );
    let q = format!(
        r#"{{"subject": 1, "relation": 0, "time": {}, "k": 5}}"#,
        t0 + 1
    );
    let (status, _, body) = request(addr, "POST", "/predict", &q);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json(&body)
            .get("predictions")
            .expect("predictions")
            .to_string(),
        answer,
        "recovery across a duplicated frame must stay bit-identical"
    );
    reborn.shutdown();
}

/// Ingest during a Brownout episode: `/ingest` is never browned out — the
/// ack is still durable, and the facts survive a crash restart.
#[test]
fn ingest_during_brownout_still_acks_durably() {
    let _guard = serial();
    let dir = wal_scratch("brownout-ingest");
    let cfg = ServeConfig {
        brownout_sojourn: Duration::ZERO,
        ..durable_config(&dir)
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t0 = horizon_of(addr);
    assert_eq!(health_always_live(addr), "brownout");

    let (status, body) = ingest_with_id(addr, t0, "brownout-1");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json(&body).get("durable").and_then(Value::as_bool),
        Some(true),
        "a browned-out server must still ack durably: {body}"
    );

    let crash = wal_scratch("brownout-ingest-crash");
    copy_dir(&dir, &crash);
    server.shutdown();
    let reborn =
        Server::start(durable_config(&crash), tiny_ds(), vec![untrained_spec()]).expect("reborn");
    assert_eq!(horizon_of(reborn.addr()), t0 + 1);
    reborn.shutdown();
}

#[test]
fn socket_stall_fault_slows_connections_but_never_drops_them() {
    let _guard = serial();
    let server = Server::start(serve_config(), tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();

    fault::install(FaultPlan {
        socket_stall: Some(Duration::from_millis(120)),
        ..FaultPlan::default()
    });
    let started = Instant::now();
    let (status, _, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "stalled connection must still be answered");
    assert!(
        started.elapsed() >= Duration::from_millis(120),
        "stall was not applied"
    );
    assert!(fault::fired(FaultPoint::SocketStall) >= 1);

    fault::clear();
    server.shutdown();
}
