//! End-to-end tests over real sockets: concurrent clients, micro-batching,
//! exactness versus the library's `predict_topk`, online ingestion, and
//! graceful shutdown. Everything runs against an ephemeral port with a
//! hand-rolled `TcpStream` HTTP client (no client-side dependencies either).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use logcl_core::{predict_topk_stream, LogCl, LogClConfig};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

/// An untrained model spec: deterministic init from the config seed, so a
/// locally built `LogCl::new` with the same config is parameter-identical.
fn untrained_spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

fn test_server(linger_ms: u64, threads: usize) -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        linger: Duration::from_millis(linger_ms),
        max_batch: 32,
        // Tests in this binary run in parallel and contend for CPU; push
        // the degradation thresholds out of reach so exactness tests never
        // see a browned-out answer. Overload behaviour has its own tests
        // with deliberately tight thresholds.
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("server must start")
}

/// Minimal blocking HTTP/1.1 client: one request per connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, path, body, &[]);
    (status, body)
}

/// Like [`request`] but sends extra request headers and returns the
/// response headers (lower-cased names) alongside status and body.
fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let extra: String = extra_headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    (status, headers, body)
}

/// The value of `name` (case-insensitive) among parsed response headers.
fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let want = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == want)
        .map(|(_, v)| v.as_str())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Pulls `(entity, probability)` pairs out of a `/predict` response body.
fn predictions_of(body: &Value) -> Vec<(u64, f32)> {
    body.get("predictions")
        .and_then(Value::as_array)
        .expect("predictions array")
        .iter()
        .map(|p| {
            (
                p.get("entity").and_then(Value::as_u64).expect("entity id"),
                p.get("probability")
                    .and_then(Value::as_f64)
                    .expect("probability") as f32,
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_get_batched_answers_identical_to_sequential() {
    let server = test_server(100, 8);
    let addr = server.addr();
    let t = {
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        json(&body).get("horizon").and_then(Value::as_u64).unwrap() as usize
    };

    // Warm the encoding cache so the batch below exercises the hit path.
    let (status, _) = request(
        addr,
        "POST",
        "/predict",
        &format!(r#"{{"subject": 0, "relation": 0, "time": {t}}}"#),
    );
    assert_eq!(status, 200);

    // 8 clients fire simultaneously at the same timestamp.
    let n = 8usize;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let body = format!(r#"{{"subject": {i}, "relation": 0, "time": {t}, "k": 5}}"#);
                request(addr, "POST", "/predict", &body)
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Reference: the same untrained config scored sequentially in-process.
    let ds = tiny_ds();
    let mut reference = LogCl::new(&ds, tiny_cfg());
    let mut max_batch = 0u64;
    let mut any_cache_hit = false;
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "client {i}: {body}");
        let v = json(body);
        let got = predictions_of(&v);
        let expected: Vec<(u64, f32)> = predict_topk_stream(&mut reference, &ds, i, 0, 5)
            .unwrap()
            .into_iter()
            .map(|p| (p.entity as u64, p.probability))
            .collect();
        assert_eq!(got, expected, "client {i} diverged from sequential path");
        max_batch = max_batch.max(v.get("batch_size").and_then(Value::as_u64).unwrap());
        any_cache_hit |= v.get("cache_hit").and_then(Value::as_bool).unwrap();
    }
    assert!(max_batch > 1, "concurrent requests never coalesced");
    assert!(any_cache_hit, "warm encoding was never reused");

    let metrics = server.metrics();
    assert!(metrics.cache_hits.load(Ordering::Relaxed) > 0);
    assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);

    // The scrape endpoint reports the same story.
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("logcl_encoding_cache_hits_total"), "{text}");
    assert!(text.contains("logcl_batch_size_count"), "{text}");
    server.shutdown();
}

#[test]
fn rejects_malformed_requests_with_proper_statuses() {
    let server = test_server(1, 2);
    let addr = server.addr();

    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/predict", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", "");
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/predict", r#"{"relation": 0}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("subject"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 999999, "relation": 0}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("out of range"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0, "model": "missing"}"#,
    );
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(addr, "POST", "/ingest", r#"{"time": 0, "facts": []}"#);
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        r#"{"time": 999999, "facts": [[0, 0, 1]]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("gap"), "{body}");
    server.shutdown();
}

#[test]
fn ingest_extends_horizon_invalidates_cache_and_changes_predictions() {
    let server = test_server(1, 2);
    let addr = server.addr();
    let horizon = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };

    // Baseline prediction at the current horizon (fills the cache).
    let query = format!(r#"{{"subject": 1, "relation": 0, "time": {horizon}, "k": 5}}"#);
    let (status, before) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);
    let before = predictions_of(&json(&before));

    // Ingest fresh facts at the horizon and run one online step.
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        &format!(r#"{{"time": {horizon}, "facts": [[1, 0, 2], [3, 1, 4]], "update": true}}"#),
    );
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert!(v.get("appended").and_then(Value::as_u64).unwrap() > 0);
    assert!(v.get("online_update").and_then(Value::as_bool).unwrap());
    assert!(
        v.get("invalidated_encodings")
            .and_then(Value::as_u64)
            .unwrap()
            > 0,
        "cached encoding at t = horizon must be dropped: {body}"
    );
    assert_eq!(
        v.get("horizon").and_then(Value::as_u64).unwrap(),
        horizon + 1
    );

    // The new horizon is visible to liveness checks...
    let (_, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(
        json(&body).get("horizon").and_then(Value::as_u64).unwrap(),
        horizon + 1
    );
    // ...the invalidation counter moved...
    assert!(server.metrics().cache_invalidations.load(Ordering::Relaxed) > 0);
    assert!(server.metrics().ingested_facts.load(Ordering::Relaxed) > 0);
    // ...and the same query now answers differently (weights changed).
    let (status, after) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);
    let after = predictions_of(&json(&after));
    assert_ne!(before, after, "online step left predictions untouched");
    server.shutdown();
}

#[test]
fn freshness_metrics_track_streaming_advance_and_online_adaptation() {
    let server = test_server(1, 2);
    let addr = server.addr();
    let horizon = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };

    // One miss then one hit at the head primes the post-ingest hit-ratio
    // gauge at exactly 0.5.
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {horizon}, "k": 3}}"#);
    let (status, _) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);

    // A head ingest (update defaults to true) advances the streaming state
    // and runs the bounded online loop.
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        &format!(r#"{{"time": {horizon}, "facts": [[0, 0, 1], [2, 1, 3]]}}"#),
    );
    assert_eq!(status, 200, "{body}");

    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        // Horizon gauge moved with the ingest.
        format!("logcl_encoder_state_horizon {}", horizon + 1),
        // The O(Δ) advance was timed exactly once.
        "logcl_ingest_advance_seconds_count 1".into(),
        // One bounded online loop: default budget is a single step, taken.
        "logcl_online_steps_total 1".into(),
        "logcl_online_rollbacks_total 0".into(),
        // Boot rebuild (one model) + the post-update rebuild, each under
        // its own reason label.
        "logcl_encoder_state_rebuilds_total{reason=\"boot\"} 1".into(),
        "logcl_encoder_state_rebuilds_total{reason=\"weight_update\"} 1".into(),
        "logcl_encoder_state_rebuilds_total{reason=\"backfill\"} 0".into(),
        "logcl_encoder_state_rebuilds_total{reason=\"recovery\"} 0".into(),
        // 1 hit / (1 hit + 1 miss) at ingest time.
        "logcl_post_ingest_cache_hit_ratio 0.5".into(),
    ] {
        let family: String = family;
        assert!(text.contains(&family), "missing {family} in:\n{text}");
    }
    server.shutdown();
}

#[test]
fn serial_and_default_backends_rank_identically() {
    // `--threads 1` (serial backend) and the default (auto-detected thread
    // count) must produce byte-identical /predict answers: the kernel
    // backends are bit-identical by construction, and serving must preserve
    // that guarantee end to end.
    let answers = |compute_threads: usize| -> Vec<Vec<(u64, f32)>> {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            compute_threads,
            brownout_sojourn: Duration::from_secs(10),
            shed_sojourn: Duration::from_secs(60),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
        let addr = server.addr();
        let t = {
            let (_, body) = request(addr, "GET", "/healthz", "");
            json(&body).get("horizon").and_then(Value::as_u64).unwrap()
        };
        let out = (0..4)
            .map(|s| {
                let body = format!(r#"{{"subject": {s}, "relation": 0, "time": {t}, "k": 7}}"#);
                let (status, body) = request(addr, "POST", "/predict", &body);
                assert_eq!(status, 200, "{body}");
                predictions_of(&json(&body))
            })
            .collect();
        // The scrape endpoint names the active backend while we're here.
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        assert!(
            metrics.contains("logcl_kernel_backend_info{backend="),
            "{metrics}"
        );
        assert!(
            metrics.contains("logcl_compute_utilisation_count"),
            "{metrics}"
        );
        server.shutdown();
        out
    };
    let serial = answers(1);
    let auto = answers(0);
    assert!(!serial[0].is_empty());
    assert_eq!(serial, auto, "thread count changed /predict rankings");
}

#[test]
fn graceful_shutdown_answers_requests_already_in_flight() {
    let server = test_server(150, 2);
    let addr = server.addr();
    let t = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };

    // A request that will still be lingering in the micro-batcher when the
    // shutdown endpoint fires.
    let client = std::thread::spawn(move || {
        request(
            addr,
            "POST",
            "/predict",
            &format!(r#"{{"subject": 2, "relation": 1, "time": {t}}}"#),
        )
    });
    std::thread::sleep(Duration::from_millis(40));
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.run(); // returns once every thread is joined

    let (status, body) = client.join().unwrap();
    assert_eq!(status, 200, "in-flight request was dropped: {body}");
    assert!(!predictions_of(&json(&body)).is_empty());
}

#[test]
fn stalled_connection_is_answered_408_and_counted() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).unwrap();
    let addr = server.addr();

    // Open a connection, send half a request head, then stall.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nHost: t")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    assert!(text.starts_with("HTTP/1.1 408 "), "{text:?}");
    assert_eq!(server.metrics().read_timeouts.load(Ordering::Relaxed), 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metrics.contains("logcl_read_timeouts_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn expired_deadline_is_shed_before_compute_and_admitted_work_stays_exact() {
    // A long linger holds the batch open past the short deadline: the
    // expired job must be answered 504 *without* reaching the model, while
    // the patient job in the same batch is answered exactly as an unloaded
    // server would. Degradation thresholds are pushed out of reach so the
    // admitted answer is full-fidelity.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        linger: Duration::from_millis(300),
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap() as usize
    };

    // The impatient client: 100ms budget against a 300ms linger.
    let impatient = std::thread::spawn(move || {
        request_full(
            addr,
            "POST",
            "/predict",
            &format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 5}}"#),
            &[("X-LogCL-Deadline-Ms", "100")],
        )
    });
    // The patient client joins the same (model, t) batch mid-linger.
    std::thread::sleep(Duration::from_millis(40));
    let patient = std::thread::spawn(move || {
        request_full(
            addr,
            "POST",
            "/predict",
            &format!(r#"{{"subject": 1, "relation": 0, "time": {t}, "k": 5}}"#),
            &[],
        )
    });

    // The impatient client sees 504 either way the race falls: its handler
    // times out at the 100ms deadline, or reads the batcher's shed answer.
    // Either message names the deadline; the counters below prove the job
    // never reached compute.
    let (status, headers, body) = impatient.join().unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline"), "{body}");
    assert!(
        header_of(&headers, "Retry-After").is_some(),
        "shed responses must carry Retry-After: {headers:?}"
    );
    let (status, headers, body) = patient.join().unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_of(&headers, "X-LogCL-Degradation"), Some("normal"));
    let v = json(&body);
    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(false));

    // Byte-identical to the unloaded path: same untrained config scored
    // sequentially in-process.
    let ds = tiny_ds();
    let mut reference = LogCl::new(&ds, tiny_cfg());
    let expected: Vec<(u64, f32)> = predict_topk_stream(&mut reference, &ds, 1, 0, 5)
        .unwrap()
        .into_iter()
        .map(|p| (p.entity as u64, p.probability))
        .collect();
    assert_eq!(
        predictions_of(&v),
        expected,
        "admitted request diverged from the unloaded answer"
    );

    // The shed happened in the queue, before compute, and the scrape says so.
    let metrics = server.metrics();
    assert_eq!(metrics.shed_before_compute.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.shed_deadline_queue.load(Ordering::Relaxed), 1);
    let (_, text) = request(addr, "GET", "/metrics", "");
    assert!(
        text.contains("logcl_shed_total{reason=\"deadline_queue\"} 1"),
        "{text}"
    );
    assert!(text.contains("logcl_shed_before_compute_total 1"), "{text}");
    server.shutdown();
}

#[test]
fn brownout_degrades_answers_and_names_the_tier() {
    // A zero brownout threshold pins the tier at (at least) Brownout from
    // the first observation: answers must be degraded — capped k, local-only
    // decoding — and every response must name the tier. /healthz is never
    // shed and reports the tier too.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        brownout_sojourn: Duration::ZERO,
        shed_sojourn: Duration::from_secs(60),
        brownout_k_cap: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();
    let t = {
        let (status, headers, body) = request_full(addr, "GET", "/healthz", "", &[]);
        assert_eq!(status, 200);
        assert_eq!(
            header_of(&headers, "X-LogCL-Degradation"),
            Some("brownout"),
            "{headers:?}"
        );
        let v = json(&body);
        assert_eq!(v.get("tier").and_then(Value::as_str), Some("brownout"));
        v.get("horizon").and_then(Value::as_u64).unwrap()
    };

    let (status, headers, body) = request_full(
        addr,
        "POST",
        "/predict",
        &format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 7}}"#),
        &[],
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(header_of(&headers, "X-LogCL-Degradation"), Some("brownout"));
    let v = json(&body);
    assert_eq!(
        v.get("degraded").and_then(Value::as_bool),
        Some(true),
        "{body}"
    );
    assert!(
        predictions_of(&v).len() <= 2,
        "brownout must cap k at brownout_k_cap: {body}"
    );
    assert!(server.metrics().degraded_responses.load(Ordering::Relaxed) >= 1);
    let (_, text) = request(addr, "GET", "/metrics", "");
    assert!(text.contains("logcl_degradation_tier 1"), "{text}");
    server.shutdown();
}

#[test]
fn deadline_header_is_validated_and_expired_budgets_never_queue() {
    let server = test_server(1, 2);
    let addr = server.addr();

    let (status, _, body) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0}"#,
        &[("X-LogCL-Deadline-Ms", "soon")],
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("X-LogCL-Deadline-Ms"), "{body}");

    // A zero budget is expired by the time admission runs: 504 without any
    // model work, counted as an admission shed, with Retry-After.
    let (status, headers, body) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0}"#,
        &[("X-LogCL-Deadline-Ms", "0")],
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("before admission"), "{body}");
    assert!(header_of(&headers, "Retry-After").is_some(), "{headers:?}");
    assert_eq!(
        server
            .metrics()
            .shed_deadline_admission
            .load(Ordering::Relaxed),
        1
    );
    // A sane budget still answers.
    let (status, _, _) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0}"#,
        &[("X-LogCL-Deadline-Ms", "30000")],
    );
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn deadline_header_rejects_garbage_and_clamps_oversized_budgets() {
    let server = test_server(1, 2);
    let addr = server.addr();

    // Negative and u64-overflowing values are 400s naming the header —
    // never a panic, never a silent fallback to the default budget.
    for bad in ["-5", "99999999999999999999999"] {
        let (status, _, body) = request_full(
            addr,
            "POST",
            "/predict",
            r#"{"subject": 0, "relation": 0}"#,
            &[("X-LogCL-Deadline-Ms", bad)],
        );
        assert_eq!(status, 400, "value {bad:?}: {body}");
        assert!(
            body.contains("X-LogCL-Deadline-Ms"),
            "value {bad:?}: {body}"
        );
    }

    // A budget above the server ceiling parses fine and is clamped to
    // `max_deadline` rather than rejected: ~31 years becomes 120s and the
    // request answers normally.
    let (status, _, body) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0}"#,
        &[("X-LogCL-Deadline-Ms", "999999999999")],
    );
    assert_eq!(status, 200, "{body}");

    // Surrounding whitespace is tolerated (the header is trimmed before
    // parsing), matching what proxies commonly emit.
    let (status, _, body) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0}"#,
        &[("X-LogCL-Deadline-Ms", " 30000 ")],
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

#[test]
fn concurrency_shed_is_503_with_retry_after() {
    // One predict slot and a long linger: while the first request holds
    // the slot inside the batcher window, a second concurrent request must
    // be shed at admission — 503 with Retry-After, counted as a
    // concurrency shed — and the holder still answers 200.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        linger: Duration::from_millis(300),
        max_inflight_predict: 1,
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
    let addr = server.addr();

    let holder = std::thread::spawn(move || {
        request(addr, "POST", "/predict", r#"{"subject": 0, "relation": 0}"#)
    });
    std::thread::sleep(Duration::from_millis(80));
    let (status, headers, body) = request_full(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 1, "relation": 0}"#,
        &[],
    );
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("in-flight"), "{body}");
    assert!(
        header_of(&headers, "Retry-After").is_some(),
        "every 503 must carry Retry-After: {headers:?}"
    );
    let (status, body) = holder.join().unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(server.metrics().shed_concurrency.load(Ordering::Relaxed), 1);
    server.shutdown();
}

#[test]
fn keep_alive_connection_serves_many_requests_and_close_is_honoured() {
    let server = test_server(1, 2);
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // Reads exactly one Content-Length-delimited response off the stream.
    let read_one = |stream: &mut TcpStream| -> (u16, String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..head_end].to_vec()).expect("UTF-8 head");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(String::from)
            })
            .and_then(|v| v.parse().ok())
            .expect("Content-Length header");
        let connection = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("connection:")
                    .map(str::trim)
                    .map(String::from)
            })
            .expect("Connection header");
        while buf.len() < head_end + content_length {
            let n = stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = String::from_utf8(buf[head_end..head_end + content_length].to_vec()).unwrap();
        (status, connection, body)
    };

    // Three requests down one connection: the server must answer each with
    // `Connection: keep-alive` and keep the socket open.
    for i in 0..3 {
        let body = format!(r#"{{"subject": {i}, "relation": 0}}"#);
        let req = format!(
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).expect("write request");
        let (status, connection, body) = read_one(&mut stream);
        assert_eq!(status, 200, "request {i}: {body}");
        assert_eq!(connection, "keep-alive", "request {i}");
        assert!(!predictions_of(&json(&body)).is_empty(), "request {i}");
    }

    // `Connection: close` on the final request is honoured: the server
    // answers with close and EOFs the stream.
    let req = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream.write_all(req.as_bytes()).expect("write request");
    let (status, connection, _) = read_one(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "server must close after Connection: close");
    server.shutdown();
}

#[test]
fn oversized_body_is_answered_413_and_counted() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_body_bytes: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).unwrap();
    let addr = server.addr();

    let big = format!(
        r#"{{"subject": 0, "relation": 0, "padding": "{}"}}"#,
        "x".repeat(256)
    );
    let (status, body) = request(addr, "POST", "/predict", &big);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("too large"), "{body}");
    assert_eq!(server.metrics().oversized_bodies.load(Ordering::Relaxed), 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("logcl_oversized_bodies_total 1"),
        "{metrics}"
    );
    // A normally-sized request on the same server still succeeds.
    let (status, _) = request(addr, "POST", "/predict", r#"{"subject": 0, "relation": 0}"#);
    assert_eq!(status, 200);
    server.shutdown();
}
