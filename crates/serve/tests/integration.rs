//! End-to-end tests over real sockets: concurrent clients, micro-batching,
//! exactness versus the library's `predict_topk`, online ingestion, and
//! graceful shutdown. Everything runs against an ephemeral port with a
//! hand-rolled `TcpStream` HTTP client (no client-side dependencies either).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use logcl_core::{predict_topk, LogCl, LogClConfig};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

/// An untrained model spec: deterministic init from the config seed, so a
/// locally built `LogCl::new` with the same config is parameter-identical.
fn untrained_spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

fn test_server(linger_ms: u64, threads: usize) -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        linger: Duration::from_millis(linger_ms),
        max_batch: 32,
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("server must start")
}

/// Minimal blocking HTTP/1.1 client: one request per connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Pulls `(entity, probability)` pairs out of a `/predict` response body.
fn predictions_of(body: &Value) -> Vec<(u64, f32)> {
    body.get("predictions")
        .and_then(Value::as_array)
        .expect("predictions array")
        .iter()
        .map(|p| {
            (
                p.get("entity").and_then(Value::as_u64).expect("entity id"),
                p.get("probability")
                    .and_then(Value::as_f64)
                    .expect("probability") as f32,
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_get_batched_answers_identical_to_sequential() {
    let server = test_server(100, 8);
    let addr = server.addr();
    let t = {
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        json(&body).get("horizon").and_then(Value::as_u64).unwrap() as usize
    };

    // Warm the encoding cache so the batch below exercises the hit path.
    let (status, _) = request(
        addr,
        "POST",
        "/predict",
        &format!(r#"{{"subject": 0, "relation": 0, "time": {t}}}"#),
    );
    assert_eq!(status, 200);

    // 8 clients fire simultaneously at the same timestamp.
    let n = 8usize;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let body = format!(r#"{{"subject": {i}, "relation": 0, "time": {t}, "k": 5}}"#);
                request(addr, "POST", "/predict", &body)
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Reference: the same untrained config scored sequentially in-process.
    let ds = tiny_ds();
    let mut reference = LogCl::new(&ds, tiny_cfg());
    let mut max_batch = 0u64;
    let mut any_cache_hit = false;
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "client {i}: {body}");
        let v = json(body);
        let got = predictions_of(&v);
        let expected: Vec<(u64, f32)> = predict_topk(&mut reference, &ds, i, 0, t, 5)
            .unwrap()
            .into_iter()
            .map(|p| (p.entity as u64, p.probability))
            .collect();
        assert_eq!(got, expected, "client {i} diverged from sequential path");
        max_batch = max_batch.max(v.get("batch_size").and_then(Value::as_u64).unwrap());
        any_cache_hit |= v.get("cache_hit").and_then(Value::as_bool).unwrap();
    }
    assert!(max_batch > 1, "concurrent requests never coalesced");
    assert!(any_cache_hit, "warm encoding was never reused");

    let metrics = server.metrics();
    assert!(metrics.cache_hits.load(Ordering::Relaxed) > 0);
    assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);

    // The scrape endpoint reports the same story.
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("logcl_encoding_cache_hits_total"), "{text}");
    assert!(text.contains("logcl_batch_size_count"), "{text}");
    server.shutdown();
}

#[test]
fn rejects_malformed_requests_with_proper_statuses() {
    let server = test_server(1, 2);
    let addr = server.addr();

    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/predict", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/healthz", "");
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/predict", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(addr, "POST", "/predict", r#"{"relation": 0}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("subject"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 999999, "relation": 0}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("out of range"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0, "model": "missing"}"#,
    );
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(addr, "POST", "/ingest", r#"{"time": 0, "facts": []}"#);
    assert_eq!(status, 400, "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        r#"{"time": 999999, "facts": [[0, 0, 1]]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("gap"), "{body}");
    server.shutdown();
}

#[test]
fn ingest_extends_horizon_invalidates_cache_and_changes_predictions() {
    let server = test_server(1, 2);
    let addr = server.addr();
    let horizon = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };

    // Baseline prediction at the current horizon (fills the cache).
    let query = format!(r#"{{"subject": 1, "relation": 0, "time": {horizon}, "k": 5}}"#);
    let (status, before) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);
    let before = predictions_of(&json(&before));

    // Ingest fresh facts at the horizon and run one online step.
    let (status, body) = request(
        addr,
        "POST",
        "/ingest",
        &format!(r#"{{"time": {horizon}, "facts": [[1, 0, 2], [3, 1, 4]], "update": true}}"#),
    );
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert!(v.get("appended").and_then(Value::as_u64).unwrap() > 0);
    assert!(v.get("online_update").and_then(Value::as_bool).unwrap());
    assert!(
        v.get("invalidated_encodings")
            .and_then(Value::as_u64)
            .unwrap()
            > 0,
        "cached encoding at t = horizon must be dropped: {body}"
    );
    assert_eq!(
        v.get("horizon").and_then(Value::as_u64).unwrap(),
        horizon + 1
    );

    // The new horizon is visible to liveness checks...
    let (_, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(
        json(&body).get("horizon").and_then(Value::as_u64).unwrap(),
        horizon + 1
    );
    // ...the invalidation counter moved...
    assert!(server.metrics().cache_invalidations.load(Ordering::Relaxed) > 0);
    assert!(server.metrics().ingested_facts.load(Ordering::Relaxed) > 0);
    // ...and the same query now answers differently (weights changed).
    let (status, after) = request(addr, "POST", "/predict", &query);
    assert_eq!(status, 200);
    let after = predictions_of(&json(&after));
    assert_ne!(before, after, "online step left predictions untouched");
    server.shutdown();
}

#[test]
fn serial_and_default_backends_rank_identically() {
    // `--threads 1` (serial backend) and the default (auto-detected thread
    // count) must produce byte-identical /predict answers: the kernel
    // backends are bit-identical by construction, and serving must preserve
    // that guarantee end to end.
    let answers = |compute_threads: usize| -> Vec<Vec<(u64, f32)>> {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            compute_threads,
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).expect("start");
        let addr = server.addr();
        let t = {
            let (_, body) = request(addr, "GET", "/healthz", "");
            json(&body).get("horizon").and_then(Value::as_u64).unwrap()
        };
        let out = (0..4)
            .map(|s| {
                let body = format!(r#"{{"subject": {s}, "relation": 0, "time": {t}, "k": 7}}"#);
                let (status, body) = request(addr, "POST", "/predict", &body);
                assert_eq!(status, 200, "{body}");
                predictions_of(&json(&body))
            })
            .collect();
        // The scrape endpoint names the active backend while we're here.
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        assert!(
            metrics.contains("logcl_kernel_backend_info{backend="),
            "{metrics}"
        );
        assert!(
            metrics.contains("logcl_compute_utilisation_count"),
            "{metrics}"
        );
        server.shutdown();
        out
    };
    let serial = answers(1);
    let auto = answers(0);
    assert!(!serial[0].is_empty());
    assert_eq!(serial, auto, "thread count changed /predict rankings");
}

#[test]
fn graceful_shutdown_answers_requests_already_in_flight() {
    let server = test_server(150, 2);
    let addr = server.addr();
    let t = {
        let (_, body) = request(addr, "GET", "/healthz", "");
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };

    // A request that will still be lingering in the micro-batcher when the
    // shutdown endpoint fires.
    let client = std::thread::spawn(move || {
        request(
            addr,
            "POST",
            "/predict",
            &format!(r#"{{"subject": 2, "relation": 1, "time": {t}}}"#),
        )
    });
    std::thread::sleep(Duration::from_millis(40));
    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.run(); // returns once every thread is joined

    let (status, body) = client.join().unwrap();
    assert_eq!(status, 200, "in-flight request was dropped: {body}");
    assert!(!predictions_of(&json(&body)).is_empty());
}

#[test]
fn stalled_connection_is_answered_408_and_counted() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        read_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).unwrap();
    let addr = server.addr();

    // Open a connection, send half a request head, then stall.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nHost: t")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    assert!(text.starts_with("HTTP/1.1 408 "), "{text:?}");
    assert_eq!(server.metrics().read_timeouts.load(Ordering::Relaxed), 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metrics.contains("logcl_read_timeouts_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn oversized_body_is_answered_413_and_counted() {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_body_bytes: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, tiny_ds(), vec![untrained_spec()]).unwrap();
    let addr = server.addr();

    let big = format!(
        r#"{{"subject": 0, "relation": 0, "padding": "{}"}}"#,
        "x".repeat(256)
    );
    let (status, body) = request(addr, "POST", "/predict", &big);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("too large"), "{body}");
    assert_eq!(server.metrics().oversized_bodies.load(Ordering::Relaxed), 1);
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("logcl_oversized_bodies_total 1"),
        "{metrics}"
    );
    // A normally-sized request on the same server still succeeds.
    let (status, _) = request(addr, "POST", "/predict", r#"{"subject": 0, "relation": 0}"#);
    assert_eq!(status, 200);
    server.shutdown();
}
