//! Log-bucketed latency histograms (HDR-style, integer-only).
//!
//! Values are microseconds. The first 32 buckets are exact (one per µs);
//! above that each power-of-two octave is split into 16 sub-buckets, giving
//! a worst-case relative error under ~6.25% at any magnitude while the whole
//! histogram stays under 1000 fixed buckets. Recording is O(1) with no
//! allocation, so the hot path of the load runner never touches the heap.

/// Number of exact low buckets (one per microsecond).
const LINEAR_MAX: u64 = 32;
/// Sub-buckets per octave above the linear range.
const SUBBUCKETS: usize = 16;
/// Total bucket count: octaves 5..=63, 16 sub-buckets each.
const BUCKETS: usize = LINEAR_MAX as usize + (64 - 6) * SUBBUCKETS + SUBBUCKETS;

/// A fixed-size log-bucketed histogram of `u64` microsecond values.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

/// Bucket index for value `v`.
fn index_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // Octave = position of the highest set bit (≥ 5 here); the next 4 bits
    // select the sub-bucket within the octave.
    let octave = 63 - u64::from(v.leading_zeros());
    let sub = ((v >> (octave - 4)) & 15) as usize;
    (LINEAR_MAX as usize + (octave as usize - 5) * SUBBUCKETS + sub).min(BUCKETS - 1)
}

/// Largest value mapping to bucket `idx` (inverse of [`index_of`]).
fn upper_bound(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let octave = 5 + (idx - LINEAR_MAX as usize) / SUBBUCKETS;
    let sub = ((idx - LINEAR_MAX as usize) % SUBBUCKETS) as u128;
    // u128 keeps the top octave (shift 59, factor up to 32) overflow-free.
    let ub = ((17 + sub) << (octave - 4)) - 1;
    ub.min(u128::from(u64::MAX)) as u64
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value (microseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value, exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound, capped at the
    /// exact observed max); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_upper_bound_are_consistent() {
        // Every value must land in a bucket whose upper bound is >= the
        // value and within the octave's 1/16 relative-error guarantee.
        let mut probes: Vec<u64> = (0..2_000).collect();
        for shift in 11..63 {
            probes.push(1u64 << shift);
            probes.push((1u64 << shift) + (1u64 << (shift - 1)));
            probes.push((1u64 << shift) - 1);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let idx = index_of(v);
            let ub = upper_bound(idx);
            assert!(ub >= v, "v={v} idx={idx} ub={ub}");
            if v >= LINEAR_MAX && idx < BUCKETS - 1 {
                // Relative error bound: ub < v * (1 + 1/16) + 1.
                assert!(
                    (ub as f64) < (v as f64) * 1.0626 + 1.0,
                    "v={v} idx={idx} ub={ub}"
                );
            }
        }
    }

    #[test]
    fn low_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LogHistogram::new();
        // 1000 values: 1..=1000 ms in µs.
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((475_000..=535_000).contains(&p50), "p50={p50}");
        assert!((940_000..=1_000_000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
        let mean = h.mean();
        assert!((mean - 500_500.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [10u64, 5_000, 123_456, 7] {
            a.record(v);
            c.record(v);
        }
        for v in [900_000u64, 42] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
        assert_eq!(a.mean(), c.mean());
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
