//! Ingest-to-visible freshness scenario.
//!
//! The latency trace in [`crate::runner`] measures how fast the server
//! *answers*; this module measures how fast new facts become *answerable*.
//! Each round:
//!
//! 1. reads the current horizon `h` from `/healthz`,
//! 2. stamps a [`Clock`] and POSTs one head append (`time == h`) to
//!    `/ingest`,
//! 3. polls `/predict` at `time == h + 1` — rejected as out-of-range until
//!    the append lands, answered `200` the moment the streaming state has
//!    advanced — and records the elapsed ingest-to-visible time.
//!
//! Because `/ingest` replies only after the WAL fsync *and* the O(Δ)
//! encoder-state advance, the measured interval covers the full durable
//! streaming path, not just request transport. Rounds exceeding the SLO are
//! counted as violations; the caller decides whether violations fail the
//! run.
//!
//! All wall-clock reads go through [`crate::timing::Clock`] (`logcl-analyze`
//! rule L003 bans `Instant::now()` elsewhere in this crate).

use std::time::Duration;

use crate::runner::{http_get, http_post};
use crate::timing::Clock;
use crate::LoadgenError;

/// How to probe freshness.
#[derive(Debug, Clone)]
pub struct FreshnessConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Head appends to measure, one per round.
    pub rounds: usize,
    /// Ingest-to-visible budget per round, in milliseconds.
    pub slo_ms: u64,
    /// Whether each ingest requests bounded online adaptation
    /// (`update: true`).
    pub update: bool,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
    /// Entity vocabulary size of the served dataset (round facts are derived
    /// from the round index modulo this).
    pub num_entities: usize,
    /// Relation vocabulary size of the served dataset.
    pub num_rels: usize,
}

impl Default for FreshnessConfig {
    fn default() -> Self {
        FreshnessConfig {
            addr: "127.0.0.1:0".into(),
            rounds: 8,
            slo_ms: 1_000,
            update: true,
            io_timeout: Duration::from_secs(60),
            num_entities: 2,
            num_rels: 1,
        }
    }
}

/// One measured head append.
#[derive(Debug, Clone)]
pub struct FreshnessRound {
    /// The head timestamp this round appended at.
    pub ingest_time: u64,
    /// Ingest POST round-trip (ack implies WAL fsync + state advance).
    pub ingest_micros: u64,
    /// Ingest send → first `200` predict at the new head.
    pub visible_micros: u64,
    /// Predict attempts before the new head answered.
    pub polls: u64,
}

/// Every round of a freshness run, plus the SLO it was judged against.
#[derive(Debug, Clone)]
pub struct FreshnessReport {
    /// Per-round measurements, in execution order.
    pub rounds: Vec<FreshnessRound>,
    /// The per-round budget, in milliseconds.
    pub slo_ms: u64,
}

impl FreshnessReport {
    /// Worst ingest-to-visible time across all rounds, in microseconds.
    pub fn max_visible_micros(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.visible_micros)
            .max()
            .unwrap_or(0)
    }

    /// Rounds whose ingest-to-visible time exceeded the SLO.
    pub fn violations(&self) -> usize {
        let budget = self.slo_ms.saturating_mul(1_000);
        self.rounds
            .iter()
            .filter(|r| r.visible_micros > budget)
            .count()
    }
}

/// Runs the scenario against a live server. Fails on transport errors, on
/// rejected ingests, and on a round where the new head never became visible
/// within `10 * slo_ms` (a stuck server must not hang the harness) — but
/// *not* on mere SLO violations, which are reported for the caller to judge.
pub fn run(cfg: &FreshnessConfig) -> Result<FreshnessReport, LoadgenError> {
    if cfg.rounds == 0 {
        return Err(LoadgenError::Config("freshness rounds must be > 0".into()));
    }
    if cfg.num_entities < 2 || cfg.num_rels == 0 {
        return Err(LoadgenError::Config(format!(
            "freshness needs >= 2 entities and >= 1 relation, got {} and {}",
            cfg.num_entities, cfg.num_rels
        )));
    }
    let give_up_micros = cfg.slo_ms.saturating_mul(10_000).max(1_000_000);
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for i in 0..cfg.rounds {
        let h = horizon(&cfg.addr, cfg.io_timeout)?;
        let ingest_body = format!(
            r#"{{"time": {h}, "facts": {}, "update": {}}}"#,
            round_facts(i, cfg.num_entities, cfg.num_rels),
            cfg.update
        );
        // Before this lands, `h + 1` is beyond the horizon and `/predict`
        // rejects it; the first `200` is the freshness edge.
        let probe_body = format!(
            r#"{{"subject": {}, "relation": 0, "time": {}, "k": 2}}"#,
            i % cfg.num_entities,
            h + 1
        );
        let clock = Clock::start();
        let (status, resp) = http_post(&cfg.addr, "/ingest", &ingest_body, cfg.io_timeout)?;
        let ingest_micros = clock.elapsed_micros();
        if status != 200 {
            return Err(LoadgenError::Config(format!(
                "freshness round {i}: ingest at t={h} rejected with {status}: {resp}"
            )));
        }
        let mut polls = 0u64;
        let visible_micros = loop {
            polls += 1;
            let (status, _) = http_post(&cfg.addr, "/predict", &probe_body, cfg.io_timeout)?;
            let now = clock.elapsed_micros();
            if status == 200 {
                break now;
            }
            if now > give_up_micros {
                return Err(LoadgenError::Config(format!(
                    "freshness round {i}: head t={} still not visible after {}us \
                     ({polls} polls, last status {status})",
                    h + 1,
                    now
                )));
            }
            clock.sleep_until_micros(now + 1_000);
        };
        rounds.push(FreshnessRound {
            ingest_time: h,
            ingest_micros,
            visible_micros,
            polls,
        });
    }
    Ok(FreshnessReport {
        rounds,
        slo_ms: cfg.slo_ms,
    })
}

/// Deterministic, within-round-distinct facts for round `i`. Each round
/// appends at a fresh head timestamp, so cross-round repeats never trip the
/// server's duplicate-fact rejection.
fn round_facts(i: usize, num_entities: usize, num_rels: usize) -> String {
    let s = i % num_entities;
    let o = (i + 1) % num_entities;
    let r = i % num_rels;
    format!("[[{s}, {r}, {o}], [{o}, {r}, {s}]]")
}

fn horizon(addr: &str, io_timeout: Duration) -> Result<u64, LoadgenError> {
    let (status, body) = http_get(addr, "/healthz", io_timeout)?;
    if status != 200 {
        return Err(LoadgenError::Config(format!(
            "healthz returned {status}: {body}"
        )));
    }
    let parsed: serde_json::Value = serde_json::from_str(&body)
        .map_err(|e| LoadgenError::Config(format!("healthz body did not parse: {e}")))?;
    parsed
        .get("horizon")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| LoadgenError::Config(format!("healthz body has no horizon: {body}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rounds_is_rejected() {
        let cfg = FreshnessConfig {
            rounds: 0,
            ..FreshnessConfig::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn tiny_vocabulary_is_rejected() {
        let cfg = FreshnessConfig {
            num_entities: 1,
            ..FreshnessConfig::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn round_facts_are_distinct_within_a_round() {
        for i in 0..16 {
            let facts = round_facts(i, 5, 3);
            let parsed: serde_json::Value = serde_json::from_str(&facts).unwrap();
            let arr = parsed.as_array().unwrap();
            assert_eq!(arr.len(), 2);
            assert_ne!(arr[0], arr[1], "round {i} repeated a fact: {facts}");
        }
    }

    #[test]
    fn report_counts_violations_against_the_slo() {
        let report = FreshnessReport {
            rounds: vec![
                FreshnessRound {
                    ingest_time: 10,
                    ingest_micros: 500,
                    visible_micros: 900,
                    polls: 1,
                },
                FreshnessRound {
                    ingest_time: 11,
                    ingest_micros: 800,
                    visible_micros: 2_500,
                    polls: 2,
                },
            ],
            slo_ms: 2,
        };
        assert_eq!(report.max_visible_micros(), 2_500);
        assert_eq!(report.violations(), 1);
    }
}
