//! `logcl-loadgen` — an open-loop, trace-driven load harness for
//! `logcl-serve`.
//!
//! The harness separates *what* traffic to send from *when* results are
//! judged:
//!
//! - [`schedule`] builds a deterministic request schedule from a seed: every
//!   arrival time, query id and per-request deadline is derived from the
//!   workspace's pinned xoshiro256++ PRNG, so two runs with the same
//!   [`schedule::TraceConfig`] send byte-identical traffic on an identical
//!   timeline (the schedule [`schedule::fingerprint`] proves it).
//! - [`runner`] replays a schedule *open loop* against a live server: the
//!   dispatcher never waits for responses, so a slow server cannot slow the
//!   offered load down (no coordinated omission). Latency is measured from
//!   the *scheduled* send time as well as the actual one.
//! - [`hist`] records latencies in log-bucketed histograms (HDR-style,
//!   integer-only) so tail quantiles stay accurate without unbounded memory.
//! - [`report`] renders a run as a stable `BENCH_serve.json` document.
//! - [`capacity`] binary-searches the highest offered rate whose p99 still
//!   meets an SLO.
//! - [`ratchet`] compares a fresh report against a committed baseline and
//!   fails on regressions beyond a configurable noise band.
//! - [`freshness`] measures ingest-to-visible latency: how long after an
//!   acked head append the new timestamp answers `/predict`.
//! - [`timing`] is the only module allowed to read the wall clock
//!   (enforced by `logcl-analyze` rule L003).

pub mod capacity;
pub mod freshness;
pub mod hist;
pub mod ratchet;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod timing;

/// Errors surfaced by the load harness.
///
/// Every variant carries enough context to act on: file paths, header names,
/// and — for ratchet failures — the full list of violated bounds.
#[derive(Debug)]
pub enum LoadgenError {
    /// An I/O operation failed; `context` names what was being done.
    Io {
        /// What the harness was doing when the error hit.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A trace or run configuration was rejected before any traffic.
    Config(String),
    /// A benchmark report failed schema validation or did not parse.
    Schema(String),
    /// The current run regressed past the baseline's noise band.
    Ratchet {
        /// One human-readable line per violated bound.
        violations: Vec<String>,
    },
    /// Baseline and current report measure different workloads.
    IncomparableBaseline(String),
}

impl LoadgenError {
    /// Wraps an I/O error with a description of the failed operation.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        LoadgenError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadgenError::Io { context, source } => write!(f, "{context}: {source}"),
            LoadgenError::Config(msg) => write!(f, "invalid loadgen config: {msg}"),
            LoadgenError::Schema(msg) => write!(f, "bench report schema violation: {msg}"),
            LoadgenError::Ratchet { violations } => {
                write!(f, "perf ratchet failed ({} violations):", violations.len())?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
            LoadgenError::IncomparableBaseline(msg) => {
                write!(f, "baseline is not comparable: {msg}")
            }
        }
    }
}

impl std::error::Error for LoadgenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadgenError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratchet_error_lists_every_violation() {
        let e = LoadgenError::Ratchet {
            violations: vec!["p99 too slow".into(), "goodput collapsed".into()],
        };
        let s = e.to_string();
        assert!(s.contains("2 violations"), "{s}");
        assert!(s.contains("p99 too slow"), "{s}");
        assert!(s.contains("goodput collapsed"), "{s}");
    }

    #[test]
    fn io_error_keeps_context_and_source() {
        let e = LoadgenError::io(
            "reading baseline BENCH_serve.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("baseline"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
