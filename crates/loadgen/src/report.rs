//! The `BENCH_serve.json` document: a stable, versioned rendering of one
//! load-harness run, fit both for eyeballs and for the perf ratchet.
//!
//! Schema (version 2; version-1 documents — without `connection_reuse_rate`
//! — still validate, so committed baselines keep working across the bump):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "bench": "serve",
//!   "seed": 7, "rps": 200.0, "duration_ms": 3000,
//!   "arrival": "poisson", "predict_percent": 90,
//!   "schedule_fingerprint": "a1b2c3d4e5f60718",
//!   "scheduled": 600, "completed": 600,
//!   "connection_reuse_rate": 0.97,
//!   "outcomes": { "ok": .., "degraded": .., "shed_503": .., ... },
//!   "tiers": { "none": .., "brownout": .., "shed": .. },
//!   "latency_ms": { "p50": .., "p90": .., "p99": .., "p999": .., "max": .., "mean": .. },
//!   "service_latency_ms": { ... },
//!   "capacity": { "slo_p99_ms": .., "capacity_rps": .., "probes": [..] },
//!   "build": { "version": .., "backend": .., ... }
//! }
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::capacity::CapacityReport;
use crate::hist::LogHistogram;
use crate::runner::RunStats;
use crate::schedule::TraceConfig;
use crate::LoadgenError;

/// Current `BENCH_serve.json` schema version.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version still accepted by [`BenchReport::validate`]
/// (committed baselines are not regenerated on every schema bump).
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Latency quantiles in milliseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Exact observed maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarises a microsecond histogram in milliseconds.
    pub fn from_hist(h: &LogHistogram) -> Self {
        let ms = |us: u64| us as f64 / 1_000.0;
        LatencySummary {
            p50: ms(h.quantile(0.50)),
            p90: ms(h.quantile(0.90)),
            p99: ms(h.quantile(0.99)),
            p999: ms(h.quantile(0.999)),
            max: ms(h.max()),
            mean: h.mean() / 1_000.0,
        }
    }

    fn check_ordered(&self, label: &str) -> Result<(), LoadgenError> {
        let q = [self.p50, self.p90, self.p99, self.p999, self.max];
        if q.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(LoadgenError::Schema(format!(
                "{label}: quantiles must be finite and non-negative"
            )));
        }
        if q.windows(2).any(|w| w[0] > w[1]) {
            return Err(LoadgenError::Schema(format!(
                "{label}: quantiles must be non-decreasing (p50 <= p90 <= p99 <= p999 <= max)"
            )));
        }
        Ok(())
    }
}

/// Request outcome counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Full-fidelity 200s.
    pub ok: u64,
    /// Degraded 200s.
    pub degraded: u64,
    /// 503s (admission control shed).
    pub shed_503: u64,
    /// 504s (deadline exhausted).
    pub deadline_504: u64,
    /// Other HTTP statuses.
    pub http_errors: u64,
    /// Transport-level failures.
    pub transport_errors: u64,
    /// 503/504 responses missing `Retry-After` (should be 0).
    pub retry_after_missing: u64,
}

impl OutcomeCounts {
    fn total(&self) -> u64 {
        self.ok
            + self.degraded
            + self.shed_503
            + self.deadline_504
            + self.http_errors
            + self.transport_errors
    }
}

/// Server build identity scraped from `/metrics` (`logcl_build_info`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BuildInfo {
    /// Crate version.
    #[serde(default)]
    pub version: String,
    /// Kernel backend name.
    #[serde(default)]
    pub backend: String,
    /// Compiled feature flags.
    #[serde(default)]
    pub features: String,
}

/// One complete benchmark report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Benchmark family; always `"serve"` for this harness.
    pub bench: String,
    /// Trace seed.
    pub seed: u64,
    /// Offered base rate, requests/second.
    pub rps: f64,
    /// Trace duration, milliseconds.
    pub duration_ms: u64,
    /// Arrival process name.
    pub arrival: String,
    /// Predict share of the mix, percent.
    pub predict_percent: u64,
    /// Hex digest of the replayed schedule.
    pub schedule_fingerprint: String,
    /// Requests in the schedule.
    pub scheduled: u64,
    /// Requests that completed (any outcome).
    pub completed: u64,
    /// Share of scheduled requests answered 200, in `[0, 1]`.
    pub goodput_rate: f64,
    /// Share of completed requests served over a reused keep-alive
    /// connection, in `[0, 1]` (schema ≥ 2; defaults to 0 for v1 docs).
    #[serde(default)]
    pub connection_reuse_rate: f64,
    /// Outcome breakdown.
    pub outcomes: OutcomeCounts,
    /// Responses per degradation tier.
    pub tiers: BTreeMap<String, u64>,
    /// End-to-end latency (from scheduled dispatch time).
    pub latency_ms: LatencySummary,
    /// Service latency (from actual send).
    pub service_latency_ms: LatencySummary,
    /// Capacity-at-SLO search result, when run.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub capacity: Option<CapacityReport>,
    /// Server build identity, when scraped.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub build: Option<BuildInfo>,
}

impl BenchReport {
    /// Assembles a report from a trace config and its run stats.
    pub fn from_run(cfg: &TraceConfig, fingerprint: u64, stats: &RunStats) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            bench: "serve".into(),
            seed: cfg.seed,
            rps: cfg.rps,
            duration_ms: cfg.duration_ms,
            arrival: cfg.arrival.name(),
            predict_percent: u64::from(cfg.predict_percent),
            schedule_fingerprint: format!("{fingerprint:016x}"),
            scheduled: stats.scheduled,
            completed: stats.completed,
            goodput_rate: stats.goodput_rate(),
            connection_reuse_rate: stats.connection_reuse_rate(),
            outcomes: OutcomeCounts {
                ok: stats.ok,
                degraded: stats.degraded,
                shed_503: stats.shed_503,
                deadline_504: stats.deadline_504,
                http_errors: stats.http_errors,
                transport_errors: stats.transport_errors,
                retry_after_missing: stats.retry_after_missing,
            },
            tiers: stats.tiers.clone(),
            latency_ms: LatencySummary::from_hist(&stats.latency),
            service_latency_ms: LatencySummary::from_hist(&stats.service_latency),
            capacity: None,
            build: None,
        }
    }

    /// Parses and validates a report from JSON text.
    pub fn from_json_str(s: &str) -> Result<Self, LoadgenError> {
        let report: BenchReport = serde_json::from_str(s)
            .map_err(|e| LoadgenError::Schema(format!("parse error: {e}")))?;
        report.validate()?;
        Ok(report)
    }

    /// Pretty JSON rendering (what gets committed as `BENCH_serve.json`).
    pub fn to_json_pretty(&self) -> Result<String, LoadgenError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| LoadgenError::Schema(format!("serialize error: {e}")))
    }

    /// Checks the internal consistency rules of the schema. Any version in
    /// `MIN_SCHEMA_VERSION..=SCHEMA_VERSION` is accepted — older committed
    /// baselines validate under the rules of their own version (fields
    /// added later default and are not range-checked against v1 docs).
    pub fn validate(&self) -> Result<(), LoadgenError> {
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&self.schema_version) {
            return Err(LoadgenError::Schema(format!(
                "unsupported schema_version {} (accepted: {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})",
                self.schema_version
            )));
        }
        if self.bench != "serve" {
            return Err(LoadgenError::Schema(format!(
                "unknown bench family {:?}",
                self.bench
            )));
        }
        if self.schedule_fingerprint.len() != 16
            || !self
                .schedule_fingerprint
                .bytes()
                .all(|b| b.is_ascii_hexdigit())
        {
            return Err(LoadgenError::Schema(
                "schedule_fingerprint must be 16 hex digits".into(),
            ));
        }
        if self.completed > self.scheduled {
            return Err(LoadgenError::Schema(format!(
                "completed {} exceeds scheduled {}",
                self.completed, self.scheduled
            )));
        }
        if self.outcomes.total() != self.completed {
            return Err(LoadgenError::Schema(format!(
                "outcome counts sum to {} but completed is {}",
                self.outcomes.total(),
                self.completed
            )));
        }
        if !(0.0..=1.0).contains(&self.goodput_rate) {
            return Err(LoadgenError::Schema(format!(
                "goodput_rate {} outside [0, 1]",
                self.goodput_rate
            )));
        }
        if self.schema_version >= 2 && !(0.0..=1.0).contains(&self.connection_reuse_rate) {
            return Err(LoadgenError::Schema(format!(
                "connection_reuse_rate {} outside [0, 1]",
                self.connection_reuse_rate
            )));
        }
        self.latency_ms.check_ordered("latency_ms")?;
        self.service_latency_ms
            .check_ordered("service_latency_ms")?;
        Ok(())
    }

    /// Reads and validates a report file.
    pub fn read(path: &str) -> Result<Self, LoadgenError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| LoadgenError::io(format!("reading bench report {path}"), e))?;
        Self::from_json_str(&text)
    }

    /// Writes the report as pretty JSON.
    pub fn write(&self, path: &str) -> Result<(), LoadgenError> {
        let mut text = self.to_json_pretty()?;
        text.push('\n');
        std::fs::write(path, text)
            .map_err(|e| LoadgenError::io(format!("writing bench report {path}"), e))
    }
}

/// Extracts [`BuildInfo`] from a `/metrics` Prometheus text exposition by
/// reading the `logcl_build_info` info-gauge's labels.
pub fn parse_build_info(metrics_text: &str) -> Option<BuildInfo> {
    let line = metrics_text
        .lines()
        .find(|l| l.starts_with("logcl_build_info{"))?;
    let labels = &line[line.find('{')? + 1..line.find('}')?];
    let mut info = BuildInfo::default();
    for pair in labels.split(',') {
        let (key, value) = pair.split_once('=')?;
        let value = value.trim_matches('"').to_string();
        match key.trim() {
            "version" => info.version = value,
            "backend" => info.backend = value,
            "features" => info.features = value,
            _ => {}
        }
    }
    Some(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunStats;

    fn sample_report() -> BenchReport {
        let cfg = TraceConfig::default();
        let schedule = crate::schedule::build_schedule(&cfg).unwrap();
        let fp = crate::schedule::fingerprint(&schedule);
        let mut stats = RunStats::new(schedule.len() as u64);
        stats.ok = stats.scheduled;
        stats.completed = stats.scheduled;
        for i in 0..stats.scheduled {
            stats.latency.record(1_000 + i * 7);
            stats.service_latency.record(900 + i * 7);
        }
        BenchReport::from_run(&cfg, fp, &stats)
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json_pretty().unwrap();
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back.schedule_fingerprint, report.schedule_fingerprint);
        assert_eq!(back.scheduled, report.scheduled);
        assert_eq!(back.outcomes.ok, report.outcomes.ok);
        assert_eq!(back.latency_ms.p99, report.latency_ms.p99);
        assert!(back.capacity.is_none());
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        let mut r = sample_report();
        r.schema_version = 99;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.schedule_fingerprint = "zz".into();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.outcomes.ok += 1;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.latency_ms.p50 = r.latency_ms.p99 + 1.0;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.goodput_rate = 1.5;
        assert!(r.validate().is_err());
    }

    #[test]
    fn parse_build_info_reads_the_info_gauge() {
        let text = "# HELP logcl_build_info Build identity.\n\
                    logcl_build_info{version=\"0.1.0\",backend=\"threaded\",features=\"fault-inject\"} 1\n\
                    logcl_requests_total 5\n";
        let info = parse_build_info(text).unwrap();
        assert_eq!(info.version, "0.1.0");
        assert_eq!(info.backend, "threaded");
        assert_eq!(info.features, "fault-inject");
        assert!(parse_build_info("logcl_requests_total 5\n").is_none());
    }
}
