//! The serve perf ratchet: compare a fresh benchmark report against the
//! committed baseline and fail on regressions beyond a noise band.
//!
//! Mirrors `logcl-analyze`'s one-way finding ratchet in spirit: the
//! committed `BENCH_serve.json` is the floor, a run may match or improve it
//! freely, and worsening past the band is an error — [`check`] returns
//! [`LoadgenError::Ratchet`] listing every violated bound, which the CLI
//! maps to a non-zero exit.

use crate::report::BenchReport;
use crate::LoadgenError;

/// How much worse than the baseline still counts as noise.
#[derive(Debug, Clone)]
pub struct RatchetPolicy {
    /// Multiplicative band on latency quantiles: current may be up to
    /// `baseline * (1 + band)` (plus the absolute floor) before failing.
    pub latency_band_frac: f64,
    /// Absolute latency slack in milliseconds, so microsecond-scale
    /// baselines don't fail on scheduler jitter.
    pub latency_floor_ms: f64,
    /// Additive band on goodput rate: current may be up to this much below
    /// the baseline's rate.
    pub goodput_band: f64,
}

impl Default for RatchetPolicy {
    fn default() -> Self {
        RatchetPolicy {
            latency_band_frac: 0.25,
            latency_floor_ms: 2.0,
            goodput_band: 0.05,
        }
    }
}

impl RatchetPolicy {
    /// A policy whose noise band is `pct` percent on latency.
    pub fn with_noise_pct(pct: u8) -> Self {
        RatchetPolicy {
            latency_band_frac: f64::from(pct) / 100.0,
            ..RatchetPolicy::default()
        }
    }
}

/// Verifies baseline and current measured the same workload; comparing
/// different traces would make the ratchet meaningless.
fn check_comparable(current: &BenchReport, baseline: &BenchReport) -> Result<(), LoadgenError> {
    let mut mismatches = Vec::new();
    if current.bench != baseline.bench {
        mismatches.push(format!("bench {:?} vs {:?}", current.bench, baseline.bench));
    }
    if current.seed != baseline.seed {
        mismatches.push(format!("seed {} vs {}", current.seed, baseline.seed));
    }
    if current.rps != baseline.rps {
        mismatches.push(format!("rps {} vs {}", current.rps, baseline.rps));
    }
    if current.duration_ms != baseline.duration_ms {
        mismatches.push(format!(
            "duration_ms {} vs {}",
            current.duration_ms, baseline.duration_ms
        ));
    }
    if current.arrival != baseline.arrival {
        mismatches.push(format!(
            "arrival {:?} vs {:?}",
            current.arrival, baseline.arrival
        ));
    }
    if current.schedule_fingerprint != baseline.schedule_fingerprint {
        mismatches.push(format!(
            "schedule fingerprint {} vs {}",
            current.schedule_fingerprint, baseline.schedule_fingerprint
        ));
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(LoadgenError::IncomparableBaseline(mismatches.join("; ")))
    }
}

/// Compares `current` against `baseline` under `policy`.
///
/// Ratcheted quantities: end-to-end p50/p99/p999 and the goodput rate.
/// Returns `Ok(())` when every bound holds, [`LoadgenError::Ratchet`] with
/// one line per violation otherwise.
pub fn check(
    current: &BenchReport,
    baseline: &BenchReport,
    policy: &RatchetPolicy,
) -> Result<(), LoadgenError> {
    check_comparable(current, baseline)?;
    let mut violations = Vec::new();
    let quantiles = [
        ("p50", current.latency_ms.p50, baseline.latency_ms.p50),
        ("p99", current.latency_ms.p99, baseline.latency_ms.p99),
        ("p999", current.latency_ms.p999, baseline.latency_ms.p999),
    ];
    for (name, cur, base) in quantiles {
        let bound = base * (1.0 + policy.latency_band_frac) + policy.latency_floor_ms;
        if cur > bound {
            violations.push(format!(
                "latency {name} regressed: {cur:.3}ms > {bound:.3}ms \
                 (baseline {base:.3}ms + {:.0}% + {:.1}ms)",
                policy.latency_band_frac * 100.0,
                policy.latency_floor_ms
            ));
        }
    }
    let floor = baseline.goodput_rate - policy.goodput_band;
    if current.goodput_rate < floor {
        violations.push(format!(
            "goodput regressed: {:.4} < {:.4} (baseline {:.4} - {:.2} band)",
            current.goodput_rate, floor, baseline.goodput_rate, policy.goodput_band
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(LoadgenError::Ratchet { violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, LatencySummary, OutcomeCounts};
    use std::collections::BTreeMap;

    fn report(p50: f64, p99: f64, p999: f64, goodput: f64) -> BenchReport {
        let latency = LatencySummary {
            p50,
            p90: p99.min(p50.max(p99 - 1.0)),
            p99,
            p999,
            max: p999 + 1.0,
            mean: p50,
        };
        BenchReport {
            schema_version: 1,
            bench: "serve".into(),
            seed: 7,
            rps: 100.0,
            duration_ms: 1_000,
            arrival: "poisson".into(),
            predict_percent: 90,
            schedule_fingerprint: "00112233445566aa".into(),
            scheduled: 100,
            completed: 100,
            goodput_rate: goodput,
            connection_reuse_rate: 0.0,
            outcomes: OutcomeCounts {
                ok: 100,
                degraded: 0,
                shed_503: 0,
                deadline_504: 0,
                http_errors: 0,
                transport_errors: 0,
                retry_after_missing: 0,
            },
            tiers: BTreeMap::new(),
            latency_ms: latency.clone(),
            service_latency_ms: latency,
            capacity: None,
            build: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(5.0, 20.0, 40.0, 0.99);
        check(&r, &r, &RatchetPolicy::default()).unwrap();
    }

    #[test]
    fn improvement_passes() {
        let base = report(5.0, 20.0, 40.0, 0.95);
        let cur = report(2.0, 8.0, 15.0, 1.0);
        check(&cur, &base, &RatchetPolicy::default()).unwrap();
    }

    #[test]
    fn regression_past_the_band_fails_with_named_quantiles() {
        let base = report(5.0, 20.0, 40.0, 0.99);
        // p99 bound: 20 * 1.25 + 2 = 27. A 60ms p99 is well past it.
        let cur = report(5.0, 60.0, 90.0, 0.99);
        let err = check(&cur, &base, &RatchetPolicy::default()).unwrap_err();
        let LoadgenError::Ratchet { violations } = err else {
            panic!("expected ratchet error, got {err}");
        };
        assert!(
            violations.iter().any(|v| v.contains("p99")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("p999")),
            "{violations:?}"
        );
        assert!(
            !violations.iter().any(|v| v.contains("p50")),
            "{violations:?}"
        );
    }

    #[test]
    fn within_band_noise_passes() {
        let base = report(5.0, 20.0, 40.0, 0.99);
        // +20% on every quantile: inside the default 25% band.
        let cur = report(6.0, 24.0, 48.0, 0.97);
        check(&cur, &base, &RatchetPolicy::default()).unwrap();
    }

    #[test]
    fn absolute_floor_protects_microsecond_baselines() {
        let base = report(0.05, 0.2, 0.4, 1.0);
        // 10x relative blowup but under the 2ms absolute floor: still noise.
        let cur = report(0.5, 2.0, 2.2, 1.0);
        check(&cur, &base, &RatchetPolicy::default()).unwrap();
    }

    #[test]
    fn goodput_collapse_fails() {
        let base = report(5.0, 20.0, 40.0, 0.99);
        let cur = report(5.0, 20.0, 40.0, 0.80);
        let err = check(&cur, &base, &RatchetPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("goodput"), "{err}");
    }

    #[test]
    fn mismatched_workloads_are_incomparable() {
        let base = report(5.0, 20.0, 40.0, 0.99);
        let mut cur = report(5.0, 20.0, 40.0, 0.99);
        cur.seed = 8;
        cur.schedule_fingerprint = "ffffffffffffffff".into();
        let err = check(&cur, &base, &RatchetPolicy::default()).unwrap_err();
        assert!(
            matches!(err, LoadgenError::IncomparableBaseline(_)),
            "{err}"
        );
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn noise_pct_constructor_widens_the_band() {
        let base = report(5.0, 20.0, 40.0, 0.99);
        let cur = report(5.0, 35.0, 60.0, 0.99);
        // 25% band fails...
        assert!(check(&cur, &base, &RatchetPolicy::default()).is_err());
        // ...but a 100% band absorbs it.
        check(&cur, &base, &RatchetPolicy::with_noise_pct(100)).unwrap();
    }
}
