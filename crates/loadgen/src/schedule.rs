//! Deterministic request schedules.
//!
//! A schedule is the full description of a load test's traffic: for every
//! request, *when* it is dispatched (microseconds from run start), *what* it
//! asks (predict or ingest, with concrete ids) and *how urgent* it is (the
//! `X-LogCL-Deadline-Ms` budget). All of it derives from a single seed via
//! the workspace's pinned xoshiro256++ PRNG, so the same
//! [`TraceConfig`] always produces the same schedule — byte for byte, as
//! [`fingerprint`] proves. Wall-clock time never enters here; replaying the
//! schedule is [`crate::runner`]'s job.

use logcl_tensor::Rng;

use crate::LoadgenError;

/// Inter-arrival process for the offered load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arrival {
    /// Evenly spaced arrivals at the configured rate.
    Constant,
    /// Memoryless (exponential) inter-arrival gaps — the classic open-system
    /// model; produces natural short bursts.
    Poisson,
    /// Square-wave load: each `period_ms` window starts with `duty_pct`% of
    /// its duration at `peak_mult`× the base rate, then drops back to 1×.
    Burst {
        /// Length of one base+peak cycle, in milliseconds.
        period_ms: u64,
        /// Share of each period spent at the peak rate, in percent (0-100).
        duty_pct: u8,
        /// Rate multiplier during the peak phase (≥ 1).
        peak_mult: u32,
    },
}

impl Arrival {
    /// Parses `constant`, `poisson`, `burst` or `burst:PERIOD_MS:DUTY:MULT`.
    pub fn parse(s: &str) -> Result<Arrival, LoadgenError> {
        match s {
            "constant" => return Ok(Arrival::Constant),
            "poisson" => return Ok(Arrival::Poisson),
            "burst" => {
                return Ok(Arrival::Burst {
                    period_ms: 1_000,
                    duty_pct: 20,
                    peak_mult: 4,
                })
            }
            _ => {}
        }
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() == 4 && parts[0] == "burst" {
            let bad = |what: &str| {
                LoadgenError::Config(format!("bad {what} in burst arrival spec {s:?}"))
            };
            let period_ms: u64 = parts[1].parse().map_err(|_| bad("period"))?;
            let duty_pct: u8 = parts[2].parse().map_err(|_| bad("duty"))?;
            let peak_mult: u32 = parts[3].parse().map_err(|_| bad("multiplier"))?;
            if period_ms == 0 || duty_pct > 100 || peak_mult == 0 {
                return Err(bad("value range"));
            }
            return Ok(Arrival::Burst {
                period_ms,
                duty_pct,
                peak_mult,
            });
        }
        Err(LoadgenError::Config(format!(
            "unknown arrival {s:?} (use constant|poisson|burst[:PERIOD_MS:DUTY_PCT:PEAK_MULT])"
        )))
    }

    /// Canonical name for reports.
    pub fn name(&self) -> String {
        match self {
            Arrival::Constant => "constant".into(),
            Arrival::Poisson => "poisson".into(),
            Arrival::Burst {
                period_ms,
                duty_pct,
                peak_mult,
            } => format!("burst:{period_ms}:{duty_pct}:{peak_mult}"),
        }
    }

    /// Instantaneous rate multiplier at offset `t_micros`.
    fn rate_multiplier(&self, t_micros: u64) -> f64 {
        match self {
            Arrival::Constant | Arrival::Poisson => 1.0,
            Arrival::Burst {
                period_ms,
                duty_pct,
                peak_mult,
            } => {
                let in_period = (t_micros / 1_000) % period_ms;
                if in_period * 100 < period_ms * u64::from(*duty_pct) {
                    f64::from(*peak_mult)
                } else {
                    1.0
                }
            }
        }
    }
}

/// Everything needed to derive a schedule from a seed.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// PRNG seed; same seed + same config = same schedule.
    pub seed: u64,
    /// Base offered rate, requests per second.
    pub rps: f64,
    /// Trace length in milliseconds.
    pub duration_ms: u64,
    /// Inter-arrival process.
    pub arrival: Arrival,
    /// Share of requests that are predicts (the rest are ingests), 0-100.
    pub predict_percent: u8,
    /// Base `X-LogCL-Deadline-Ms` budget; 0 sends no deadline header.
    pub deadline_ms: u64,
    /// Uniform jitter on the deadline, ± this percent of the base.
    pub deadline_jitter_pct: u8,
    /// Entity-id vocabulary size for sampled queries and facts.
    pub num_entities: usize,
    /// Relation-id vocabulary size (forward relations only).
    pub num_rels: usize,
    /// `k` requested on each predict.
    pub k: usize,
    /// Facts per ingest request.
    pub ingest_facts: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 7,
            rps: 50.0,
            duration_ms: 3_000,
            arrival: Arrival::Poisson,
            predict_percent: 90,
            deadline_ms: 250,
            deadline_jitter_pct: 50,
            num_entities: 100,
            num_rels: 10,
            k: 5,
            ingest_facts: 4,
        }
    }
}

/// One planned request body (ids only; rendering to JSON is the runner's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A `POST /predict` query.
    Predict {
        /// Subject entity id.
        subject: u32,
        /// Relation id (forward direction).
        relation: u32,
        /// Requested top-k.
        k: u32,
        /// Deadline budget for the `X-LogCL-Deadline-Ms` header.
        deadline_ms: Option<u64>,
    },
    /// A `POST /ingest` batch of facts.
    Ingest {
        /// `(s, r, o)` triples to append.
        facts: Vec<(u32, u32, u32)>,
        /// Deadline budget for the `X-LogCL-Deadline-Ms` header.
        deadline_ms: Option<u64>,
    },
}

/// A request pinned to its dispatch offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedRequest {
    /// Dispatch offset from run start, in microseconds.
    pub at_micros: u64,
    /// What to send.
    pub op: Op,
}

/// Builds the full request schedule for `cfg`.
pub fn build_schedule(cfg: &TraceConfig) -> Result<Vec<PlannedRequest>, LoadgenError> {
    if !cfg.rps.is_finite() || cfg.rps <= 0.0 {
        return Err(LoadgenError::Config(format!(
            "rps must be positive, got {}",
            cfg.rps
        )));
    }
    if cfg.duration_ms == 0 {
        return Err(LoadgenError::Config("duration must be > 0 ms".into()));
    }
    if cfg.num_entities == 0 || cfg.num_rels == 0 {
        return Err(LoadgenError::Config(
            "entity and relation vocabularies must be non-empty".into(),
        ));
    }
    if cfg.predict_percent > 100 {
        return Err(LoadgenError::Config(format!(
            "predict_percent must be 0-100, got {}",
            cfg.predict_percent
        )));
    }
    let mut rng = Rng::seed(cfg.seed);
    let horizon = cfg.duration_ms.saturating_mul(1_000) as f64;
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        let rate_per_us = cfg.rps * cfg.arrival.rate_multiplier(t as u64) / 1e6;
        let gap = match cfg.arrival {
            Arrival::Poisson => {
                // Exponential gap via inverse transform; clamp u away from 1
                // so ln(0) can never produce an infinite gap.
                let u = f64::from(rng.uniform(0.0, 1.0)).min(0.999_999);
                -(1.0 - u).ln() / rate_per_us
            }
            _ => 1.0 / rate_per_us,
        };
        // ≥ 1µs apart keeps the schedule strictly ordered.
        t += gap.max(1.0);
        if t >= horizon {
            break;
        }
        out.push(PlannedRequest {
            at_micros: t as u64,
            op: sample_op(cfg, &mut rng),
        });
    }
    Ok(out)
}

/// Draws one request body from the PRNG.
fn sample_op(cfg: &TraceConfig, rng: &mut Rng) -> Op {
    let deadline_ms = if cfg.deadline_ms == 0 {
        None
    } else {
        let j = u64::from(cfg.deadline_jitter_pct.min(100));
        let lo = cfg.deadline_ms.saturating_mul(100 - j) / 100;
        let hi = cfg.deadline_ms.saturating_mul(100 + j) / 100;
        let span = (hi - lo + 1) as usize;
        Some(lo + rng.below(span) as u64)
    };
    let is_predict = match cfg.predict_percent {
        0 => false,
        100 => true,
        p => rng.chance(f64::from(p) / 100.0),
    };
    if is_predict {
        Op::Predict {
            subject: rng.below(cfg.num_entities) as u32,
            relation: rng.below(cfg.num_rels) as u32,
            k: cfg.k as u32,
            deadline_ms,
        }
    } else {
        let facts = (0..cfg.ingest_facts.max(1))
            .map(|_| {
                (
                    rng.below(cfg.num_entities) as u32,
                    rng.below(cfg.num_rels) as u32,
                    rng.below(cfg.num_entities) as u32,
                )
            })
            .collect();
        Op::Ingest { facts, deadline_ms }
    }
}

/// FNV-1a accumulator over the schedule's canonical encoding.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Digest of the complete schedule — arrival times, ops, ids and deadlines.
///
/// Two runs are replaying the same traffic if and only if their
/// fingerprints match; the determinism test and the report both rely on it.
pub fn fingerprint(schedule: &[PlannedRequest]) -> u64 {
    let mut h = Fnv::new();
    h.eat(schedule.len() as u64);
    for req in schedule {
        h.eat(req.at_micros);
        match &req.op {
            Op::Predict {
                subject,
                relation,
                k,
                deadline_ms,
            } => {
                h.eat(0);
                h.eat(u64::from(*subject));
                h.eat(u64::from(*relation));
                h.eat(u64::from(*k));
                h.eat(deadline_ms.map_or(u64::MAX, |d| d));
            }
            Op::Ingest { facts, deadline_ms } => {
                h.eat(1);
                h.eat(facts.len() as u64);
                for (s, r, o) in facts {
                    h.eat(u64::from(*s));
                    h.eat(u64::from(*r));
                    h.eat(u64::from(*o));
                }
                h.eat(deadline_ms.map_or(u64::MAX, |d| d));
            }
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_schedules() {
        // The PR's determinism guarantee: same config, same schedule —
        // arrival times included. (Observed latencies may differ between
        // runs; the schedule may not.)
        let cfg = TraceConfig::default();
        let a = build_schedule(&cfg).unwrap();
        let b = build_schedule(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = build_schedule(&TraceConfig::default()).unwrap();
        let b = build_schedule(&TraceConfig {
            seed: 8,
            ..TraceConfig::default()
        })
        .unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn schedule_is_strictly_ordered_and_bounded() {
        let cfg = TraceConfig {
            rps: 500.0,
            duration_ms: 1_000,
            ..TraceConfig::default()
        };
        let s = build_schedule(&cfg).unwrap();
        for w in s.windows(2) {
            assert!(w[0].at_micros < w[1].at_micros);
        }
        assert!(s.last().map_or(0, |r| r.at_micros) < 1_000_000);
        // Poisson at 500 rps over 1s: expect roughly 500 arrivals.
        assert!((300..700).contains(&s.len()), "got {}", s.len());
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let cfg = TraceConfig {
            arrival: Arrival::Constant,
            rps: 100.0,
            duration_ms: 500,
            ..TraceConfig::default()
        };
        let s = build_schedule(&cfg).unwrap();
        for w in s.windows(2) {
            assert_eq!(w[1].at_micros - w[0].at_micros, 10_000);
        }
    }

    #[test]
    fn burst_peak_phase_is_denser() {
        let cfg = TraceConfig {
            arrival: Arrival::Burst {
                period_ms: 1_000,
                duty_pct: 50,
                peak_mult: 4,
            },
            rps: 100.0,
            duration_ms: 1_000,
            ..TraceConfig::default()
        };
        let s = build_schedule(&cfg).unwrap();
        let peak = s.iter().filter(|r| r.at_micros < 500_000).count();
        let base = s.len() - peak;
        assert!(peak > 3 * base, "peak {peak} vs base {base}");
    }

    #[test]
    fn predict_percent_bounds_are_exact() {
        let all_predict = build_schedule(&TraceConfig {
            predict_percent: 100,
            ..TraceConfig::default()
        })
        .unwrap();
        assert!(all_predict
            .iter()
            .all(|r| matches!(r.op, Op::Predict { .. })));
        let all_ingest = build_schedule(&TraceConfig {
            predict_percent: 0,
            ..TraceConfig::default()
        })
        .unwrap();
        assert!(all_ingest.iter().all(|r| matches!(r.op, Op::Ingest { .. })));
    }

    #[test]
    fn deadlines_stay_inside_the_jitter_band() {
        let cfg = TraceConfig {
            deadline_ms: 200,
            deadline_jitter_pct: 25,
            ..TraceConfig::default()
        };
        for req in build_schedule(&cfg).unwrap() {
            let d = match req.op {
                Op::Predict { deadline_ms, .. } | Op::Ingest { deadline_ms, .. } => deadline_ms,
            };
            let d = d.expect("deadline_ms > 0 must emit a deadline");
            assert!((150..=250).contains(&d), "deadline {d} outside band");
        }
    }

    #[test]
    fn zero_deadline_config_sends_no_header() {
        let cfg = TraceConfig {
            deadline_ms: 0,
            ..TraceConfig::default()
        };
        for req in build_schedule(&cfg).unwrap() {
            let d = match req.op {
                Op::Predict { deadline_ms, .. } | Op::Ingest { deadline_ms, .. } => deadline_ms,
            };
            assert_eq!(d, None);
        }
    }

    #[test]
    fn arrival_parse_round_trips() {
        for s in ["constant", "poisson", "burst:500:30:8"] {
            assert_eq!(Arrival::parse(s).unwrap().name(), s);
        }
        assert!(matches!(
            Arrival::parse("burst").unwrap(),
            Arrival::Burst { .. }
        ));
        assert!(Arrival::parse("uniform").is_err());
        assert!(Arrival::parse("burst:0:30:8").is_err());
        assert!(Arrival::parse("burst:500:101:8").is_err());
        assert!(Arrival::parse("burst:500:30:0").is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = |f: fn(&mut TraceConfig)| {
            let mut cfg = TraceConfig::default();
            f(&mut cfg);
            build_schedule(&cfg).is_err()
        };
        assert!(bad(|c| c.rps = 0.0));
        assert!(bad(|c| c.rps = f64::NAN));
        assert!(bad(|c| c.duration_ms = 0));
        assert!(bad(|c| c.num_entities = 0));
        assert!(bad(|c| c.predict_percent = 101));
    }
}
