//! The harness's single wall-clock module.
//!
//! `logcl-analyze` rule L003 bans `Instant::now()` across loadgen source so
//! that schedule construction, histogram math and report generation stay
//! deterministic and unit-testable; this module is the one carved-out
//! exception (`crates/loadgen/src/timing.rs` is excluded from the rule's
//! time scope). Everything else in the crate works with plain `u64`
//! microsecond *offsets* from a [`Clock`]'s start.

use std::time::{Duration, Instant};

/// A run-anchored monotonic clock measuring microsecond offsets.
///
/// `Copy`, so the dispatcher and every worker thread can carry the same
/// anchor; offsets from different copies are mutually comparable.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
}

impl Clock {
    /// Anchors a new clock at the current instant.
    pub fn start() -> Self {
        Clock {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`Clock::start`].
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Sleeps until `at` microseconds past the anchor (no-op when already
    /// past — an open-loop dispatcher running behind must not stall
    /// further).
    pub fn sleep_until_micros(&self, at: u64) {
        let now = self.elapsed_micros();
        if at > now {
            std::thread::sleep(Duration::from_micros(at - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let c = Clock::start();
        let a = c.elapsed_micros();
        let b = c.elapsed_micros();
        assert!(b >= a);
    }

    #[test]
    fn copies_share_the_anchor() {
        let c = Clock::start();
        let d = c;
        std::thread::sleep(Duration::from_millis(2));
        // Both copies see the same elapsed time (within scheduling noise).
        let diff = c.elapsed_micros().abs_diff(d.elapsed_micros());
        assert!(diff < 2_000, "copies diverged by {diff}us");
    }

    #[test]
    fn sleep_until_past_offset_returns_immediately() {
        let c = Clock::start();
        c.sleep_until_micros(0); // already past; must not block
        let before = c.elapsed_micros();
        c.sleep_until_micros(before + 2_000);
        assert!(c.elapsed_micros() >= before + 2_000);
    }
}
