//! Capacity-at-SLO: the highest offered rate whose p99 still meets a
//! latency objective, found by bisection over short probe runs.
//!
//! The search itself is pure — it drives an injected probe closure
//! (`rps -> p99 ms`), so it unit-tests against synthetic latency curves and
//! the CLI plugs in a real schedule-replay probe.

use serde::{Deserialize, Serialize};

use crate::LoadgenError;

/// Search parameters.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// The p99 objective, milliseconds.
    pub p99_ms: f64,
    /// Lower bound of the search window, requests/second.
    pub min_rps: f64,
    /// Upper bound of the search window, requests/second.
    pub max_rps: f64,
    /// Bisection steps after the two endpoint probes.
    pub iterations: u32,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p99_ms: 50.0,
            min_rps: 10.0,
            max_rps: 2_000.0,
            iterations: 4,
        }
    }
}

/// One probe run during the search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityProbe {
    /// Offered rate for this probe.
    pub rps: f64,
    /// Measured p99, milliseconds.
    pub p99_ms: f64,
    /// Whether the probe met the SLO.
    pub met_slo: bool,
}

/// Result of a capacity search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityReport {
    /// The p99 objective searched against, milliseconds.
    pub slo_p99_ms: f64,
    /// Highest probed rate that met the SLO; 0 when even `min_rps` missed.
    pub capacity_rps: f64,
    /// Every probe, in search order.
    pub probes: Vec<CapacityProbe>,
}

/// Bisects `[min_rps, max_rps]` for the highest rate meeting the SLO.
///
/// `probe` replays a short trace at the given rate and returns its p99 in
/// milliseconds. Probes at the window's endpoints bound the search first:
/// if `max_rps` passes, capacity is at least the whole window; if `min_rps`
/// fails, capacity is reported as 0.
pub fn search(
    policy: &SloPolicy,
    probe: &mut dyn FnMut(f64) -> Result<f64, LoadgenError>,
) -> Result<CapacityReport, LoadgenError> {
    if !policy.min_rps.is_finite() || policy.min_rps <= 0.0 || policy.max_rps < policy.min_rps {
        return Err(LoadgenError::Config(format!(
            "capacity window [{}, {}] is invalid",
            policy.min_rps, policy.max_rps
        )));
    }
    let mut probes = Vec::new();
    let mut check = |rps: f64, probes: &mut Vec<CapacityProbe>| -> Result<bool, LoadgenError> {
        let p99_ms = probe(rps)?;
        let met_slo = p99_ms <= policy.p99_ms;
        probes.push(CapacityProbe {
            rps,
            p99_ms,
            met_slo,
        });
        Ok(met_slo)
    };

    if !check(policy.min_rps, &mut probes)? {
        return Ok(CapacityReport {
            slo_p99_ms: policy.p99_ms,
            capacity_rps: 0.0,
            probes,
        });
    }
    let mut lo = policy.min_rps; // highest known-good rate
    let mut hi = policy.max_rps; // search ceiling
    if check(policy.max_rps, &mut probes)? {
        lo = policy.max_rps;
    } else {
        for _ in 0..policy.iterations {
            let mid = (lo + hi) / 2.0;
            if check(mid, &mut probes)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    Ok(CapacityReport {
        slo_p99_ms: policy.p99_ms,
        capacity_rps: lo,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic server: p99 is 5ms until `knee` rps, then grows linearly.
    fn knee_curve(knee: f64) -> impl FnMut(f64) -> Result<f64, LoadgenError> {
        move |rps| {
            Ok(if rps <= knee {
                5.0
            } else {
                5.0 + (rps - knee) * 0.5
            })
        }
    }

    #[test]
    fn converges_to_the_knee() {
        let policy = SloPolicy {
            p99_ms: 10.0,
            min_rps: 10.0,
            max_rps: 1_000.0,
            iterations: 8,
        };
        let mut probe = knee_curve(400.0);
        let report = search(&policy, &mut probe).unwrap();
        // SLO allows p99 up to 10ms => capacity a touch above the knee.
        assert!(
            (report.capacity_rps - 410.0).abs() < 10.0,
            "capacity {}",
            report.capacity_rps
        );
        assert_eq!(report.probes.len() as u32, 2 + policy.iterations);
        assert!(report.probes[0].met_slo);
    }

    #[test]
    fn saturated_even_at_min_reports_zero() {
        let policy = SloPolicy {
            p99_ms: 1.0,
            ..SloPolicy::default()
        };
        let report = search(&policy, &mut knee_curve(0.0)).unwrap();
        assert_eq!(report.capacity_rps, 0.0);
        assert_eq!(report.probes.len(), 1);
    }

    #[test]
    fn headroom_past_max_reports_the_ceiling() {
        let policy = SloPolicy {
            p99_ms: 100.0,
            min_rps: 10.0,
            max_rps: 500.0,
            iterations: 6,
        };
        let report = search(&policy, &mut knee_curve(10_000.0)).unwrap();
        assert_eq!(report.capacity_rps, 500.0);
        assert_eq!(report.probes.len(), 2);
    }

    #[test]
    fn probe_errors_propagate() {
        let mut probe =
            |_rps: f64| -> Result<f64, LoadgenError> { Err(LoadgenError::Config("boom".into())) };
        assert!(search(&SloPolicy::default(), &mut probe).is_err());
    }

    #[test]
    fn invalid_window_is_rejected() {
        let policy = SloPolicy {
            min_rps: 0.0,
            ..SloPolicy::default()
        };
        assert!(search(&policy, &mut knee_curve(1.0)).is_err());
    }
}
