//! Open-loop schedule replay against a live `logcl-serve` instance.
//!
//! The dispatcher walks the schedule on its own thread, sleeping to each
//! request's offset and handing the rendered request to a worker pool — it
//! never waits for a response, so a slow server cannot throttle the offered
//! load (the coordinated-omission trap). Each request is one HTTP/1.1
//! connection, mirroring the server's `Connection: close` model.
//!
//! Two latencies are recorded per good response:
//!
//! - **end-to-end** (`latency`): scheduled dispatch time → response read.
//!   This is the honest open-loop number — queueing delay caused by an
//!   overloaded harness or server is *included*.
//! - **service** (`service_latency`): actual send → response read.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::LogHistogram;
use crate::schedule::{Op, PlannedRequest};
use crate::timing::Clock;
use crate::LoadgenError;

/// How to replay a schedule.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Worker threads issuing requests.
    pub workers: usize,
    /// Per-connection I/O timeout (connect, read, write).
    pub io_timeout: Duration,
    /// Snapshot time used for every ingest. Ingesting repeatedly at the
    /// horizon observed before the run is always valid (`t <= horizon`) no
    /// matter how requests reorder, and still exercises append +
    /// cache-invalidation.
    pub ingest_time: usize,
    /// Whether ingests request an online model update.
    pub ingest_update: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            addr: "127.0.0.1:0".into(),
            workers: 16,
            io_timeout: Duration::from_secs(5),
            ingest_time: 0,
            ingest_update: false,
        }
    }
}

/// How one request ended, from the harness's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// 200 with full-fidelity answer.
    Ok,
    /// 200 served degraded (brownout tier reduced the work).
    Degraded,
    /// 503 — shed by admission control.
    Shed,
    /// 504 — deadline exhausted.
    DeadlineExpired,
    /// Any other HTTP status.
    HttpError,
    /// Connect/read/write failure or malformed response.
    Transport,
}

/// One completed request, as reported by a worker.
struct Sample {
    scheduled_micros: u64,
    sent_micros: u64,
    done_micros: u64,
    kind: OutcomeKind,
    tier: Option<String>,
    retry_after_missing: bool,
}

/// Aggregated results of one replay.
#[derive(Debug)]
pub struct RunStats {
    /// Requests in the schedule.
    pub scheduled: u64,
    /// Requests that produced a sample (including errors).
    pub completed: u64,
    /// Full-fidelity 200s.
    pub ok: u64,
    /// Degraded 200s.
    pub degraded: u64,
    /// 503s.
    pub shed_503: u64,
    /// 504s.
    pub deadline_504: u64,
    /// Other HTTP statuses.
    pub http_errors: u64,
    /// Transport-level failures.
    pub transport_errors: u64,
    /// 503/504 responses missing the mandatory `Retry-After` header.
    pub retry_after_missing: u64,
    /// Responses per degradation tier (`X-LogCL-Degradation` header).
    pub tiers: BTreeMap<String, u64>,
    /// End-to-end latency of good (200) responses, µs from scheduled time.
    pub latency: LogHistogram,
    /// Service latency of good (200) responses, µs from actual send.
    pub service_latency: LogHistogram,
}

impl RunStats {
    /// Empty stats for a schedule of `scheduled` requests.
    pub fn new(scheduled: u64) -> Self {
        RunStats {
            scheduled,
            completed: 0,
            ok: 0,
            degraded: 0,
            shed_503: 0,
            deadline_504: 0,
            http_errors: 0,
            transport_errors: 0,
            retry_after_missing: 0,
            tiers: BTreeMap::new(),
            latency: LogHistogram::new(),
            service_latency: LogHistogram::new(),
        }
    }

    /// Share of scheduled requests answered with a 200, in `[0, 1]`.
    pub fn goodput_rate(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        (self.ok + self.degraded) as f64 / self.scheduled as f64
    }

    fn absorb(&mut self, s: Sample) {
        self.completed += 1;
        match s.kind {
            OutcomeKind::Ok => self.ok += 1,
            OutcomeKind::Degraded => self.degraded += 1,
            OutcomeKind::Shed => self.shed_503 += 1,
            OutcomeKind::DeadlineExpired => self.deadline_504 += 1,
            OutcomeKind::HttpError => self.http_errors += 1,
            OutcomeKind::Transport => self.transport_errors += 1,
        }
        if s.retry_after_missing {
            self.retry_after_missing += 1;
        }
        if let Some(tier) = s.tier {
            *self.tiers.entry(tier).or_insert(0) += 1;
        }
        if matches!(s.kind, OutcomeKind::Ok | OutcomeKind::Degraded) {
            self.latency
                .record(s.done_micros.saturating_sub(s.scheduled_micros));
            self.service_latency
                .record(s.done_micros.saturating_sub(s.sent_micros));
        }
    }
}

/// A rendered request ready to go on the wire.
struct Job {
    scheduled_micros: u64,
    path: &'static str,
    body: String,
    deadline_ms: Option<u64>,
}

/// Renders a planned op to its HTTP path and JSON body.
fn render(op: &Op, cfg: &RunConfig) -> (&'static str, String, Option<u64>) {
    match op {
        Op::Predict {
            subject,
            relation,
            k,
            deadline_ms,
        } => (
            "/predict",
            format!("{{\"subject\":{subject},\"relation\":{relation},\"k\":{k}}}"),
            *deadline_ms,
        ),
        Op::Ingest { facts, deadline_ms } => {
            let rendered: Vec<String> = facts
                .iter()
                .map(|(s, r, o)| format!("[{s},{r},{o}]"))
                .collect();
            (
                "/ingest",
                format!(
                    "{{\"time\":{},\"facts\":[{}],\"update\":{}}}",
                    cfg.ingest_time,
                    rendered.join(","),
                    cfg.ingest_update
                ),
                *deadline_ms,
            )
        }
    }
}

/// Replays `schedule` against `cfg.addr` and aggregates the results.
pub fn run(schedule: &[PlannedRequest], cfg: &RunConfig) -> Result<RunStats, LoadgenError> {
    let addr = resolve(&cfg.addr)?;
    let clock = Clock::start();
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (sample_tx, sample_rx) = mpsc::channel::<Sample>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let io_timeout = cfg.io_timeout;

    let mut workers = Vec::new();
    for _ in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&job_rx);
        let tx = sample_tx.clone();
        workers.push(std::thread::spawn(move || loop {
            let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
            let Ok(job) = job else { break };
            let sample = execute(addr, io_timeout, &job, clock);
            if tx.send(sample).is_err() {
                break;
            }
        }));
    }
    drop(sample_tx);

    // Open-loop dispatch on this thread: sleep to each offset, hand off,
    // never wait for the response.
    for req in schedule {
        clock.sleep_until_micros(req.at_micros);
        let (path, body, deadline_ms) = render(&req.op, cfg);
        let job = Job {
            scheduled_micros: req.at_micros,
            path,
            body,
            deadline_ms,
        };
        if job_tx.send(job).is_err() {
            break;
        }
    }
    drop(job_tx);

    let mut stats = RunStats::new(schedule.len() as u64);
    for sample in sample_rx {
        stats.absorb(sample);
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(stats)
}

/// One plain GET against the server, for `/healthz` and `/metrics` scrapes.
/// Returns `(status, body)`.
pub fn http_get(
    addr: &str,
    path: &str,
    io_timeout: Duration,
) -> Result<(u16, String), LoadgenError> {
    let sock = resolve(addr)?;
    let ctx = || format!("GET {path} against {addr}");
    let mut stream =
        TcpStream::connect_timeout(&sock, io_timeout).map_err(|e| LoadgenError::io(ctx(), e))?;
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n");
    stream
        .write_all(req.as_bytes())
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let mut buf = Vec::new();
    stream
        .read_to_end(&mut buf)
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let text = String::from_utf8(buf)
        .map_err(|_| LoadgenError::Config(format!("{}: non-UTF-8 response", ctx())))?;
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| LoadgenError::Config(format!("{}: malformed response", ctx())))?;
    let status: u16 = text[..head_end]
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LoadgenError::Config(format!("{}: missing status line", ctx())))?;
    Ok((status, text[head_end + 4..].to_string()))
}

fn resolve(addr: &str) -> Result<SocketAddr, LoadgenError> {
    addr.to_socket_addrs()
        .map_err(|e| LoadgenError::io(format!("resolving {addr}"), e))?
        .next()
        .ok_or_else(|| LoadgenError::Config(format!("{addr} resolved to no addresses")))
}

/// Issues one request and classifies the response; never fails — transport
/// errors become [`OutcomeKind::Transport`] samples.
fn execute(addr: SocketAddr, io_timeout: Duration, job: &Job, clock: Clock) -> Sample {
    let sent_micros = clock.elapsed_micros();
    let parsed = roundtrip(addr, io_timeout, job);
    let done_micros = clock.elapsed_micros();
    match parsed {
        Ok(resp) => {
            let kind = match resp.status {
                200 if resp.degraded => OutcomeKind::Degraded,
                200 => OutcomeKind::Ok,
                503 => OutcomeKind::Shed,
                504 => OutcomeKind::DeadlineExpired,
                _ => OutcomeKind::HttpError,
            };
            let retry_after_missing = matches!(resp.status, 503 | 504) && !resp.retry_after_present;
            Sample {
                scheduled_micros: job.scheduled_micros,
                sent_micros,
                done_micros,
                kind,
                tier: resp.tier,
                retry_after_missing,
            }
        }
        Err(_) => Sample {
            scheduled_micros: job.scheduled_micros,
            sent_micros,
            done_micros,
            kind: OutcomeKind::Transport,
            tier: None,
            retry_after_missing: false,
        },
    }
}

struct RawResponse {
    status: u16,
    degraded: bool,
    tier: Option<String>,
    retry_after_present: bool,
}

/// One request over one fresh connection (the server closes after
/// responding, so `read_to_end` delimits the response).
fn roundtrip(addr: SocketAddr, io_timeout: Duration, job: &Job) -> std::io::Result<RawResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, io_timeout)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let mut head = format!(
        "POST {} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        job.path,
        job.body.len()
    );
    if let Some(d) = job.deadline_ms {
        head.push_str(&format!("X-LogCL-Deadline-Ms: {d}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(job.body.as_bytes())?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    parse_response(&buf).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })
}

/// Minimal HTTP/1.1 response parse: status code, the two headers the
/// harness cares about, and the `degraded` flag from predict bodies.
fn parse_response(buf: &[u8]) -> Option<RawResponse> {
    let text = std::str::from_utf8(buf).ok()?;
    let head_end = text.find("\r\n\r\n")?;
    let (head, body) = (&text[..head_end], &text[head_end + 4..]);
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut tier = None;
    let mut retry_after_present = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        if name == "x-logcl-degradation" {
            tier = Some(value.trim().to_string());
        } else if name == "retry-after" {
            retry_after_present = true;
        }
    }
    let degraded = serde_json::from_str::<serde_json::Value>(body)
        .ok()
        .and_then(|v| v.get("degraded").and_then(|d| d.as_bool()))
        .unwrap_or(false);
    Some(RawResponse {
        status,
        degraded,
        tier,
        retry_after_present,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Op;

    #[test]
    fn render_predict_matches_serve_wire_format() {
        let (path, body, d) = render(
            &Op::Predict {
                subject: 3,
                relation: 1,
                k: 5,
                deadline_ms: Some(250),
            },
            &RunConfig::default(),
        );
        assert_eq!(path, "/predict");
        assert_eq!(body, "{\"subject\":3,\"relation\":1,\"k\":5}");
        assert_eq!(d, Some(250));
        // The body must be valid JSON for the server's parser.
        serde_json::from_str::<serde_json::Value>(&body).unwrap();
    }

    #[test]
    fn render_ingest_pins_time_and_update_flag() {
        let cfg = RunConfig {
            ingest_time: 12,
            ingest_update: true,
            ..RunConfig::default()
        };
        let (path, body, _) = render(
            &Op::Ingest {
                facts: vec![(0, 1, 2), (3, 4, 5)],
                deadline_ms: None,
            },
            &cfg,
        );
        assert_eq!(path, "/ingest");
        assert_eq!(
            body,
            "{\"time\":12,\"facts\":[[0,1,2],[3,4,5]],\"update\":true}"
        );
        serde_json::from_str::<serde_json::Value>(&body).unwrap();
    }

    #[test]
    fn parse_response_extracts_status_headers_and_degraded() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-LogCL-Degradation: brownout\r\n\r\n{\"degraded\":true}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.degraded);
        assert_eq!(r.tier.as_deref(), Some("brownout"));
        assert!(!r.retry_after_present);

        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert!(r.retry_after_present);

        assert!(parse_response(b"not http").is_none());
    }

    #[test]
    fn stats_classify_and_count_every_outcome() {
        let mut stats = RunStats::new(6);
        let sample = |kind, tier: Option<&str>, missing| Sample {
            scheduled_micros: 0,
            sent_micros: 10,
            done_micros: 1_010,
            kind,
            tier: tier.map(String::from),
            retry_after_missing: missing,
        };
        stats.absorb(sample(OutcomeKind::Ok, Some("none"), false));
        stats.absorb(sample(OutcomeKind::Degraded, Some("brownout"), false));
        stats.absorb(sample(OutcomeKind::Shed, Some("shed"), true));
        stats.absorb(sample(OutcomeKind::DeadlineExpired, Some("none"), false));
        stats.absorb(sample(OutcomeKind::HttpError, None, false));
        stats.absorb(sample(OutcomeKind::Transport, None, false));
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.shed_503, 1);
        assert_eq!(stats.deadline_504, 1);
        assert_eq!(stats.http_errors, 1);
        assert_eq!(stats.transport_errors, 1);
        assert_eq!(stats.retry_after_missing, 1);
        assert_eq!(stats.tiers.get("none"), Some(&2));
        // Only the two 200s entered the latency histograms.
        assert_eq!(stats.latency.count(), 2);
        assert_eq!(stats.service_latency.count(), 2);
        assert_eq!(stats.latency.quantile(1.0), 1_010);
        assert!((stats.goodput_rate() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert!(resolve("definitely not an address").is_err());
        assert!(resolve("127.0.0.1:80").is_ok());
    }
}
