//! Open-loop schedule replay against a live `logcl-serve` instance.
//!
//! The dispatcher walks the schedule on its own thread, sleeping to each
//! request's offset and handing the rendered request to a worker pool — it
//! never waits for a response, so a slow server cannot throttle the offered
//! load (the coordinated-omission trap). Each worker holds one persistent
//! HTTP/1.1 keep-alive connection and reuses it across requests
//! (reconnecting lazily when the server closes it), matching how real
//! clients amortise connection setup; the reuse rate is reported.
//!
//! Two latencies are recorded per good response:
//!
//! - **end-to-end** (`latency`): scheduled dispatch time → response read.
//!   This is the honest open-loop number — queueing delay caused by an
//!   overloaded harness or server is *included*.
//! - **service** (`service_latency`): actual send → response read.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::LogHistogram;
use crate::schedule::{Op, PlannedRequest};
use crate::timing::Clock;
use crate::LoadgenError;

/// How to replay a schedule.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Worker threads issuing requests.
    pub workers: usize,
    /// Per-connection I/O timeout (connect, read, write).
    pub io_timeout: Duration,
    /// Snapshot time used for every ingest. Ingesting repeatedly at the
    /// horizon observed before the run is always valid (`t <= horizon`) no
    /// matter how requests reorder, and still exercises append +
    /// cache-invalidation.
    pub ingest_time: usize,
    /// Whether ingests request an online model update.
    pub ingest_update: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            addr: "127.0.0.1:0".into(),
            workers: 16,
            io_timeout: Duration::from_secs(5),
            ingest_time: 0,
            ingest_update: false,
        }
    }
}

/// How one request ended, from the harness's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// 200 with full-fidelity answer.
    Ok,
    /// 200 served degraded (brownout tier reduced the work).
    Degraded,
    /// 503 — shed by admission control.
    Shed,
    /// 504 — deadline exhausted.
    DeadlineExpired,
    /// Any other HTTP status.
    HttpError,
    /// Connect/read/write failure or malformed response.
    Transport,
}

/// One completed request, as reported by a worker.
struct Sample {
    scheduled_micros: u64,
    sent_micros: u64,
    done_micros: u64,
    kind: OutcomeKind,
    tier: Option<String>,
    retry_after_missing: bool,
    reused_connection: bool,
}

/// Aggregated results of one replay.
#[derive(Debug)]
pub struct RunStats {
    /// Requests in the schedule.
    pub scheduled: u64,
    /// Requests that produced a sample (including errors).
    pub completed: u64,
    /// Full-fidelity 200s.
    pub ok: u64,
    /// Degraded 200s.
    pub degraded: u64,
    /// 503s.
    pub shed_503: u64,
    /// 504s.
    pub deadline_504: u64,
    /// Other HTTP statuses.
    pub http_errors: u64,
    /// Transport-level failures.
    pub transport_errors: u64,
    /// 503/504 responses missing the mandatory `Retry-After` header.
    pub retry_after_missing: u64,
    /// Requests served over an already-open keep-alive connection.
    pub reused_connections: u64,
    /// Responses per degradation tier (`X-LogCL-Degradation` header).
    pub tiers: BTreeMap<String, u64>,
    /// End-to-end latency of good (200) responses, µs from scheduled time.
    pub latency: LogHistogram,
    /// Service latency of good (200) responses, µs from actual send.
    pub service_latency: LogHistogram,
}

impl RunStats {
    /// Empty stats for a schedule of `scheduled` requests.
    pub fn new(scheduled: u64) -> Self {
        RunStats {
            scheduled,
            completed: 0,
            ok: 0,
            degraded: 0,
            shed_503: 0,
            deadline_504: 0,
            http_errors: 0,
            transport_errors: 0,
            retry_after_missing: 0,
            reused_connections: 0,
            tiers: BTreeMap::new(),
            latency: LogHistogram::new(),
            service_latency: LogHistogram::new(),
        }
    }

    /// Share of scheduled requests answered with a 200, in `[0, 1]`.
    pub fn goodput_rate(&self) -> f64 {
        if self.scheduled == 0 {
            return 0.0;
        }
        (self.ok + self.degraded) as f64 / self.scheduled as f64
    }

    /// Share of completed requests that reused an open keep-alive
    /// connection, in `[0, 1]`.
    pub fn connection_reuse_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.reused_connections as f64 / self.completed as f64
    }

    fn absorb(&mut self, s: Sample) {
        self.completed += 1;
        match s.kind {
            OutcomeKind::Ok => self.ok += 1,
            OutcomeKind::Degraded => self.degraded += 1,
            OutcomeKind::Shed => self.shed_503 += 1,
            OutcomeKind::DeadlineExpired => self.deadline_504 += 1,
            OutcomeKind::HttpError => self.http_errors += 1,
            OutcomeKind::Transport => self.transport_errors += 1,
        }
        if s.retry_after_missing {
            self.retry_after_missing += 1;
        }
        if s.reused_connection {
            self.reused_connections += 1;
        }
        if let Some(tier) = s.tier {
            *self.tiers.entry(tier).or_insert(0) += 1;
        }
        if matches!(s.kind, OutcomeKind::Ok | OutcomeKind::Degraded) {
            self.latency
                .record(s.done_micros.saturating_sub(s.scheduled_micros));
            self.service_latency
                .record(s.done_micros.saturating_sub(s.sent_micros));
        }
    }
}

/// A rendered request ready to go on the wire.
struct Job {
    scheduled_micros: u64,
    path: &'static str,
    body: String,
    deadline_ms: Option<u64>,
}

/// Renders a planned op to its HTTP path and JSON body.
fn render(op: &Op, cfg: &RunConfig) -> (&'static str, String, Option<u64>) {
    match op {
        Op::Predict {
            subject,
            relation,
            k,
            deadline_ms,
        } => (
            "/predict",
            format!("{{\"subject\":{subject},\"relation\":{relation},\"k\":{k}}}"),
            *deadline_ms,
        ),
        Op::Ingest { facts, deadline_ms } => {
            let rendered: Vec<String> = facts
                .iter()
                .map(|(s, r, o)| format!("[{s},{r},{o}]"))
                .collect();
            (
                "/ingest",
                format!(
                    "{{\"time\":{},\"facts\":[{}],\"update\":{}}}",
                    cfg.ingest_time,
                    rendered.join(","),
                    cfg.ingest_update
                ),
                *deadline_ms,
            )
        }
    }
}

/// Replays `schedule` against `cfg.addr` and aggregates the results.
pub fn run(schedule: &[PlannedRequest], cfg: &RunConfig) -> Result<RunStats, LoadgenError> {
    let addr = resolve(&cfg.addr)?;
    let clock = Clock::start();
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (sample_tx, sample_rx) = mpsc::channel::<Sample>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let io_timeout = cfg.io_timeout;

    let mut workers = Vec::new();
    for _ in 0..cfg.workers.max(1) {
        let rx = Arc::clone(&job_rx);
        let tx = sample_tx.clone();
        workers.push(std::thread::spawn(move || {
            // One persistent keep-alive connection per worker, reconnected
            // lazily when the server closes it.
            let mut conn = Conn::new(addr, io_timeout);
            loop {
                let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                let Ok(job) = job else { break };
                let sample = execute(&mut conn, &job, clock);
                if tx.send(sample).is_err() {
                    break;
                }
            }
        }));
    }
    drop(sample_tx);

    // Open-loop dispatch on this thread: sleep to each offset, hand off,
    // never wait for the response.
    for req in schedule {
        clock.sleep_until_micros(req.at_micros);
        let (path, body, deadline_ms) = render(&req.op, cfg);
        let job = Job {
            scheduled_micros: req.at_micros,
            path,
            body,
            deadline_ms,
        };
        if job_tx.send(job).is_err() {
            break;
        }
    }
    drop(job_tx);

    let mut stats = RunStats::new(schedule.len() as u64);
    for sample in sample_rx {
        stats.absorb(sample);
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(stats)
}

/// One plain GET against the server, for `/healthz` and `/metrics` scrapes.
/// Returns `(status, body)`.
pub fn http_get(
    addr: &str,
    path: &str,
    io_timeout: Duration,
) -> Result<(u16, String), LoadgenError> {
    one_shot("GET", addr, path, "", io_timeout)
}

/// One `Connection: close` POST with a JSON body. Used by the freshness
/// scenario, which measures individual exchanges rather than sustained load
/// (the keep-alive worker pool in [`run`] is overkill there).
pub fn http_post(
    addr: &str,
    path: &str,
    body: &str,
    io_timeout: Duration,
) -> Result<(u16, String), LoadgenError> {
    one_shot("POST", addr, path, body, io_timeout)
}

fn one_shot(
    method: &str,
    addr: &str,
    path: &str,
    body: &str,
    io_timeout: Duration,
) -> Result<(u16, String), LoadgenError> {
    let sock = resolve(addr)?;
    let ctx = || format!("{method} {path} against {addr}");
    let mut stream =
        TcpStream::connect_timeout(&sock, io_timeout).map_err(|e| LoadgenError::io(ctx(), e))?;
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let mut buf = Vec::new();
    stream
        .read_to_end(&mut buf)
        .map_err(|e| LoadgenError::io(ctx(), e))?;
    let text = String::from_utf8(buf)
        .map_err(|_| LoadgenError::Config(format!("{}: non-UTF-8 response", ctx())))?;
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| LoadgenError::Config(format!("{}: malformed response", ctx())))?;
    let status: u16 = text[..head_end]
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| LoadgenError::Config(format!("{}: missing status line", ctx())))?;
    Ok((status, text[head_end + 4..].to_string()))
}

fn resolve(addr: &str) -> Result<SocketAddr, LoadgenError> {
    addr.to_socket_addrs()
        .map_err(|e| LoadgenError::io(format!("resolving {addr}"), e))?
        .next()
        .ok_or_else(|| LoadgenError::Config(format!("{addr} resolved to no addresses")))
}

/// Issues one request and classifies the response; never fails — transport
/// errors become [`OutcomeKind::Transport`] samples.
fn execute(conn: &mut Conn, job: &Job, clock: Clock) -> Sample {
    let sent_micros = clock.elapsed_micros();
    let (parsed, reused_connection) = conn.roundtrip(job);
    let done_micros = clock.elapsed_micros();
    match parsed {
        Ok(resp) => {
            let kind = match resp.status {
                200 if resp.degraded => OutcomeKind::Degraded,
                200 => OutcomeKind::Ok,
                503 => OutcomeKind::Shed,
                504 => OutcomeKind::DeadlineExpired,
                _ => OutcomeKind::HttpError,
            };
            let retry_after_missing = matches!(resp.status, 503 | 504) && !resp.retry_after_present;
            Sample {
                scheduled_micros: job.scheduled_micros,
                sent_micros,
                done_micros,
                kind,
                tier: resp.tier,
                retry_after_missing,
                reused_connection,
            }
        }
        Err(_) => Sample {
            scheduled_micros: job.scheduled_micros,
            sent_micros,
            done_micros,
            kind: OutcomeKind::Transport,
            tier: None,
            retry_after_missing: false,
            reused_connection,
        },
    }
}

struct RawResponse {
    status: u16,
    degraded: bool,
    tier: Option<String>,
    retry_after_present: bool,
    connection_close: bool,
}

/// A worker's persistent keep-alive connection, reconnected lazily.
struct Conn {
    addr: SocketAddr,
    io_timeout: Duration,
    stream: Option<TcpStream>,
}

impl Conn {
    fn new(addr: SocketAddr, io_timeout: Duration) -> Self {
        Conn {
            addr,
            io_timeout,
            stream: None,
        }
    }

    /// Issues one request, reusing the open connection when there is one.
    /// Returns the outcome and whether the *answering* exchange ran over a
    /// reused connection. A failure on a reused socket gets one retry on a
    /// fresh connection — the server may have closed the idle socket
    /// between requests, which is normal keep-alive lifecycle, not an error
    /// worth a Transport sample.
    fn roundtrip(&mut self, job: &Job) -> (std::io::Result<RawResponse>, bool) {
        let reused = self.stream.is_some();
        match self.try_roundtrip(job) {
            Ok(resp) => (Ok(resp), reused),
            Err(_) if reused => {
                self.stream = None;
                (self.try_roundtrip(job), false)
            }
            Err(e) => {
                self.stream = None;
                (Err(e), false)
            }
        }
    }

    fn try_roundtrip(&mut self, job: &Job) -> std::io::Result<RawResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.io_timeout)?;
            stream.set_read_timeout(Some(self.io_timeout))?;
            stream.set_write_timeout(Some(self.io_timeout))?;
            // Head and body go out in separate writes on a long-lived
            // socket: without TCP_NODELAY the Nagle/delayed-ACK interaction
            // stalls every reused request by ~40ms.
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        let result = match self.stream.as_mut() {
            Some(stream) => {
                let mut head = format!(
                    "POST {} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
                    job.path,
                    job.body.len()
                );
                if let Some(d) = job.deadline_ms {
                    head.push_str(&format!("X-LogCL-Deadline-Ms: {d}\r\n"));
                }
                head.push_str("\r\n");
                stream
                    .write_all(head.as_bytes())
                    .and_then(|()| stream.write_all(job.body.as_bytes()))
                    .and_then(|()| read_one_response(stream))
                    .and_then(|buf| {
                        parse_response(&buf).ok_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "malformed HTTP response",
                            )
                        })
                    })
            }
            None => Err(std::io::Error::other("connection unexpectedly absent")),
        };
        match &result {
            Ok(resp) if !resp.connection_close => {}
            // Any error, or an advertised close: the socket is done.
            _ => self.stream = None,
        }
        result
    }
}

/// Reads exactly one `Content-Length`-delimited response off a keep-alive
/// stream (the connection stays open, so EOF cannot delimit it).
fn read_one_response(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response head")
    })?;
    let content_length: usize = head
        .split("\r\n")
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response without Content-Length",
            )
        })?;
    let total = head_end + content_length;
    while buf.len() < total {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    buf.truncate(total);
    Ok(buf)
}

/// Minimal HTTP/1.1 response parse: status code, the two headers the
/// harness cares about, and the `degraded` flag from predict bodies.
fn parse_response(buf: &[u8]) -> Option<RawResponse> {
    let text = std::str::from_utf8(buf).ok()?;
    let head_end = text.find("\r\n\r\n")?;
    let (head, body) = (&text[..head_end], &text[head_end + 4..]);
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut tier = None;
    let mut retry_after_present = false;
    let mut connection_close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        if name == "x-logcl-degradation" {
            tier = Some(value.trim().to_string());
        } else if name == "retry-after" {
            retry_after_present = true;
        } else if name == "connection" {
            connection_close = value.trim().eq_ignore_ascii_case("close");
        }
    }
    let degraded = serde_json::from_str::<serde_json::Value>(body)
        .ok()
        .and_then(|v| v.get("degraded").and_then(|d| d.as_bool()))
        .unwrap_or(false);
    Some(RawResponse {
        status,
        degraded,
        tier,
        retry_after_present,
        connection_close,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Op;

    #[test]
    fn render_predict_matches_serve_wire_format() {
        let (path, body, d) = render(
            &Op::Predict {
                subject: 3,
                relation: 1,
                k: 5,
                deadline_ms: Some(250),
            },
            &RunConfig::default(),
        );
        assert_eq!(path, "/predict");
        assert_eq!(body, "{\"subject\":3,\"relation\":1,\"k\":5}");
        assert_eq!(d, Some(250));
        // The body must be valid JSON for the server's parser.
        serde_json::from_str::<serde_json::Value>(&body).unwrap();
    }

    #[test]
    fn render_ingest_pins_time_and_update_flag() {
        let cfg = RunConfig {
            ingest_time: 12,
            ingest_update: true,
            ..RunConfig::default()
        };
        let (path, body, _) = render(
            &Op::Ingest {
                facts: vec![(0, 1, 2), (3, 4, 5)],
                deadline_ms: None,
            },
            &cfg,
        );
        assert_eq!(path, "/ingest");
        assert_eq!(
            body,
            "{\"time\":12,\"facts\":[[0,1,2],[3,4,5]],\"update\":true}"
        );
        serde_json::from_str::<serde_json::Value>(&body).unwrap();
    }

    #[test]
    fn parse_response_extracts_status_headers_and_degraded() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-LogCL-Degradation: brownout\r\nConnection: keep-alive\r\n\r\n{\"degraded\":true}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.degraded);
        assert_eq!(r.tier.as_deref(), Some("brownout"));
        assert!(!r.retry_after_present);
        assert!(!r.connection_close);

        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert!(r.retry_after_present);
        assert!(r.connection_close);

        assert!(parse_response(b"not http").is_none());
    }

    /// The router's partial-result degradation (a shard down, answer from
    /// the survivors) flows through the harness like any other tier: a
    /// degraded 200 classified under `tiers["partial"]`.
    #[test]
    fn router_partial_tier_is_parsed_and_counted() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-LogCL-Degradation: partial\r\nRetry-After: 1\r\n\r\n{\"degraded\":true,\"coverage\":0.6666666}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.degraded);
        assert_eq!(r.tier.as_deref(), Some("partial"));
        assert!(r.retry_after_present);

        let mut stats = RunStats::new(1);
        stats.absorb(Sample {
            scheduled_micros: 0,
            sent_micros: 10,
            done_micros: 1_010,
            kind: if r.status == 200 && r.degraded {
                OutcomeKind::Degraded
            } else {
                OutcomeKind::Ok
            },
            tier: r.tier,
            retry_after_missing: false,
            reused_connection: true,
        });
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.tiers.get("partial"), Some(&1));
    }

    #[test]
    fn stats_classify_and_count_every_outcome() {
        let mut stats = RunStats::new(6);
        let sample = |kind, tier: Option<&str>, missing| Sample {
            scheduled_micros: 0,
            sent_micros: 10,
            done_micros: 1_010,
            kind,
            tier: tier.map(String::from),
            retry_after_missing: missing,
            reused_connection: matches!(kind, OutcomeKind::Ok | OutcomeKind::Degraded),
        };
        stats.absorb(sample(OutcomeKind::Ok, Some("none"), false));
        stats.absorb(sample(OutcomeKind::Degraded, Some("brownout"), false));
        stats.absorb(sample(OutcomeKind::Shed, Some("shed"), true));
        stats.absorb(sample(OutcomeKind::DeadlineExpired, Some("none"), false));
        stats.absorb(sample(OutcomeKind::HttpError, None, false));
        stats.absorb(sample(OutcomeKind::Transport, None, false));
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.ok, 1);
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.shed_503, 1);
        assert_eq!(stats.deadline_504, 1);
        assert_eq!(stats.http_errors, 1);
        assert_eq!(stats.transport_errors, 1);
        assert_eq!(stats.retry_after_missing, 1);
        assert_eq!(stats.tiers.get("none"), Some(&2));
        // Only the two 200s entered the latency histograms.
        assert_eq!(stats.latency.count(), 2);
        assert_eq!(stats.service_latency.count(), 2);
        assert_eq!(stats.latency.quantile(1.0), 1_010);
        assert!((stats.goodput_rate() - 2.0 / 6.0).abs() < 1e-9);
        assert_eq!(stats.reused_connections, 2);
        assert!((stats.connection_reuse_rate() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_rejects_garbage() {
        assert!(resolve("definitely not an address").is_err());
        assert!(resolve("127.0.0.1:80").is_ok());
    }
}
