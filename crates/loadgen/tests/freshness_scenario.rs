//! Freshness scenario end-to-end: boot a durable server, measure
//! ingest-to-visible latency for a run of head appends (with online
//! adaptation on), then reboot over the same WAL directory and check the
//! replayed stream is still visible — the recorded appends double as a
//! crash-recovery regression corpus.

use std::path::PathBuf;
use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_loadgen::freshness::{self, FreshnessConfig};
use logcl_loadgen::runner;
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        },
        checkpoint: None,
        train: None,
    }
}

fn durable_server(dir: &std::path::Path) -> Server {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        linger: Duration::from_millis(1),
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        wal_dir: Some(dir.to_path_buf()),
        online_steps: 1,
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![spec()]).expect("server must start")
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logcl-freshness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn horizon_of(addr: &str) -> u64 {
    let (status, body) =
        runner::http_get(addr, "/healthz", Duration::from_secs(30)).expect("healthz");
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("healthz JSON");
    v.get("horizon")
        .and_then(serde_json::Value::as_u64)
        .unwrap()
}

#[test]
fn head_appends_become_visible_and_survive_a_reboot() {
    let dir = scratch();
    let ds = tiny_ds();
    let server = durable_server(&dir);
    let addr = server.addr().to_string();
    let start_horizon = horizon_of(&addr);

    let cfg = FreshnessConfig {
        addr: addr.clone(),
        rounds: 4,
        // Generous SLO: this test asserts the pipeline works, not that CI
        // hardware is fast. The CLI run is where the SLO bites.
        slo_ms: 30_000,
        update: true,
        io_timeout: Duration::from_secs(60),
        num_entities: ds.num_entities,
        num_rels: ds.num_rels,
    };
    let report = freshness::run(&cfg).expect("freshness run");
    assert_eq!(report.rounds.len(), 4);
    assert_eq!(report.violations(), 0, "rounds: {:?}", report.rounds);
    for (i, round) in report.rounds.iter().enumerate() {
        assert_eq!(
            round.ingest_time,
            start_horizon + i as u64,
            "each round must append at the then-current head"
        );
        assert!(
            round.visible_micros >= round.ingest_micros,
            "visibility includes the ingest ack: {round:?}"
        );
    }
    assert_eq!(horizon_of(&addr), start_horizon + 4);
    server.shutdown();

    // Reboot over the same WAL dir: the appends replay through the
    // incremental advance path and the stream must still be queryable.
    let reborn = durable_server(&dir);
    let addr = reborn.addr().to_string();
    assert_eq!(horizon_of(&addr), start_horizon + 4);
    let probe = format!(
        r#"{{"subject": 0, "relation": 0, "time": {}, "k": 2}}"#,
        start_horizon + 4
    );
    let (status, body) =
        runner::http_post(&addr, "/predict", &probe, Duration::from_secs(60)).expect("predict");
    assert_eq!(status, 200, "replayed head must answer: {body}");
    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
