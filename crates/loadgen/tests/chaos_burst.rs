//! Burst-vs-brownout chaos scenario: replay a seeded bursty trace against a
//! real server whose brownout threshold is within reach, with a
//! fault-injected per-batch compute delay so the queue sojourn is governed
//! by the plan rather than CI machine speed. The server must brown out
//! during the peaks, keep answering (every request completes, every
//! 503/504 carries Retry-After), and return to the normal tier once the
//! burst traffic stops.

use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_loadgen::runner::{self, RunConfig};
use logcl_loadgen::schedule::{build_schedule, Arrival, TraceConfig};
use logcl_serve::fault::{self, FaultPlan};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::SyntheticPreset;

#[test]
fn bursty_load_browns_out_and_recovers_to_normal() {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        linger: Duration::from_millis(1),
        // One request per batch so the injected per-batch delay caps the
        // service rate at a known ~250 rps, well under the burst peaks.
        max_batch: 1,
        // Brownout within easy reach of the peaks (queue depth in the tens
        // of injected 4ms batches) but above the single-batch sojourn seen
        // at the base rate; shedding out of reach so the scenario isolates
        // the brownout tier.
        brownout_sojourn: Duration::from_millis(25),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let spec = ModelSpec {
        name: "default".into(),
        cfg: LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        },
        checkpoint: None,
        train: None,
    };
    fault::install(FaultPlan {
        compute_delay: Some(Duration::from_millis(4)),
        ..FaultPlan::default()
    });
    let server = Server::start(cfg, ds.clone(), vec![spec]).expect("server must start");
    let addr = server.addr().to_string();

    // 3 burst periods: 200ms peaks at 8x the 50 rps base rate (~400 rps,
    // exceeding the ~250 rps fault-capped service rate), 800ms troughs that
    // drain the queue back under the brownout threshold.
    let trace = TraceConfig {
        seed: 1_337,
        rps: 50.0,
        duration_ms: 3_000,
        arrival: Arrival::Burst {
            period_ms: 1_000,
            duty_pct: 20,
            peak_mult: 8,
        },
        predict_percent: 100,
        // Generous deadlines: brownout, not deadline pressure, is under test.
        deadline_ms: 20_000,
        deadline_jitter_pct: 0,
        num_entities: ds.num_entities,
        num_rels: ds.num_rels,
        k: 5,
        ingest_facts: 3,
    };
    let schedule = build_schedule(&trace).expect("schedule");
    let run_cfg = RunConfig {
        addr: addr.clone(),
        workers: 8,
        io_timeout: Duration::from_secs(60),
        ingest_time: ds.num_times,
        ingest_update: false,
    };
    let stats = runner::run(&schedule, &run_cfg).expect("run");

    // Chaos invariants: nothing is dropped, overload is survived (not
    // errored), and degraded answers are honestly labelled.
    assert_eq!(
        stats.completed, stats.scheduled,
        "every request must finish"
    );
    assert_eq!(stats.transport_errors, 0, "no connection failures expected");
    assert_eq!(
        stats.retry_after_missing, 0,
        "every 503/504 must carry Retry-After"
    );
    assert!(
        stats.ok + stats.degraded == stats.completed - stats.shed_503 - stats.deadline_504,
        "outcomes must partition: {stats:?}"
    );
    let browned = stats.tiers.get("brownout").copied().unwrap_or(0);
    let normal = stats.tiers.get("normal").copied().unwrap_or(0);
    assert!(
        browned > 0,
        "burst peaks must drive the server into brownout, tiers: {:?}",
        stats.tiers
    );
    assert!(
        normal > 0,
        "troughs must recover to the normal tier, tiers: {:?}",
        stats.tiers
    );

    // Post-burst recovery: the tier steps down one level per
    // `recovery_streak` consecutive healthy observations, so the first
    // probe run walks the state machine back to normal and the second must
    // then be served entirely at the normal tier.
    fault::clear();
    std::thread::sleep(Duration::from_millis(400));
    let probe_trace = TraceConfig {
        rps: 40.0,
        duration_ms: 250,
        arrival: Arrival::Constant,
        ..trace
    };
    let probe = build_schedule(&probe_trace).expect("probe schedule");
    assert!(!probe.is_empty());
    let walk_down = runner::run(&probe, &run_cfg).expect("first probe run");
    assert!(
        walk_down.tiers.get("normal").copied().unwrap_or(0) > 0,
        "recovery must reach the normal tier, tiers: {:?}",
        walk_down.tiers
    );
    let settled = runner::run(&probe, &run_cfg).expect("second probe run");
    assert_eq!(
        settled.tiers.get("normal").copied().unwrap_or(0),
        settled.completed,
        "a settled server must serve everything at the normal tier, tiers: {:?}",
        settled.tiers
    );

    server.shutdown();
}
