//! End-to-end harness test: boot a real `logcl-serve` instance, replay a
//! short seeded trace open-loop, and round-trip the resulting report.

use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_loadgen::report::{parse_build_info, BenchReport};
use logcl_loadgen::runner::{self, RunConfig};
use logcl_loadgen::schedule::{build_schedule, fingerprint, Arrival, TraceConfig};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::SyntheticPreset;

fn test_server() -> Server {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        linger: Duration::from_millis(2),
        // Degradation thresholds pushed out of reach: this test checks the
        // harness's bookkeeping, not overload behaviour.
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let spec = ModelSpec {
        name: "default".into(),
        cfg: LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        },
        checkpoint: None,
        train: None,
    };
    Server::start(cfg, ds, vec![spec]).expect("server must start")
}

#[test]
fn replay_against_live_server_produces_a_valid_report() {
    let server = test_server();
    let addr = server.addr().to_string();
    let ds = SyntheticPreset::Icews14.generate_scaled(0.15);

    let trace = TraceConfig {
        seed: 42,
        rps: 60.0,
        duration_ms: 1_500,
        arrival: Arrival::Poisson,
        predict_percent: 80,
        // Generous deadlines: this test must not flake into 504s on a
        // loaded CI box.
        deadline_ms: 20_000,
        deadline_jitter_pct: 10,
        num_entities: ds.num_entities,
        num_rels: ds.num_rels,
        k: 5,
        ingest_facts: 3,
    };
    let schedule = build_schedule(&trace).expect("schedule");
    let fp = fingerprint(&schedule);

    let run_cfg = RunConfig {
        addr: addr.clone(),
        workers: 8,
        io_timeout: Duration::from_secs(60),
        ingest_time: ds.num_times,
        ingest_update: false,
    };
    let stats = runner::run(&schedule, &run_cfg).expect("run");

    assert_eq!(
        stats.completed, stats.scheduled,
        "every request must finish"
    );
    assert_eq!(stats.transport_errors, 0, "no connection failures expected");
    assert_eq!(stats.http_errors, 0, "no 4xx/5xx beyond shed/deadline");
    assert!(stats.ok + stats.degraded > 0, "some requests must succeed");
    assert_eq!(
        stats.retry_after_missing, 0,
        "every 503/504 must carry Retry-After"
    );
    // Every response carries a degradation tier header.
    let tier_total: u64 = stats.tiers.values().sum();
    assert_eq!(tier_total, stats.completed, "tiers: {:?}", stats.tiers);
    assert!(stats.latency.count() > 0);

    // Report round-trip: build -> validate -> write -> read back.
    let mut report = BenchReport::from_run(&trace, fp, &stats);
    let (status, metrics_text) =
        runner::http_get(&addr, "/metrics", Duration::from_secs(10)).expect("metrics scrape");
    assert_eq!(status, 200);
    let build = parse_build_info(&metrics_text).expect("logcl_build_info must be exported");
    assert!(!build.version.is_empty());
    assert!(!build.backend.is_empty());
    assert_eq!(build.features, "fault-inject"); // dev-deps enable the feature
    report.build = Some(build);
    report.validate().expect("fresh report must validate");

    let dir = std::env::temp_dir().join("logcl-loadgen-harness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_serve.json").to_string_lossy().to_string();
    report.write(&path).expect("write report");
    let back = BenchReport::read(&path).expect("read report");
    assert_eq!(back.schedule_fingerprint, report.schedule_fingerprint);
    assert_eq!(back.outcomes.ok, report.outcomes.ok);
    assert_eq!(
        back.build.as_ref().map(|b| b.backend.clone()),
        report.build.map(|b| b.backend)
    );
    std::fs::remove_dir_all(dir).ok();

    server.shutdown();
}

#[test]
fn healthz_scrape_exposes_the_ingest_horizon() {
    let server = test_server();
    let addr = server.addr().to_string();
    let (status, body) =
        runner::http_get(&addr, "/healthz", Duration::from_secs(10)).expect("healthz");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&body).expect("healthz is JSON");
    let horizon = v.get("horizon").and_then(|h| h.as_u64()).expect("horizon");
    assert!(horizon > 0);
    server.shutdown();
}
