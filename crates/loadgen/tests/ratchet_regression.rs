//! The ratchet must catch a real regression: replay the same seeded trace
//! against a healthy server and against one slowed via fault injection, and
//! assert the slowed run fails the ratchet check that the healthy run
//! passes. (`logcl loadgen --baseline` maps that failure to a non-zero
//! process exit; the CLI crate's `loadgen_cli` test covers the exit code
//! end-to-end.)

use std::time::Duration;

use logcl_core::LogClConfig;
use logcl_loadgen::ratchet::{self, RatchetPolicy};
use logcl_loadgen::report::BenchReport;
use logcl_loadgen::runner::{self, RunConfig};
use logcl_loadgen::schedule::{build_schedule, fingerprint, Arrival, TraceConfig};
use logcl_loadgen::LoadgenError;
use logcl_serve::{fault, ModelSpec, ServeConfig, Server};
use logcl_tkg::SyntheticPreset;

fn start_server() -> Server {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        linger: Duration::from_millis(1),
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let spec = ModelSpec {
        name: "default".into(),
        cfg: LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        },
        checkpoint: None,
        train: None,
    };
    Server::start(cfg, ds, vec![spec]).expect("server must start")
}

fn replay(addr: &str, trace: &TraceConfig) -> BenchReport {
    let schedule = build_schedule(trace).expect("schedule");
    let fp = fingerprint(&schedule);
    let stats = runner::run(
        &schedule,
        &RunConfig {
            addr: addr.into(),
            workers: 8,
            io_timeout: Duration::from_secs(60),
            ingest_time: 0,
            ingest_update: false,
        },
    )
    .expect("run");
    BenchReport::from_run(trace, fp, &stats)
}

#[test]
fn ratchet_fails_on_a_fault_injected_slowdown() {
    let trace = TraceConfig {
        seed: 11,
        rps: 30.0,
        duration_ms: 1_200,
        arrival: Arrival::Constant,
        predict_percent: 100,
        deadline_ms: 0, // no deadlines: the slow run must answer, not 504
        deadline_jitter_pct: 0,
        num_entities: 40,
        num_rels: 8,
        k: 3,
        ingest_facts: 1,
    };

    // Healthy baseline.
    fault::clear();
    let baseline_server = start_server();
    let baseline = replay(&baseline_server.addr().to_string(), &trace);
    baseline_server.shutdown();
    assert!(
        baseline.outcomes.ok + baseline.outcomes.degraded > 0,
        "baseline produced no successes: {baseline:?}"
    );

    // A healthy re-run replays the identical schedule (fingerprints match)
    // and passes its own ratchet.
    assert_eq!(
        baseline.schedule_fingerprint,
        replay_fingerprint_only(&trace),
        "same trace must give the same schedule"
    );
    ratchet::check(&baseline, &baseline, &RatchetPolicy::default())
        .expect("a run must never regress against itself");

    // Slowed server: every compute batch eats a seeded ~50-150ms delay.
    fault::install(fault::FaultPlan {
        compute_delay: Some(Duration::from_millis(50)),
        ..fault::FaultPlan::default()
    });
    let slow_server = start_server();
    let slow = replay(&slow_server.addr().to_string(), &trace);
    slow_server.shutdown();
    fault::clear();

    let err = ratchet::check(&slow, &baseline, &RatchetPolicy::default())
        .expect_err("a 50ms+ injected delay must fail the ratchet");
    let LoadgenError::Ratchet { violations } = &err else {
        panic!("expected a ratchet violation, got: {err}");
    };
    assert!(
        violations.iter().any(|v| v.contains("latency")),
        "violations should name latency: {violations:?}"
    );
}

fn replay_fingerprint_only(trace: &TraceConfig) -> String {
    format!(
        "{:016x}",
        fingerprint(&build_schedule(trace).expect("schedule"))
    )
}
