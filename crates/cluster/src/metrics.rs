//! Router metrics in the Prometheus text exposition format.
//!
//! Reuses [`logcl_serve::metrics::Histogram`] for per-shard latency; the
//! counters are plain atomics. Every `reason` label of
//! `logcl_router_retries_total` is pre-registered at zero so dashboards and
//! scrape tests see the full taxonomy before the first failure.

use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use logcl_serve::metrics::{Histogram, LATENCY_BUCKETS};

use crate::client::FailReason;

/// All router counters exported at `GET /metrics`.
pub struct RouterMetrics {
    /// `POST /predict` requests admitted.
    pub predict_requests: AtomicU64,
    /// `POST /ingest` requests admitted.
    pub ingest_requests: AtomicU64,
    /// Retried outbound hops, by failure taxonomy (connect/timeout/http/io).
    pub retries_connect: AtomicU64,
    /// See [`RouterMetrics::retries_connect`].
    pub retries_timeout: AtomicU64,
    /// See [`RouterMetrics::retries_connect`].
    pub retries_http: AtomicU64,
    /// See [`RouterMetrics::retries_connect`].
    pub retries_io: AtomicU64,
    /// Hedged second attempts launched for slow shards.
    pub hedges: AtomicU64,
    /// Predict answers returned with `coverage < 1.0`.
    pub partial_responses: AtomicU64,
    /// Requests shed at admission because their deadline was spent.
    pub shed_deadline: AtomicU64,
    /// Connections refused because the connection cap was reached.
    pub shed_connections: AtomicU64,
    /// Active `/healthz` probes sent.
    pub probes: AtomicU64,
    /// Per-shard end-to-end hop latency (successful attempts only).
    pub shard_latency: Vec<Histogram>,
}

impl RouterMetrics {
    /// Zeroed metrics for a cluster of `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            predict_requests: AtomicU64::new(0),
            ingest_requests: AtomicU64::new(0),
            retries_connect: AtomicU64::new(0),
            retries_timeout: AtomicU64::new(0),
            retries_http: AtomicU64::new(0),
            retries_io: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            partial_responses: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            shard_latency: (0..shards)
                .map(|_| Histogram::new(&LATENCY_BUCKETS))
                .collect(),
        }
    }

    /// Records one retried hop under its taxonomy bucket.
    pub fn count_retry(&self, reason: FailReason) {
        match reason {
            FailReason::Connect => &self.retries_connect,
            FailReason::Timeout => &self.retries_timeout,
            FailReason::Http => &self.retries_http,
            FailReason::Io => &self.retries_io,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Renders every counter; `shard_states` supplies the
    /// `logcl_router_shard_state{shard,replica}` gauge values (the numeric
    /// [`crate::health::WorkerState`]).
    pub fn render(&self, shard_states: &[Vec<u8>]) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "logcl_router_predict_requests_total",
            "Predict requests admitted by the router.",
            self.predict_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "logcl_router_ingest_requests_total",
            "Ingest requests admitted by the router.",
            self.ingest_requests.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP logcl_router_retries_total Outbound hops retried, by failure reason."
        );
        let _ = writeln!(out, "# TYPE logcl_router_retries_total counter");
        for (reason, v) in [
            (FailReason::Connect, &self.retries_connect),
            (FailReason::Timeout, &self.retries_timeout),
            (FailReason::Http, &self.retries_http),
            (FailReason::Io, &self.retries_io),
        ] {
            let _ = writeln!(
                out,
                "logcl_router_retries_total{{reason=\"{}\"}} {}",
                reason.name(),
                v.load(Ordering::Relaxed)
            );
        }
        counter(
            &mut out,
            "logcl_router_hedges_total",
            "Hedged second attempts launched for slow shards.",
            self.hedges.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "logcl_partial_responses_total",
            "Predict answers returned with coverage below 1.0.",
            self.partial_responses.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "logcl_router_shed_deadline_total",
            "Requests shed at admission with their deadline already spent.",
            self.shed_deadline.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "logcl_router_shed_connections_total",
            "Connections refused at the router's connection cap.",
            self.shed_connections.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "logcl_router_probes_total",
            "Active health probes sent to workers.",
            self.probes.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP logcl_router_shard_state Worker availability \
             (3=up, 2=suspect, 1=probing, 0=down)."
        );
        let _ = writeln!(out, "# TYPE logcl_router_shard_state gauge");
        for (shard, replicas) in shard_states.iter().enumerate() {
            for (replica, state) in replicas.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "logcl_router_shard_state{{shard=\"{shard}\",replica=\"{replica}\"}} {state}"
                );
            }
        }
        for (shard, hist) in self.shard_latency.iter().enumerate() {
            hist.render(
                &format!("logcl_router_shard_{shard}_latency_seconds"),
                "End-to-end latency of successful hops to this shard.",
                &mut out,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_full_retry_taxonomy_at_zero() {
        let m = RouterMetrics::new(2);
        let out = m.render(&[vec![3], vec![0, 2]]);
        for reason in ["connect", "timeout", "http", "io"] {
            assert!(
                out.contains(&format!(
                    "logcl_router_retries_total{{reason=\"{reason}\"}} 0"
                )),
                "missing pre-registered reason {reason}:\n{out}"
            );
        }
        assert!(out.contains("logcl_router_shard_state{shard=\"0\",replica=\"0\"} 3"));
        assert!(out.contains("logcl_router_shard_state{shard=\"1\",replica=\"0\"} 0"));
        assert!(out.contains("logcl_router_shard_state{shard=\"1\",replica=\"1\"} 2"));
        assert!(out.contains("logcl_router_shard_0_latency_seconds_count 0"));
        assert!(out.contains("logcl_partial_responses_total 0"));
        assert!(out.contains("logcl_router_hedges_total 0"));
    }

    #[test]
    fn retry_counters_route_by_reason() {
        let m = RouterMetrics::new(1);
        m.count_retry(FailReason::Connect);
        m.count_retry(FailReason::Connect);
        m.count_retry(FailReason::Http);
        let out = m.render(&[vec![3]]);
        assert!(out.contains("logcl_router_retries_total{reason=\"connect\"} 2"));
        assert!(out.contains("logcl_router_retries_total{reason=\"http\"} 1"));
        assert!(out.contains("logcl_router_retries_total{reason=\"timeout\"} 0"));
    }
}
