//! `logcl-cluster`: fault-tolerant sharded serving for LogCL.
//!
//! A thin router process ([`Router`]) fronts N entity-partitioned
//! `logcl serve --shard i/N` workers, speaking the exact same HTTP protocol
//! as a single worker:
//!
//! * [`config`]  — the `--shards` topology spec and [`RouterConfig`].
//! * [`client`]  — a one-shot outbound HTTP client with a failure taxonomy
//!   that doubles as the retry-metric labels.
//! * [`health`]  — per-worker Up → Suspect → Down → Probing state machines,
//!   atomics-only.
//! * [`merge`]   — the bit-exactness contract: per-shard top-k candidates
//!   (scores carried as `f32::to_bits`) merged with the same comparator as
//!   single-node ranking, softmax probabilities recombined from per-shard
//!   partials.
//! * [`metrics`] — router-side Prometheus counters, gauges, and per-shard
//!   latency histograms.
//! * [`router`]  — the scatter-gather process: failover, bounded retries
//!   with jittered backoff, optional predict hedging, remaining-deadline
//!   propagation, exactly-once ingest fan-out, and partial-result
//!   degradation when a shard stays down.
//!
//! Under the `fault-inject` cargo feature (tests only — lint L008 proves it
//! never reaches a default build) the `fault` module injects deterministic
//! faults at the router's network boundaries for chaos testing.

pub mod client;
pub mod config;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod health;
pub mod merge;
pub mod metrics;
pub mod router;

pub use client::{FailReason, HopError, WireResponse};
pub use config::{parse_shards, ClusterError, RouterConfig};
pub use health::{WorkerHealth, WorkerState};
pub use merge::{
    merge_replies, parse_shard_reply, MergedAnswer, MergedPrediction, ShardReply, ShardReplyError,
};
pub use metrics::RouterMetrics;
pub use router::{Router, RouterShutdownHandle};
