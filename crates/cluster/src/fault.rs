//! Deterministic fault injection at the router's network boundaries
//! (chaos testing across the process split).
//!
//! This module only exists under the `fault-inject` cargo feature; the
//! audited call sites in `router.rs` are each wrapped in
//! `#[cfg(feature = "fault-inject")]`, and lint L008 (`logcl-analyze`)
//! proves no hook escapes the gate — default release builds contain none
//! of this code. It extends the serve stack's in-process [`FaultPlan`]
//! idiom (`logcl_serve::fault`) across the router/worker boundary: the
//! faults here simulate what a kill -9'd, partitioned, or stalled *worker
//! process* looks like from the router's side of the wire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Audited boundaries where a router fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Outbound connects to one shard fail as refused.
    ConnectRefuse,
    /// Outbound hops to one shard stall before the request is written.
    ShardStall,
    /// Active health probes are blackholed (fail without reaching the wire).
    ProbeBlackhole,
}

/// A seeded, fully deterministic schedule of injected router faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for stall jitter; two runs with the same seed and traffic fire
    /// identical faults.
    pub seed: u64,
    /// Refuse every outbound connect to this shard index (simulates a
    /// worker whose port is gone — the kill -9 signature).
    pub connect_refuse_shard: Option<usize>,
    /// Stall outbound hops to this shard (simulates a live-but-wedged
    /// worker that accepts and then goes quiet).
    pub stall_shard: Option<usize>,
    /// Base stall duration for [`FaultPlan::stall_shard`], jittered 1–3×.
    pub stall: Option<Duration>,
    /// Blackhole active health probes: the prober's `GET /healthz` fails
    /// without touching the network, so passive traffic is the only
    /// recovery signal.
    pub probe_blackhole: bool,
}

struct Counters {
    connect_refuse: AtomicU64,
    shard_stall: AtomicU64,
    probe_blackhole: AtomicU64,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
static FIRED: Counters = Counters {
    connect_refuse: AtomicU64::new(0),
    shard_stall: AtomicU64::new(0),
    probe_blackhole: AtomicU64::new(0),
};

fn counter(point: FaultPoint) -> &'static AtomicU64 {
    match point {
        FaultPoint::ConnectRefuse => &FIRED.connect_refuse,
        FaultPoint::ShardStall => &FIRED.shard_stall,
        FaultPoint::ProbeBlackhole => &FIRED.probe_blackhole,
    }
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> Option<T>) -> Option<T> {
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().and_then(f)
}

/// Installs a plan (replacing any previous one) and resets fire counters.
pub fn install(plan: FaultPlan) {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    for c in [
        &FIRED.connect_refuse,
        &FIRED.shard_stall,
        &FIRED.probe_blackhole,
    ] {
        c.store(0, Ordering::Release);
    }
    *guard = Some(plan);
}

/// Removes the installed plan; all hooks become no-ops again.
pub fn clear() {
    let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

/// How many times the given fault point has fired since `install`.
pub fn fired(point: FaultPoint) -> u64 {
    counter(point).load(Ordering::Acquire)
}

/// SplitMix64 — the same deterministic mixer as `logcl_serve::fault`.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(n.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether an outbound connect to `shard` should fail as refused.
pub fn connect_refused(shard: usize) -> bool {
    with_plan(|p| {
        if p.connect_refuse_shard != Some(shard) {
            return None;
        }
        counter(FaultPoint::ConnectRefuse).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

/// Stall to inject before the `n`-th outbound hop to `shard`, if any
/// (jittered deterministically 1–3× the base).
pub fn shard_stall(shard: usize, n: u64) -> Option<Duration> {
    with_plan(|p| {
        if p.stall_shard != Some(shard) {
            return None;
        }
        let base = p.stall?;
        counter(FaultPoint::ShardStall).fetch_add(1, Ordering::AcqRel);
        let factor = 1 + (mix(p.seed, n) % 3) as u32;
        Some(base * factor)
    })
}

/// Whether active health probes are blackholed right now.
pub fn probe_blackholed() -> bool {
    with_plan(|p| {
        if !p.probe_blackhole {
            return None;
        }
        counter(FaultPoint::ProbeBlackhole).fetch_add(1, Ordering::AcqRel);
        Some(())
    })
    .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global: tests serialise on a mutex so cargo's
    /// parallel test threads cannot stomp each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn faults_target_their_shard_only() {
        let _guard = serial();
        install(FaultPlan {
            connect_refuse_shard: Some(1),
            stall_shard: Some(2),
            stall: Some(Duration::from_millis(10)),
            ..FaultPlan::default()
        });
        assert!(!connect_refused(0));
        assert!(connect_refused(1));
        assert!(shard_stall(0, 0).is_none());
        let d = shard_stall(2, 0).unwrap();
        assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(30));
        assert_eq!(fired(FaultPoint::ConnectRefuse), 1);
        assert_eq!(fired(FaultPoint::ShardStall), 1);
        clear();
        assert!(!connect_refused(1) && shard_stall(2, 0).is_none());
    }

    #[test]
    fn probe_blackhole_is_global_and_deterministic() {
        let _guard = serial();
        install(FaultPlan {
            probe_blackhole: true,
            ..FaultPlan::default()
        });
        assert!(probe_blackholed());
        assert!(probe_blackholed());
        assert_eq!(fired(FaultPoint::ProbeBlackhole), 2);
        clear();
        assert!(!probe_blackholed());
    }

    #[test]
    fn stall_jitter_replays_for_a_fixed_seed() {
        let _guard = serial();
        let schedule = |seed: u64| -> Vec<Option<Duration>> {
            install(FaultPlan {
                seed,
                stall_shard: Some(0),
                stall: Some(Duration::from_millis(5)),
                ..FaultPlan::default()
            });
            (0..16).map(|n| shard_stall(0, n)).collect()
        };
        let a = schedule(9);
        let b = schedule(9);
        assert_eq!(a, b, "same seed must replay identically");
        clear();
    }
}
