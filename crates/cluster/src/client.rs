//! A minimal one-shot HTTP/1.1 client for router → worker hops.
//!
//! Deliberately connection-per-request: the router's failure domain is the
//! *request*, and a fresh connection per attempt means a half-dead kept-
//! alive socket can never poison a later request. Every call carries an
//! absolute deadline; connect, read, and write timeouts are all derived
//! from the remaining budget so a hop can never outlive its request.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use logcl_serve::deadline::remaining_budget;

/// Why an outbound hop failed — the retry-accounting taxonomy
/// (`logcl_router_retries_total{reason=...}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// TCP connect refused / unreachable / timed out.
    Connect,
    /// The deadline expired while waiting on the socket.
    Timeout,
    /// The worker answered a retryable HTTP status (5xx).
    Http,
    /// The exchange died mid-flight (reset, truncated response, bad frame).
    Io,
}

impl FailReason {
    /// The `reason` label value.
    pub fn name(self) -> &'static str {
        match self {
            FailReason::Connect => "connect",
            FailReason::Timeout => "timeout",
            FailReason::Http => "http",
            FailReason::Io => "io",
        }
    }
}

/// A failed hop: the taxonomy bucket plus a human-readable detail.
#[derive(Debug, Clone)]
pub struct HopError {
    /// Retry-accounting bucket.
    pub reason: FailReason,
    /// Operator-readable detail.
    pub detail: String,
}

/// A parsed worker response.
#[derive(Debug)]
pub struct WireResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn io_kind_error(e: &std::io::Error, what: &str) -> HopError {
    let reason = match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FailReason::Timeout,
        _ => FailReason::Io,
    };
    HopError {
        reason,
        detail: format!("{what}: {e}"),
    }
}

/// Performs one `method path` exchange against `addr` with the given extra
/// headers and body, bounded by `deadline` (and `connect_timeout` for the
/// TCP handshake). Any 2xx–4xx response parses as `Ok` — HTTP-level
/// failures below 500 are answers, not transport faults; 5xx maps to a
/// retryable [`FailReason::Http`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
    deadline: Instant,
    connect_timeout: Duration,
) -> Result<WireResponse, HopError> {
    let now = Instant::now();
    let budget = remaining_budget(deadline, now);
    if budget.is_zero() {
        return Err(HopError {
            reason: FailReason::Timeout,
            detail: "deadline exhausted before connect".into(),
        });
    }
    // Resolve and connect within min(connect budget, remaining budget).
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| HopError {
            reason: FailReason::Connect,
            detail: format!("resolve {addr}: {e}"),
        })?
        .next()
        .ok_or_else(|| HopError {
            reason: FailReason::Connect,
            detail: format!("resolve {addr}: no addresses"),
        })?;
    let stream = TcpStream::connect_timeout(
        &sock_addr,
        connect_timeout.min(budget).max(
            // connect_timeout(0) is an invalid argument, not an instant failure
            Duration::from_millis(1),
        ),
    )
    .map_err(|e| HopError {
        reason: FailReason::Connect,
        detail: format!("connect {addr}: {e}"),
    })?;
    write_then_read(stream, addr, method, path, headers, body, deadline)
}

fn write_then_read(
    mut stream: TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: &[u8],
    deadline: Instant,
) -> Result<WireResponse, HopError> {
    let budget = remaining_budget(deadline, Instant::now());
    if budget.is_zero() {
        return Err(HopError {
            reason: FailReason::Timeout,
            detail: "deadline exhausted after connect".into(),
        });
    }
    let _ = stream.set_nodelay(true);
    stream
        .set_write_timeout(Some(budget))
        .map_err(|e| io_kind_error(&e, "set_write_timeout"))?;
    stream
        .set_read_timeout(Some(budget))
        .map_err(|e| io_kind_error(&e, "set_read_timeout"))?;

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !body.is_empty() || method == "POST" {
        head.push_str("Content-Type: application/json\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| io_kind_error(&e, "write request"))?;

    read_response(&mut stream)
}

/// Reads one `Connection: close` response: head until the blank line, body
/// until `Content-Length` is satisfied (or EOF when absent).
fn read_response(stream: &mut TcpStream) -> Result<WireResponse, HopError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(HopError {
                reason: FailReason::Io,
                detail: "response head exceeds 64KiB".into(),
            });
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HopError {
                    reason: FailReason::Io,
                    detail: "connection closed before response head".into(),
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(io_kind_error(&e, "read response head")),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HopError {
            reason: FailReason::Io,
            detail: format!("malformed status line {status_line:?}"),
        })?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }

    let mut body = buf[head_end + 4..].to_vec();
    match content_length {
        Some(len) => {
            while body.len() < len {
                match stream.read(&mut chunk) {
                    Ok(0) => {
                        return Err(HopError {
                            reason: FailReason::Io,
                            detail: format!("body truncated at {} of {len} bytes", body.len()),
                        })
                    }
                    Ok(n) => body.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(io_kind_error(&e, "read response body")),
                }
            }
            body.truncate(len);
        }
        None => {
            // No Content-Length on a close-delimited response: read to EOF.
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => body.extend_from_slice(&chunk[..n]),
                    Err(e) => return Err(io_kind_error(&e, "read response body")),
                }
            }
        }
    }

    if status >= 500 {
        return Err(HopError {
            reason: FailReason::Http,
            detail: format!(
                "worker answered {status}: {}",
                String::from_utf8_lossy(&body)
            ),
        });
    }
    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refused_connection_classifies_as_connect() {
        // Port 1 on localhost is essentially never listening.
        let err = request(
            "127.0.0.1:1",
            "GET",
            "/healthz",
            &[],
            b"",
            Instant::now() + Duration::from_millis(500),
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert_eq!(err.reason, FailReason::Connect);
        assert_eq!(err.reason.name(), "connect");
    }

    #[test]
    fn expired_deadline_fails_fast_as_timeout() {
        let err = request(
            "127.0.0.1:1",
            "GET",
            "/healthz",
            &[],
            b"",
            Instant::now() - Duration::from_millis(1),
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert_eq!(err.reason, FailReason::Timeout);
    }

    #[test]
    fn parses_a_served_response_end_to_end() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 4096];
            let _ = s.read(&mut sink);
            let body = br#"{"ok":true}"#;
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Test: yes\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body).unwrap();
        });
        let resp = request(
            &addr.to_string(),
            "POST",
            "/predict",
            &[("X-LogCL-Deadline-Ms", "100".into())],
            br#"{"subject":0}"#,
            Instant::now() + Duration::from_secs(2),
            Duration::from_millis(500),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-test"), Some("yes"));
        assert_eq!(resp.body, br#"{"ok":true}"#);
    }

    #[test]
    fn five_hundreds_classify_as_retryable_http() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = [0u8; 4096];
            let _ = s.read(&mut sink);
            s.write_all(b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        });
        let err = request(
            &addr.to_string(),
            "GET",
            "/healthz",
            &[],
            b"",
            Instant::now() + Duration::from_secs(2),
            Duration::from_millis(500),
        )
        .unwrap_err();
        server.join().unwrap();
        assert_eq!(err.reason, FailReason::Http);
        assert!(err.detail.contains("503"), "{}", err.detail);
    }
}
