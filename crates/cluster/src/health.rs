//! Per-worker health state machines.
//!
//! Each worker (one replica of one shard) carries a four-state machine
//! driven by two signals: *passive* outcomes of real scatter traffic and
//! *active* `GET /healthz` probes from the prober thread.
//!
//! ```text
//!            failure                 streak >= down_after
//!   Up ───────────────▶ Suspect ─────────────────────────▶ Down
//!    ▲                    │  ▲                               │
//!    │ success / probe ok │  │ probe failed                  │ prober picks
//!    │                    ▼  │                               ▼
//!    └──────────────── Probing ◀─────────────────────────────┘
//! ```
//!
//! The machine is atomics-only — no locks are ever held, so health updates
//! from concurrent scatter threads can never block each other or the
//! prober (and there is no lock-order edge into any other subsystem).

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Worker availability as the router sees it. The numeric values are the
/// `logcl_router_shard_state` gauge values, ordered so "more routable"
/// compares greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum WorkerState {
    /// Consecutive failures crossed the threshold; only the prober (or a
    /// last-resort attempt when nothing better exists) touches it.
    Down = 0,
    /// An active probe is in flight right now.
    Probing = 1,
    /// At least one recent failure; still routable, but deprioritised.
    Suspect = 2,
    /// Healthy.
    Up = 3,
}

impl WorkerState {
    fn from_u8(v: u8) -> WorkerState {
        match v {
            0 => WorkerState::Down,
            1 => WorkerState::Probing,
            2 => WorkerState::Suspect,
            _ => WorkerState::Up,
        }
    }

    /// The gauge label rendered at `/metrics` and `/healthz`.
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Down => "down",
            WorkerState::Probing => "probing",
            WorkerState::Suspect => "suspect",
            WorkerState::Up => "up",
        }
    }
}

/// One worker's health: the state plus its consecutive-failure streak.
pub struct WorkerHealth {
    state: AtomicU8,
    streak: AtomicU32,
    /// Total passive failures observed (monotone; surfaced at `/metrics`).
    failures: AtomicU64,
}

impl Default for WorkerHealth {
    fn default() -> Self {
        // Workers start Up: the router is optimistic until traffic or a
        // probe says otherwise, so a cold start never refuses to route.
        Self {
            state: AtomicU8::new(WorkerState::Up as u8),
            streak: AtomicU32::new(0),
            failures: AtomicU64::new(0),
        }
    }
}

impl WorkerHealth {
    /// Current state.
    pub fn state(&self) -> WorkerState {
        WorkerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Total passive failures ever observed.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Acquire)
    }

    /// A real request against this worker succeeded: full reset to Up.
    pub fn note_success(&self) {
        self.streak.store(0, Ordering::Release);
        self.state.store(WorkerState::Up as u8, Ordering::Release);
    }

    /// A real request failed: Up degrades to Suspect immediately, and
    /// `down_after` consecutive failures degrade to Down.
    pub fn note_failure(&self, down_after: u32) {
        self.failures.fetch_add(1, Ordering::AcqRel);
        let streak = self.streak.fetch_add(1, Ordering::AcqRel) + 1;
        let next = if streak >= down_after.max(1) {
            WorkerState::Down
        } else {
            WorkerState::Suspect
        };
        self.state.store(next as u8, Ordering::Release);
    }

    /// The prober claims this worker for an active check. Only non-Up
    /// workers are probed, and only one probe runs at a time (the CAS from
    /// Suspect/Down into Probing is the claim). Returns `false` when the
    /// worker is Up or already being probed.
    pub fn begin_probe(&self) -> bool {
        for from in [WorkerState::Suspect, WorkerState::Down] {
            if self
                .state
                .compare_exchange(
                    from as u8,
                    WorkerState::Probing as u8,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// The active probe answered healthy: walk back to Up.
    pub fn probe_success(&self) {
        self.note_success();
    }

    /// The active probe failed: straight to Down (a probe failure is
    /// definitive — there is no traffic to be lucky with).
    pub fn probe_failure(&self) {
        self.failures.fetch_add(1, Ordering::AcqRel);
        self.streak.fetch_add(1, Ordering::AcqRel);
        self.state.store(WorkerState::Down as u8, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_up_suspect_down_and_recovers() {
        let h = WorkerHealth::default();
        assert_eq!(h.state(), WorkerState::Up);
        h.note_failure(3);
        assert_eq!(h.state(), WorkerState::Suspect);
        h.note_failure(3);
        assert_eq!(h.state(), WorkerState::Suspect);
        h.note_failure(3);
        assert_eq!(h.state(), WorkerState::Down);
        assert_eq!(h.failures(), 3);
        // Prober claims it, probe succeeds, worker is Up again and the
        // streak is reset (one fresh failure is Suspect, not Down).
        assert!(h.begin_probe());
        assert_eq!(h.state(), WorkerState::Probing);
        h.probe_success();
        assert_eq!(h.state(), WorkerState::Up);
        h.note_failure(3);
        assert_eq!(h.state(), WorkerState::Suspect);
    }

    #[test]
    fn probe_claim_is_exclusive_and_skips_up() {
        let h = WorkerHealth::default();
        assert!(!h.begin_probe(), "Up workers are not probed");
        h.note_failure(1);
        assert_eq!(h.state(), WorkerState::Down);
        assert!(h.begin_probe());
        assert!(!h.begin_probe(), "a probe is already in flight");
        h.probe_failure();
        assert_eq!(h.state(), WorkerState::Down);
        // A passive success from a still-draining request wins immediately.
        h.note_success();
        assert_eq!(h.state(), WorkerState::Up);
    }

    #[test]
    fn state_ordering_prefers_more_routable() {
        assert!(WorkerState::Up > WorkerState::Suspect);
        assert!(WorkerState::Suspect > WorkerState::Probing);
        assert!(WorkerState::Probing > WorkerState::Down);
        assert_eq!(WorkerState::Down.name(), "down");
        assert_eq!(WorkerState::Up.name(), "up");
    }
}
