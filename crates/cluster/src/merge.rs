//! Wire-level scatter-gather merge: per-shard `/predict` answers in, one
//! global answer out.
//!
//! The bit-exactness contract lives here. Workers transmit each candidate's
//! raw logit as `score_bits` (the exact `f32::to_bits` pattern — JSON
//! decimal round-trips are not bit-reliable), and the merge re-ranks the
//! union with [`logcl_core::merge_topk`], the *same* comparator as the
//! single-node `topk_from_scores`. The merged ranking (entity order and raw
//! scores) is therefore bit-identical to a single unsharded worker's.
//! Probabilities are recombined from the per-shard softmax partials
//! ([`SoftmaxStat`]) and are numerically — not bit — equal (f32 addition is
//! not associative across the shard boundary).

use std::collections::BTreeMap;

use logcl_core::{merge_topk, ScoredEntity, SoftmaxStat};
use serde_json::Value;

/// One shard's parsed `/predict` answer.
#[derive(Debug)]
pub struct ShardReply {
    /// Which shard answered.
    pub index: usize,
    /// First entity id the shard scored (inclusive).
    pub lo: usize,
    /// One past the last entity id the shard scored.
    pub hi: usize,
    /// Total entity vocabulary size `|E|` (same on every worker).
    pub entities: usize,
    /// Shard-local softmax partials.
    pub stat: SoftmaxStat,
    /// The shard's top-k candidates with bit-exact scores.
    pub candidates: Vec<ScoredEntity>,
    /// Entity names keyed by id (for re-labelling the merged list).
    pub names: BTreeMap<usize, String>,
    /// Whether the shard answered degraded (brownout on the worker).
    pub degraded: bool,
    /// Whether the shard's snapshot encoding came from its cache.
    pub cache_hit: bool,
}

/// Why a worker's 200 body could not be understood as a shard reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardReplyError {
    /// The body was not JSON at all.
    Unparseable(String),
    /// No `"shard"` object — the worker is not running in `--shard` mode.
    NotSharded,
    /// A required numeric field was absent or non-numeric.
    MissingField(&'static str),
    /// `"predictions"` was absent or not an array.
    MissingPredictions,
}

impl std::fmt::Display for ShardReplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unparseable(detail) => write!(f, "unparseable shard body: {detail}"),
            Self::NotSharded => write!(
                f,
                "shard reply missing \"shard\" (is the worker running with --shard?)"
            ),
            Self::MissingField(key) => write!(f, "shard reply missing numeric \"{key}\""),
            Self::MissingPredictions => write!(f, "shard reply missing \"predictions\""),
        }
    }
}

impl std::error::Error for ShardReplyError {}

/// Parses a worker's `/predict` JSON body into a [`ShardReply`]. Returns a
/// typed error for any missing or malformed field — a worker that answers
/// 200 with an unintelligible body is treated as failed, never merged on a
/// guess.
pub fn parse_shard_reply(body: &[u8]) -> Result<ShardReply, ShardReplyError> {
    let value: Value =
        serde_json::from_slice(body).map_err(|e| ShardReplyError::Unparseable(e.to_string()))?;
    let shard = value.get("shard").ok_or(ShardReplyError::NotSharded)?;
    let field = |obj: &Value, key: &'static str| -> Result<u64, ShardReplyError> {
        obj.get(key)
            .and_then(Value::as_u64)
            .ok_or(ShardReplyError::MissingField(key))
    };
    let index = field(shard, "index")? as usize;
    let lo = field(shard, "lo")? as usize;
    let hi = field(shard, "hi")? as usize;
    let entities = field(shard, "entities")? as usize;
    let stat = SoftmaxStat {
        max: f32::from_bits(field(shard, "softmax_max_bits")? as u32),
        sum_exp: f32::from_bits(field(shard, "softmax_sum_exp_bits")? as u32),
    };
    let predictions = value
        .get("predictions")
        .and_then(Value::as_array)
        .ok_or(ShardReplyError::MissingPredictions)?;
    let mut candidates = Vec::with_capacity(predictions.len());
    let mut names = BTreeMap::new();
    for p in predictions {
        let entity = field(p, "entity")? as usize;
        let score = f32::from_bits(field(p, "score_bits")? as u32);
        candidates.push(ScoredEntity { entity, score });
        if let Some(name) = p.get("name").and_then(Value::as_str) {
            names.insert(entity, name.to_string());
        }
    }
    Ok(ShardReply {
        index,
        lo,
        hi,
        entities,
        stat,
        candidates,
        names,
        degraded: value
            .get("degraded")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        cache_hit: value
            .get("cache_hit")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

/// One entry of the merged global ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedPrediction {
    /// Global entity id.
    pub entity: usize,
    /// Entity name (from the owning shard's reply).
    pub name: String,
    /// Globally recombined softmax probability.
    pub probability: f32,
    /// Raw decoder logit, bit-identical to single-node.
    pub score: f32,
}

/// The router's merged answer.
#[derive(Debug)]
pub struct MergedAnswer {
    /// Global top-k over every answering shard.
    pub predictions: Vec<MergedPrediction>,
    /// Fraction of the entity vocabulary actually scored: `1.0` when every
    /// shard answered, less when the answer is partial.
    pub coverage: f64,
    /// Whether any answering shard was itself degraded (worker brownout).
    pub shard_degraded: bool,
    /// Whether every answering shard served from its encoding cache.
    pub all_cache_hits: bool,
    /// Shard indexes that contributed.
    pub answered: Vec<usize>,
}

/// Merges the shard replies that made it back. `total_shards` is the
/// configured cluster width; missing shards shrink `coverage` below `1.0`
/// (the partial-result degradation contract) but never fail the merge.
pub fn merge_replies(replies: &[ShardReply], k: usize, total_shards: usize) -> MergedAnswer {
    let per_shard: Vec<Vec<ScoredEntity>> = replies.iter().map(|r| r.candidates.clone()).collect();
    let stats: Vec<SoftmaxStat> = replies.iter().map(|r| r.stat).collect();
    let global = SoftmaxStat::combine(&stats);
    let merged = merge_topk(&per_shard, k);
    let predictions = merged
        .into_iter()
        .map(|c| MergedPrediction {
            entity: c.entity,
            name: replies
                .iter()
                .find_map(|r| r.names.get(&c.entity))
                .cloned()
                .unwrap_or_default(),
            probability: global.probability(c.score),
            score: c.score,
        })
        .collect();
    // Coverage is the scored fraction of the vocabulary. |E| comes from the
    // replies themselves (every worker reports the same value); with no
    // replies at all there is nothing scored and nothing to divide by.
    let entities = replies.iter().map(|r| r.entities).max().unwrap_or(0);
    let covered: usize = replies.iter().map(|r| r.hi - r.lo).sum();
    let coverage = if entities == 0 {
        0.0
    } else {
        covered as f64 / entities as f64
    };
    let mut answered: Vec<usize> = replies.iter().map(|r| r.index).collect();
    answered.sort_unstable();
    let _ = total_shards; // width is implied by coverage; kept for callers' clarity
    MergedAnswer {
        predictions,
        coverage,
        shard_degraded: replies.iter().any(|r| r.degraded),
        all_cache_hits: !replies.is_empty() && replies.iter().all(|r| r.cache_hit),
        answered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn reply_json(index: usize, lo: usize, hi: usize, scores: &[(usize, f32)]) -> Vec<u8> {
        let stat = SoftmaxStat::from_scores(&scores.iter().map(|&(_, s)| s).collect::<Vec<_>>());
        let predictions: Vec<Value> = scores
            .iter()
            .map(|&(e, s)| {
                json!({
                    "entity": e,
                    "name": format!("e{e}"),
                    "probability": 0.0,
                    "score": s,
                    "score_bits": s.to_bits(),
                })
            })
            .collect();
        let shard = json!({
            "index": index,
            "count": 2,
            "lo": lo,
            "hi": hi,
            "entities": 10,
            "softmax_max_bits": stat.max.to_bits(),
            "softmax_sum_exp_bits": stat.sum_exp.to_bits(),
        });
        json!({
            "model": "default",
            "predictions": predictions,
            "degraded": false,
            "cache_hit": true,
            "shard": shard,
        })
        .to_string()
        .into_bytes()
    }

    #[test]
    fn parses_and_merges_bit_exactly() {
        let a = parse_shard_reply(&reply_json(0, 0, 5, &[(1, 2.5), (0, 1.0)])).unwrap();
        let b = parse_shard_reply(&reply_json(1, 5, 10, &[(7, 2.5), (9, 0.5)])).unwrap();
        let merged = merge_replies(&[a, b], 3, 2);
        assert_eq!(merged.coverage, 1.0);
        assert!(!merged.shard_degraded);
        assert!(merged.all_cache_hits);
        assert_eq!(merged.answered, vec![0, 1]);
        let order: Vec<usize> = merged.predictions.iter().map(|p| p.entity).collect();
        // 2.5 tie broken by entity id ascending: 1 before 7.
        assert_eq!(order, vec![1, 7, 0]);
        assert_eq!(merged.predictions[0].score.to_bits(), 2.5f32.to_bits());
        assert_eq!(merged.predictions[0].name, "e1");
        let p: f32 = merged.predictions.iter().map(|p| p.probability).sum();
        assert!(p <= 1.0 + 1e-5);
    }

    #[test]
    fn partial_merge_reports_coverage() {
        let a = parse_shard_reply(&reply_json(0, 0, 5, &[(1, 2.5)])).unwrap();
        let merged = merge_replies(&[a], 3, 2);
        assert_eq!(merged.coverage, 0.5);
        assert_eq!(merged.answered, vec![0]);
        assert_eq!(merged.predictions.len(), 1);
        let empty = merge_replies(&[], 3, 2);
        assert_eq!(empty.coverage, 0.0);
        assert!(empty.predictions.is_empty());
        assert!(!empty.all_cache_hits);
    }

    #[test]
    fn rejects_unintelligible_bodies() {
        assert!(parse_shard_reply(b"not json").is_err());
        let no_shard = json!({"predictions": Vec::<Value>::new()}).to_string();
        let err = parse_shard_reply(no_shard.as_bytes()).unwrap_err();
        assert_eq!(err, ShardReplyError::NotSharded);
        assert!(err.to_string().contains("--shard"), "{err}");
    }
}
