//! Router configuration and the worker-topology specification.

use std::time::Duration;

/// A malformed router configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The `--shards` list was empty.
    NoShards,
    /// A shard group contained an empty replica address.
    EmptyAddress {
        /// Zero-based shard index of the offending group.
        shard: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoShards => write!(
                f,
                "no worker shards given (want host:port[+replica][,shard2...])"
            ),
            Self::EmptyAddress { shard } => {
                write!(f, "shard {shard} contains an empty worker address")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Parses the `--shards` CLI form into per-shard replica groups: shards are
/// comma-separated, replicas of one shard are `+`-separated, e.g.
/// `"127.0.0.1:7001+127.0.0.1:7004,127.0.0.1:7002,127.0.0.1:7003"` is a
/// three-shard cluster whose first shard has two replicas.
pub fn parse_shards(spec: &str) -> Result<Vec<Vec<String>>, ClusterError> {
    let mut shards = Vec::new();
    for (index, group) in spec.split(',').enumerate() {
        let group = group.trim();
        if group.is_empty() {
            // A trailing comma is tolerated; an interior empty group is not.
            if spec.trim().is_empty() || index + 1 == spec.split(',').count() {
                continue;
            }
            return Err(ClusterError::EmptyAddress { shard: index });
        }
        let mut replicas = Vec::new();
        for addr in group.split('+') {
            let addr = addr.trim();
            if addr.is_empty() {
                return Err(ClusterError::EmptyAddress { shard: index });
            }
            replicas.push(addr.to_string());
        }
        shards.push(replicas);
    }
    if shards.is_empty() {
        return Err(ClusterError::NoShards);
    }
    Ok(shards)
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker topology: `shards[i]` holds the replica addresses of entity
    /// shard `i` (each worker must be serving with `--shard i/N` where `N`
    /// is `shards.len()`).
    pub shards: Vec<Vec<String>>,
    /// Concurrent inbound connections handled (excess answered `503`).
    pub max_connections: usize,
    /// `k` when a predict request does not specify one.
    pub default_k: usize,
    /// Per-request deadline when the client sends no `X-LogCL-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Ceiling clamped onto client-supplied deadlines.
    pub max_deadline: Duration,
    /// Extra attempts per shard after the first fails (each against the
    /// next-preferred replica, with jittered exponential backoff between).
    pub retries: u32,
    /// Backoff base: attempt `n` waits ~`retry_base * 2^n`, jittered.
    pub retry_base: Duration,
    /// Launch a hedged second attempt when a predict scatter has heard
    /// nothing from a shard for this long (`None` disables hedging).
    pub hedge_after: Option<Duration>,
    /// How often the prober re-checks non-Up workers via `GET /healthz`.
    pub probe_interval: Duration,
    /// Outbound TCP connect timeout (also the probe timeout).
    pub connect_timeout: Duration,
    /// Per-connection socket read timeout on the inbound side.
    pub read_timeout: Duration,
    /// Per-request body-size cap in bytes on the inbound side.
    pub max_body_bytes: usize,
    /// `Retry-After` seconds advertised on 503/504 and partial responses.
    pub retry_after_secs: u64,
    /// Consecutive failures that walk a worker Suspect → Down.
    pub down_after: u32,
    /// Serve `POST /shutdown` (disable when fronted by untrusted traffic).
    pub enable_shutdown_endpoint: bool,
    /// Seed for backoff jitter and minted ingest ids (deterministic tests).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            max_connections: 128,
            default_k: 10,
            default_deadline: Duration::from_secs(30),
            max_deadline: Duration::from_secs(120),
            retries: 2,
            retry_base: Duration::from_millis(20),
            hedge_after: None,
            probe_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(10),
            max_body_bytes: logcl_serve::http::MAX_BODY_BYTES,
            retry_after_secs: 1,
            down_after: 3,
            enable_shutdown_endpoint: true,
            seed: 0x5eed_c1a5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shards_and_replicas() {
        let shards = parse_shards("a:1+b:2,c:3").unwrap();
        assert_eq!(
            shards,
            vec![vec!["a:1".to_string(), "b:2".into()], vec!["c:3".into()]]
        );
        // Whitespace and a trailing comma are tolerated.
        let shards = parse_shards(" a:1 , b:2 ,").unwrap();
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn rejects_empty_specs() {
        assert_eq!(parse_shards(""), Err(ClusterError::NoShards));
        assert_eq!(
            parse_shards("a:1,,b:2"),
            Err(ClusterError::EmptyAddress { shard: 1 })
        );
        assert_eq!(
            parse_shards("a:1++b:2"),
            Err(ClusterError::EmptyAddress { shard: 0 })
        );
        let msg = ClusterError::NoShards.to_string();
        assert!(msg.contains("host:port"), "{msg}");
    }
}
