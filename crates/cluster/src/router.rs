//! The scatter-gather router: one thin process in front of N entity-sharded
//! `logcl serve --shard` workers, speaking the same HTTP protocol.
//!
//! * `POST /predict` — fans the request to every shard, merges the per-shard
//!   top-k into a global top-k that is bit-identical (scores and order) to a
//!   single unsharded worker's answer, and recombines softmax probabilities
//!   from per-shard partials. A shard that stays unreachable after the retry
//!   budget degrades the answer instead of failing it: the response carries
//!   `"degraded": true`, a `"coverage"` fraction, and the
//!   `X-LogCL-Degradation: partial` header.
//! * `POST /ingest`  — fans to *every* worker (each holds the full model;
//!   only decoding is entity-partitioned) under one `X-LogCL-Ingest-Id`.
//!   Router-level retries reuse the same id, so the workers' WAL dedup (PR 7)
//!   makes the whole fan-out exactly-once even across worker restarts.
//! * `GET /healthz`, `GET /metrics`, `POST /shutdown` — the usual triad.
//!
//! Failure handling per outbound hop: bounded retries with deterministic
//! jittered exponential backoff, each retry against the next-preferred
//! replica; per-worker health state machines (Up → Suspect → Down, walked
//! back by an active prober or by passive success); remaining-deadline
//! propagation via `X-LogCL-Deadline-Ms` on every hop; optional tail-latency
//! hedging for predict.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use logcl_serve::deadline::{expired, remaining_budget, remaining_ms};
use logcl_serve::http::{read_request_limited, write_response, HttpError, Request, Response};
use logcl_serve::StartError;
use serde_json::{json, Value};

use crate::client::{self, FailReason, HopError, WireResponse};
use crate::config::RouterConfig;
use crate::health::{WorkerHealth, WorkerState};
use crate::merge::{self, ShardReply};
use crate::metrics::RouterMetrics;

/// A shutdown latch (mirrors `logcl_serve::server::ShutdownState`, whose
/// constructor is private): poison-tolerant, idempotent, waitable with a
/// timeout so the prober can double as the shutdown watcher.
struct Latch {
    raised: AtomicBool,
    lock: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self {
            raised: AtomicBool::new(false),
            lock: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn trigger(&self) {
        self.raised.store(true, Ordering::SeqCst);
        *self.lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    fn is_triggered(&self) -> bool {
        self.raised.load(Ordering::SeqCst)
    }

    fn wait(&self) {
        let mut raised = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !*raised {
            raised = self.cv.wait(raised).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Waits up to `timeout`; returns whether the latch is raised.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let raised = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if *raised {
            return true;
        }
        let (raised, _) = self
            .cv
            .wait_timeout(raised, timeout)
            .unwrap_or_else(|e| e.into_inner());
        *raised
    }
}

/// Cloneable handle for initiating router shutdown from another thread.
#[derive(Clone)]
pub struct RouterShutdownHandle(Arc<Latch>);

impl RouterShutdownHandle {
    /// Begins graceful shutdown.
    pub fn trigger(&self) {
        self.0.trigger();
    }
}

/// One worker process: a replica of one entity shard.
struct Replica {
    addr: String,
    health: WorkerHealth,
}

struct RouterCtx {
    cfg: RouterConfig,
    shards: Vec<Vec<Replica>>,
    metrics: RouterMetrics,
    shutdown: Arc<Latch>,
    active: AtomicUsize,
    /// Monotone counter minting unique ingest ids.
    ingest_seq: AtomicU64,
    /// Monotone counter feeding deterministic backoff jitter.
    attempt_seq: AtomicU64,
    pid: u32,
}

/// Decrements the active-connection gauge even if a handler panics, so the
/// drain loop can never wait on a connection that already died.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running router. Dropping it (or calling [`Router::shutdown`]) stops
/// accepting, finishes in-flight connections, and joins every thread.
pub struct Router {
    addr: SocketAddr,
    ctx: Arc<RouterCtx>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the router and spawns its accept loop and prober.
    pub fn start(cfg: RouterConfig) -> Result<Router, StartError> {
        if cfg.shards.is_empty() {
            return Err(StartError::Io {
                context: "router needs at least one worker shard (--shards)".into(),
                source: std::io::Error::new(ErrorKind::InvalidInput, "empty shard list"),
            });
        }
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| StartError::Io {
            context: format!("bind {}", cfg.addr),
            source: e,
        })?;
        let addr = listener.local_addr().map_err(|e| StartError::Io {
            context: "local_addr".into(),
            source: e,
        })?;
        listener.set_nonblocking(true).map_err(|e| StartError::Io {
            context: "set_nonblocking".into(),
            source: e,
        })?;

        let shards: Vec<Vec<Replica>> = cfg
            .shards
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|addr| Replica {
                        addr: addr.clone(),
                        health: WorkerHealth::default(),
                    })
                    .collect()
            })
            .collect();
        let ctx = Arc::new(RouterCtx {
            metrics: RouterMetrics::new(shards.len()),
            shards,
            shutdown: Arc::new(Latch::new()),
            active: AtomicUsize::new(0),
            ingest_seq: AtomicU64::new(0),
            attempt_seq: AtomicU64::new(0),
            pid: std::process::id(),
            cfg,
        });

        let accept = {
            let ctx = Arc::clone(&ctx);
            thread::Builder::new()
                .name("logcl-router-accept".into())
                .spawn(move || accept_loop(listener, &ctx))
                .map_err(|e| StartError::Io {
                    context: "spawn accept loop".into(),
                    source: e,
                })?
        };
        let prober = {
            let ctx = Arc::clone(&ctx);
            thread::Builder::new()
                .name("logcl-router-prober".into())
                .spawn(move || prober_loop(&ctx))
                .map_err(|e| StartError::Io {
                    context: "spawn prober".into(),
                    source: e,
                })?
        };

        Ok(Router {
            addr,
            ctx,
            accept: Some(accept),
            prober: Some(prober),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can initiate shutdown from another thread.
    pub fn shutdown_handle(&self) -> RouterShutdownHandle {
        RouterShutdownHandle(Arc::clone(&self.ctx.shutdown))
    }

    /// A snapshot of every worker's health state, indexed `[shard][replica]`
    /// (for tests and operational assertions).
    pub fn shard_states(&self) -> Vec<Vec<WorkerState>> {
        self.ctx
            .shards
            .iter()
            .map(|group| group.iter().map(|r| r.health.state()).collect())
            .collect()
    }

    /// Blocks until shutdown is triggered (via the handle or
    /// `POST /shutdown`), then drains and joins everything.
    pub fn run(mut self) {
        self.ctx.shutdown.wait();
        self.drain();
    }

    /// Triggers shutdown and drains.
    pub fn shutdown(mut self) {
        self.ctx.shutdown.trigger();
        self.drain();
    }

    fn drain(&mut self) {
        self.ctx.shutdown.trigger();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join(); // waits for in-flight connections
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.drain();
    }
}

// ------------------------------------------------------------- accept/probe

fn accept_loop(listener: TcpListener, ctx: &Arc<RouterCtx>) {
    while !ctx.shutdown.is_triggered() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if ctx.active.load(Ordering::SeqCst) >= ctx.cfg.max_connections {
                    ctx.metrics.shed_connections.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::json(
                        503,
                        json!({"error": "router at connection capacity"}).to_string(),
                    )
                    .with_header("Retry-After", ctx.cfg.retry_after_secs.to_string());
                    let _ = write_response(&mut stream, &resp, false);
                    continue;
                }
                ctx.active.fetch_add(1, Ordering::SeqCst);
                let conn_ctx = Arc::clone(ctx);
                let spawned = thread::Builder::new()
                    .name("logcl-router-conn".into())
                    .spawn(move || {
                        let _guard = ActiveGuard(&conn_ctx.active);
                        handle_connection(stream, &conn_ctx);
                    });
                if spawned.is_err() {
                    ctx.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drain: stop accepting, let in-flight connections finish.
    while ctx.active.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_millis(5));
    }
}

/// Walks Suspect/Down workers back via active `GET /healthz` probes. The
/// passive path (real traffic succeeding) also recovers workers; the prober
/// exists so an idle cluster notices recoveries too.
fn prober_loop(ctx: &Arc<RouterCtx>) {
    while !ctx.shutdown.wait_timeout(ctx.cfg.probe_interval) {
        for group in &ctx.shards {
            for replica in group {
                if !replica.health.begin_probe() {
                    continue;
                }
                ctx.metrics.probes.fetch_add(1, Ordering::Relaxed);
                if probe_worker(ctx, replica) {
                    replica.health.probe_success();
                } else {
                    replica.health.probe_failure();
                }
            }
        }
    }
}

fn probe_worker(ctx: &RouterCtx, replica: &Replica) -> bool {
    if injected_probe_blackhole() {
        return false;
    }
    let deadline = Instant::now() + ctx.cfg.connect_timeout * 2;
    matches!(
        client::request(
            &replica.addr,
            "GET",
            "/healthz",
            &[],
            b"",
            deadline,
            ctx.cfg.connect_timeout,
        ),
        Ok(resp) if resp.status == 200
    )
}

#[cfg(feature = "fault-inject")]
fn injected_probe_blackhole() -> bool {
    crate::fault::probe_blackholed()
}

#[cfg(not(feature = "fault-inject"))]
fn injected_probe_blackhole() -> bool {
    false
}

#[cfg(feature = "fault-inject")]
fn injected_hop_fault(
    ctx: &RouterCtx,
    shard: usize,
    attempt_no: u64,
    deadline: Instant,
) -> Option<HopError> {
    if crate::fault::connect_refused(shard) {
        return Some(HopError {
            reason: FailReason::Connect,
            detail: "injected connect refusal".into(),
        });
    }
    if let Some(stall) = crate::fault::shard_stall(shard, attempt_no) {
        thread::sleep(stall.min(remaining_budget(deadline, Instant::now())));
    }
    let _ = ctx;
    None
}

#[cfg(not(feature = "fault-inject"))]
fn injected_hop_fault(
    _ctx: &RouterCtx,
    _shard: usize,
    _attempt_no: u64,
    _deadline: Instant,
) -> Option<HopError> {
    None
}

// ------------------------------------------------------------ outbound hops

/// One attempt against one worker. Propagates the *remaining* deadline
/// budget (never the client's original figure) as `X-LogCL-Deadline-Ms`,
/// and feeds the outcome into the worker's health machine.
#[allow(clippy::too_many_arguments)]
fn attempt_once(
    ctx: &RouterCtx,
    shard: usize,
    replica: &Replica,
    method: &str,
    path: &str,
    extra: &[(&str, String)],
    body: &[u8],
    deadline: Instant,
    attempt_no: u64,
) -> Result<WireResponse, HopError> {
    if let Some(err) = injected_hop_fault(ctx, shard, attempt_no, deadline) {
        replica.health.note_failure(ctx.cfg.down_after);
        return Err(err);
    }
    let mut headers: Vec<(&str, String)> = extra.to_vec();
    let ms = remaining_ms(deadline, Instant::now());
    headers.push(("X-LogCL-Deadline-Ms", ms.to_string()));
    let hop_start = Instant::now();
    match client::request(
        &replica.addr,
        method,
        path,
        &headers,
        body,
        deadline,
        ctx.cfg.connect_timeout,
    ) {
        Ok(resp) => {
            replica.health.note_success();
            ctx.metrics.shard_latency[shard].observe(hop_start.elapsed().as_secs_f64());
            Ok(resp)
        }
        Err(e) => {
            replica.health.note_failure(ctx.cfg.down_after);
            Err(e)
        }
    }
}

/// SplitMix64 (same mixer as the fault plans) for deterministic jitter and
/// minted ingest ids.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(n.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Jittered exponential backoff before retry `attempt + 1`, bounded by the
/// remaining deadline: sleeps in `[base·2ᵃ/2, base·2ᵃ)`, the jitter drawn
/// deterministically from the router seed.
fn backoff(ctx: &RouterCtx, attempt: usize, deadline: Instant) {
    let exp = ctx
        .cfg
        .retry_base
        .saturating_mul(1u32 << attempt.min(6) as u32);
    let half = exp / 2;
    let n = ctx.attempt_seq.fetch_add(1, Ordering::AcqRel);
    let jitter_permille = mix(ctx.cfg.seed, n) % 1000;
    let jitter =
        Duration::from_nanos((half.as_nanos() as u64).saturating_mul(jitter_permille) / 1000);
    let sleep = (half + jitter).min(remaining_budget(deadline, Instant::now()));
    if !sleep.is_zero() {
        thread::sleep(sleep);
    }
}

/// Replica preference order for a scatter attempt: healthiest first, stable
/// by index among equals.
fn replica_order(group: &[Replica]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..group.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(group[i].health.state() as u8));
    order
}

/// Calls one shard with the full failover policy: bounded retries, each
/// against the next-preferred replica, jittered backoff between attempts,
/// and (for predict) one hedged attempt when the first is slow. A shard
/// whose every replica is Down gets exactly one probe-like attempt — cheap
/// enough to keep paying, and the only passive recovery signal there is.
fn call_shard(
    ctx: &Arc<RouterCtx>,
    shard: usize,
    path: &str,
    extra: &[(&str, String)],
    body: &[u8],
    deadline: Instant,
    hedge: bool,
) -> Result<WireResponse, HopError> {
    let group = &ctx.shards[shard];
    let order = replica_order(group);
    let all_down = group.iter().all(|r| r.health.state() == WorkerState::Down);
    let attempts = if all_down {
        1
    } else {
        1 + ctx.cfg.retries as usize
    };
    let mut last: Option<HopError> = None;
    for attempt in 0..attempts {
        if expired(deadline, Instant::now()) {
            break;
        }
        let replica_idx = order[attempt % order.len()];
        let result = if hedge && attempt == 0 && ctx.cfg.hedge_after.is_some() {
            hedged_attempt(
                ctx,
                shard,
                replica_idx,
                order[1 % order.len()],
                path,
                body,
                deadline,
            )
        } else {
            attempt_once(
                ctx,
                shard,
                &group[replica_idx],
                "POST",
                path,
                extra,
                body,
                deadline,
                ctx.attempt_seq.fetch_add(1, Ordering::AcqRel),
            )
        };
        match result {
            Ok(resp) => return Ok(resp),
            Err(e) => {
                if attempt + 1 < attempts {
                    ctx.metrics.count_retry(e.reason);
                    backoff(ctx, attempt, deadline);
                }
                last = Some(e);
            }
        }
    }
    Err(last.unwrap_or(HopError {
        reason: FailReason::Timeout,
        detail: "deadline exhausted before any attempt".into(),
    }))
}

/// The hedged first attempt for predict: launch against the preferred
/// replica, and if nothing comes back within `hedge_after`, launch a second
/// attempt (next-preferred replica — or a fresh connection to the same one
/// in a single-replica shard) and take whichever answers first. Losers run
/// to completion on detached threads; their sends into the dropped channel
/// are ignored.
fn hedged_attempt(
    ctx: &Arc<RouterCtx>,
    shard: usize,
    primary: usize,
    secondary: usize,
    path: &str,
    body: &[u8],
    deadline: Instant,
) -> Result<WireResponse, HopError> {
    let hedge_after = ctx.cfg.hedge_after.unwrap_or_default();
    let (tx, rx) = mpsc::channel();
    let launch = |replica_idx: usize, tx: mpsc::Sender<Result<WireResponse, HopError>>| {
        let ctx = Arc::clone(ctx);
        let path = path.to_string();
        let body = body.to_vec();
        let n = ctx.attempt_seq.fetch_add(1, Ordering::AcqRel);
        thread::spawn(move || {
            let result = attempt_once(
                &ctx,
                shard,
                &ctx.shards[shard][replica_idx],
                "POST",
                &path,
                &[],
                &body,
                deadline,
                n,
            );
            let _ = tx.send(result);
        });
    };
    launch(primary, tx.clone());
    let first_wait = hedge_after.min(remaining_budget(deadline, Instant::now()));
    match rx.recv_timeout(first_wait) {
        Ok(result) => result, // fast answer (or fast failure → outer retry loop)
        Err(_) => {
            ctx.metrics.hedges.fetch_add(1, Ordering::Relaxed);
            launch(secondary, tx);
            let mut last: Option<HopError> = None;
            for _ in 0..2 {
                let wait = remaining_budget(deadline, Instant::now()).max(Duration::from_millis(1));
                match rx.recv_timeout(wait) {
                    Ok(Ok(resp)) => return Ok(resp),
                    Ok(Err(e)) => last = Some(e),
                    Err(_) => break,
                }
            }
            Err(last.unwrap_or(HopError {
                reason: FailReason::Timeout,
                detail: format!("shard {shard}: no attempt answered within the deadline"),
            }))
        }
    }
}

// ------------------------------------------------------------- connections

fn handle_connection(mut stream: TcpStream, ctx: &Arc<RouterCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.cfg.read_timeout));
    let mut served = 0usize;
    loop {
        let req = match read_request_limited(&mut stream, ctx.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(HttpError::UnexpectedEof | HttpError::ReadTimeout) if served > 0 => return,
            Err(e) => {
                let resp = finalize(
                    ctx,
                    Response::json(e.status(), json!({ "error": e.to_string() }).to_string()),
                );
                let _ = write_response(&mut stream, &resp, false);
                return;
            }
        };
        let started = Instant::now();
        let keep_alive = req.keep_alive && !ctx.shutdown.is_triggered();
        let resp = finalize(ctx, route(ctx, &req, started));
        if write_response(&mut stream, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
        served += 1;
    }
}

/// Shared response discipline: every shed/timeout answer carries
/// `Retry-After` so clients know when to come back.
fn finalize(ctx: &RouterCtx, mut resp: Response) -> Response {
    if matches!(resp.status, 503 | 504)
        && !resp.headers.iter().any(|(name, _)| *name == "Retry-After")
    {
        resp = resp.with_header("Retry-After", ctx.cfg.retry_after_secs.to_string());
    }
    resp
}

fn route(ctx: &Arc<RouterCtx>, req: &Request, started: Instant) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(ctx),
        ("GET", "/metrics") => {
            let states: Vec<Vec<u8>> = ctx
                .shards
                .iter()
                .map(|group| group.iter().map(|r| r.health.state() as u8).collect())
                .collect();
            Response::text(200, ctx.metrics.render(&states))
        }
        ("POST", "/predict") => predict(ctx, req, started),
        ("POST", "/ingest") => ingest(ctx, req, started),
        ("POST", "/shutdown") if ctx.cfg.enable_shutdown_endpoint => {
            ctx.shutdown.trigger();
            Response::json(200, json!({ "status": "shutting down" }).to_string())
        }
        ("GET", "/predict" | "/ingest" | "/shutdown") => {
            Response::json(405, json!({ "error": "use POST" }).to_string())
        }
        _ => Response::json(
            404,
            json!({ "error": format!("no route {} {}", req.method, req.path) }).to_string(),
        ),
    }
}

fn healthz(ctx: &RouterCtx) -> Response {
    let workers: Vec<Value> = ctx
        .shards
        .iter()
        .enumerate()
        .map(|(shard, group)| {
            let replicas: Vec<Value> = group
                .iter()
                .map(|r| {
                    json!({
                        "addr": r.addr,
                        "state": r.health.state().name(),
                        "failures": r.health.failures(),
                    })
                })
                .collect();
            json!({ "shard": shard, "replicas": replicas })
        })
        .collect();
    let routable = ctx
        .shards
        .iter()
        .filter(|group| group.iter().any(|r| r.health.state() != WorkerState::Down))
        .count();
    Response::json(
        200,
        json!({
            "status": "ok",
            "role": "router",
            "shards": ctx.shards.len(),
            "routable_shards": routable,
            "workers": workers,
        })
        .to_string(),
    )
}

/// Parses the client's deadline header into an absolute deadline (clamped
/// to the router ceiling) and sheds already-expired requests with 504.
fn admit_deadline(ctx: &RouterCtx, req: &Request, started: Instant) -> Result<Instant, Response> {
    let budget = match req.header("x-logcl-deadline-ms") {
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| {
                Response::json(
                    400,
                    json!({
                        "error": format!("invalid X-LogCL-Deadline-Ms value {raw:?} (want milliseconds)")
                    })
                    .to_string(),
                )
            })?;
            Duration::from_millis(ms).min(ctx.cfg.max_deadline)
        }
        None => ctx.cfg.default_deadline,
    };
    let deadline = started + budget;
    if expired(deadline, Instant::now()) {
        ctx.metrics.shed_deadline.fetch_add(1, Ordering::Relaxed);
        return Err(Response::json(
            504,
            json!({ "error": "deadline exhausted before routing" }).to_string(),
        ));
    }
    Ok(deadline)
}

// ----------------------------------------------------------------- predict

fn predict(ctx: &Arc<RouterCtx>, req: &Request, started: Instant) -> Response {
    let deadline = match admit_deadline(ctx, req, started) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    ctx.metrics.predict_requests.fetch_add(1, Ordering::Relaxed);
    let parsed: Value = match serde_json::from_slice(&req.body) {
        Ok(v) => v,
        Err(e) => {
            return Response::json(
                400,
                json!({ "error": format!("predict body must be JSON: {e}") }).to_string(),
            )
        }
    };
    let k = parsed
        .get("k")
        .and_then(Value::as_u64)
        .map(|v| v as usize)
        .unwrap_or(ctx.cfg.default_k);

    // Scatter: one thread per shard, each running the full failover policy.
    let total = ctx.shards.len();
    let (tx, rx) = mpsc::channel();
    for shard in 0..total {
        let ctx = Arc::clone(ctx);
        let tx = tx.clone();
        let body = req.body.clone();
        thread::spawn(move || {
            let result = call_shard(&ctx, shard, "/predict", &[], &body, deadline, true);
            let _ = tx.send((shard, result));
        });
    }
    drop(tx);

    // Gather until every shard reported or the deadline passed; stragglers
    // simply don't make it into the answer (partial-result degradation).
    let mut replies: Vec<ShardReply> = Vec::with_capacity(total);
    let mut fatal: Option<WireResponse> = None;
    let mut heard = 0usize;
    while heard < total {
        let wait = remaining_budget(deadline, Instant::now()).max(Duration::from_millis(1));
        let (_, result) = match rx.recv_timeout(wait) {
            Ok(item) => item,
            Err(_) => break,
        };
        heard += 1;
        match result {
            Ok(resp) if resp.status == 200 => {
                // A 200 with an unintelligible body is a failed shard, not
                // a guessable one.
                if let Ok(reply) = merge::parse_shard_reply(&resp.body) {
                    replies.push(reply);
                }
            }
            // A 4xx is an answer about the *request* (unknown entity, bad
            // body) — identical on every shard, so forward the first one.
            Ok(resp) => {
                fatal.get_or_insert(resp);
            }
            Err(_) => {}
        }
    }

    if replies.is_empty() {
        if let Some(f) = fatal {
            return Response::json(f.status, String::from_utf8_lossy(&f.body).into_owned());
        }
        return Response::json(
            503,
            json!({ "error": "no worker shard available", "coverage": 0.0 }).to_string(),
        );
    }

    let merged = merge::merge_replies(&replies, k, total);
    let partial = merged.coverage < 1.0;
    if partial {
        ctx.metrics
            .partial_responses
            .fetch_add(1, Ordering::Relaxed);
    }
    let predictions: Vec<Value> = merged
        .predictions
        .iter()
        .map(|p| {
            json!({
                "entity": p.entity,
                "name": p.name,
                "probability": p.probability,
                "score": p.score,
                "score_bits": p.score.to_bits(),
            })
        })
        .collect();
    let shard_summary = json!({ "answered": merged.answered, "total": total });
    let body = json!({
        "predictions": predictions,
        "degraded": partial || merged.shard_degraded,
        "coverage": merged.coverage,
        "cache_hit": merged.all_cache_hits,
        "shards": shard_summary,
    });
    let tier = if partial {
        "partial"
    } else if merged.shard_degraded {
        "brownout"
    } else {
        "normal"
    };
    let mut resp = Response::json(200, body.to_string()).with_header("X-LogCL-Degradation", tier);
    if partial {
        // A partial answer is worth retrying for a full one.
        resp = resp.with_header("Retry-After", ctx.cfg.retry_after_secs.to_string());
    }
    resp
}

// ------------------------------------------------------------------ ingest

fn ingest(ctx: &Arc<RouterCtx>, req: &Request, started: Instant) -> Response {
    let deadline = match admit_deadline(ctx, req, started) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    ctx.metrics.ingest_requests.fetch_add(1, Ordering::Relaxed);
    if serde_json::from_slice::<Value>(&req.body).is_err() {
        return Response::json(
            400,
            json!({ "error": "ingest body must be JSON" }).to_string(),
        );
    }
    // One id for the whole fan-out, minted at most once per client request:
    // every worker, every retry, and every client retry (echoed back in the
    // response header) sees the same id, so worker-side WAL dedup makes the
    // distributed ingest exactly-once.
    let ingest_id = match req.header("x-logcl-ingest-id") {
        Some(raw) => {
            let id = raw.trim();
            if id.is_empty() || id.len() > 128 {
                return Response::json(
                    400,
                    json!({ "error": "X-LogCL-Ingest-Id must be 1..=128 characters" }).to_string(),
                );
            }
            id.to_string()
        }
        None => {
            let seq = ctx.ingest_seq.fetch_add(1, Ordering::AcqRel);
            format!(
                "router-{}-{}-{:08x}",
                ctx.pid,
                seq,
                mix(ctx.cfg.seed ^ u64::from(ctx.pid), seq) as u32
            )
        }
    };

    // Ingest fans to EVERY worker — each replica holds the full model and
    // its own WAL; only decoding is entity-partitioned.
    let (tx, rx) = mpsc::channel();
    let mut total = 0usize;
    for (shard, group) in ctx.shards.iter().enumerate() {
        for replica_idx in 0..group.len() {
            total += 1;
            let ctx = Arc::clone(ctx);
            let tx = tx.clone();
            let body = req.body.clone();
            let id = ingest_id.clone();
            thread::spawn(move || {
                let result = call_worker_ingest(&ctx, shard, replica_idx, &id, &body, deadline);
                let _ = tx.send(result);
            });
        }
    }
    drop(tx);

    let mut acked = 0usize;
    let mut appended: u64 = 0;
    let mut all_deduplicated = true;
    let mut fatal: Option<WireResponse> = None;
    let mut heard = 0usize;
    while heard < total {
        let wait = remaining_budget(deadline, Instant::now()).max(Duration::from_millis(1));
        let result = match rx.recv_timeout(wait) {
            Ok(item) => item,
            Err(_) => break,
        };
        heard += 1;
        match result {
            Ok(resp) if resp.status == 200 => {
                acked += 1;
                if let Ok(v) = serde_json::from_slice::<Value>(&resp.body) {
                    appended = appended.max(v.get("appended").and_then(Value::as_u64).unwrap_or(0));
                    if !v
                        .get("deduplicated")
                        .and_then(Value::as_bool)
                        .unwrap_or(false)
                    {
                        all_deduplicated = false;
                    }
                }
            }
            Ok(resp) => {
                fatal.get_or_insert(resp);
            }
            Err(_) => {}
        }
    }

    if let Some(f) = fatal {
        // A worker rejected the request itself (bad fact, out-of-range id):
        // forward its verdict; a retry with the same payload cannot succeed.
        return Response::json(f.status, String::from_utf8_lossy(&f.body).into_owned())
            .with_header("X-LogCL-Ingest-Id", ingest_id);
    }
    if acked == total {
        Response::json(
            200,
            json!({
                "status": "ok",
                "ingest_id": ingest_id,
                "workers": total,
                "acked": acked,
                "appended": appended,
                "deduplicated": all_deduplicated,
            })
            .to_string(),
        )
        .with_header("X-LogCL-Ingest-Id", ingest_id)
    } else {
        // Not every worker acknowledged: the cluster is inconsistent until a
        // retry converges it. The echoed id makes that retry exactly-once.
        Response::json(
            503,
            json!({
                "error": "ingest incomplete; retry with the same X-LogCL-Ingest-Id",
                "ingest_id": ingest_id,
                "workers": total,
                "acked": acked,
            })
            .to_string(),
        )
        .with_header("X-LogCL-Ingest-Id", ingest_id)
    }
}

/// Ingest hop to one specific worker: retries stay on that worker (every
/// worker must ack) and always resend the same ingest id.
fn call_worker_ingest(
    ctx: &Arc<RouterCtx>,
    shard: usize,
    replica_idx: usize,
    ingest_id: &str,
    body: &[u8],
    deadline: Instant,
) -> Result<WireResponse, HopError> {
    let replica = &ctx.shards[shard][replica_idx];
    let extra = [("X-LogCL-Ingest-Id", ingest_id.to_string())];
    let mut last: Option<HopError> = None;
    for attempt in 0..=(ctx.cfg.retries as usize) {
        if expired(deadline, Instant::now()) {
            break;
        }
        match attempt_once(
            ctx,
            shard,
            replica,
            "POST",
            "/ingest",
            &extra,
            body,
            deadline,
            ctx.attempt_seq.fetch_add(1, Ordering::AcqRel),
        ) {
            Ok(resp) => return Ok(resp),
            Err(e) => {
                if attempt < ctx.cfg.retries as usize {
                    ctx.metrics.count_retry(e.reason);
                    backoff(ctx, attempt, deadline);
                }
                last = Some(e);
            }
        }
    }
    Err(last.unwrap_or(HopError {
        reason: FailReason::Timeout,
        detail: "deadline exhausted before any attempt".into(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(shards: Vec<Vec<String>>) -> RouterConfig {
        RouterConfig {
            shards,
            retries: 0,
            default_deadline: Duration::from_millis(400),
            connect_timeout: Duration::from_millis(100),
            probe_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        }
    }

    /// Raw HTTP exchange that hands back 5xx responses as answers (the
    /// production [`client::request`] maps them to retryable errors).
    fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> WireResponse {
        roundtrip_with(addr, method, path, &[], body)
    }

    fn roundtrip_with(
        addr: SocketAddr,
        method: &str,
        path: &str,
        extra: &[(&str, String)],
        body: &[u8],
    ) -> WireResponse {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(addr).expect("connect router");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: router\r\nConnection: close\r\n");
        for (name, value) in extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let head_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head");
        let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        WireResponse {
            status,
            headers,
            body: raw[head_end + 4..].to_vec(),
        }
    }

    #[test]
    fn healthz_and_metrics_describe_the_cluster() {
        let router =
            Router::start(test_config(vec![vec!["127.0.0.1:1".into()]])).expect("router starts");
        let addr = router.addr();
        let resp = roundtrip(addr, "GET", "/healthz", b"");
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v.get("role").and_then(Value::as_str), Some("router"));
        assert_eq!(v.get("shards").and_then(Value::as_u64), Some(1));
        let resp = roundtrip(addr, "GET", "/metrics", b"");
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        assert!(
            text.contains("logcl_router_shard_state{shard=\"0\",replica=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("logcl_router_retries_total{reason=\"connect\"} 0"),
            "{text}"
        );
        router.shutdown();
    }

    #[test]
    fn predict_with_no_workers_answers_503_with_retry_after() {
        // Port 1 is never listening: every shard attempt fails as Connect.
        let router =
            Router::start(test_config(vec![vec!["127.0.0.1:1".into()]])).expect("router starts");
        let resp = roundtrip(router.addr(), "POST", "/predict", br#"{"subject": 0}"#);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(v.get("error").is_some());
        // The failed traffic degraded the worker's health state.
        assert_ne!(router.shard_states()[0][0], WorkerState::Up);
        router.shutdown();
    }

    #[test]
    fn bad_requests_answer_4xx_without_touching_workers() {
        let router =
            Router::start(test_config(vec![vec!["127.0.0.1:1".into()]])).expect("router starts");
        let addr = router.addr();
        assert_eq!(roundtrip(addr, "POST", "/predict", b"not json").status, 400);
        assert_eq!(roundtrip(addr, "POST", "/ingest", b"not json").status, 400);
        assert_eq!(roundtrip(addr, "GET", "/nope", b"").status, 404);
        assert_eq!(roundtrip(addr, "GET", "/predict", b"").status, 405);
        // No outbound attempt happened, so the (unreachable) worker is
        // still optimistically Up.
        assert_eq!(router.shard_states()[0][0], WorkerState::Up);
        router.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_run() {
        let router =
            Router::start(test_config(vec![vec!["127.0.0.1:1".into()]])).expect("router starts");
        let addr = router.addr();
        let resp = roundtrip(addr, "POST", "/shutdown", b"");
        assert_eq!(resp.status, 200);
        router.run(); // returns promptly because shutdown is triggered
    }

    #[test]
    fn expired_deadline_is_shed_with_504() {
        let router =
            Router::start(test_config(vec![vec!["127.0.0.1:1".into()]])).expect("router starts");
        let resp = roundtrip_with(
            router.addr(),
            "POST",
            "/predict",
            &[("X-LogCL-Deadline-Ms", "0".into())],
            br#"{"subject": 0}"#,
        );
        assert_eq!(resp.status, 504);
        assert_eq!(resp.header("retry-after"), Some("1"));
        router.shutdown();
    }
}
