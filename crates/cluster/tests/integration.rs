//! Router + real workers end-to-end: scatter-gather predict bit-identical
//! to single-node, exactly-once ingest fan-out (including the
//! double-send-across-a-worker-restart case), partial-result degradation
//! when a shard dies, recovery back to full coverage, and metrics.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use logcl_cluster::{Router, RouterConfig, WorkerState};
use logcl_core::{LogClConfig, ShardSpec};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

const SHARDS: usize = 3;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

fn spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

/// Boots one worker. `addr` lets a restarted worker rebind its old port;
/// `wal_dir` makes its ingest durable.
fn worker(shard: Option<ShardSpec>, addr: &str, wal_dir: Option<&Path>) -> Server {
    let cfg = ServeConfig {
        addr: addr.into(),
        threads: 2,
        linger: Duration::from_millis(0),
        shard,
        wal_dir: wal_dir.map(Path::to_path_buf),
        brownout_sojourn: Duration::from_secs(10),
        shed_sojourn: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    Server::start(cfg, tiny_ds(), vec![spec()]).expect("worker must start")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logcl-cluster-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn router_over(workers: &[&Server]) -> Router {
    let cfg = RouterConfig {
        shards: workers.iter().map(|w| vec![w.addr().to_string()]).collect(),
        retries: 1,
        retry_base: Duration::from_millis(5),
        probe_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(250),
        ..RouterConfig::default()
    };
    Router::start(cfg).expect("router must start")
}

/// Raw HTTP client that returns ANY status (the production outbound client
/// maps 5xx to errors by design, so tests cannot reuse it).
fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let extra: String = extra_headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    (status, headers, body)
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, path, body, &[]);
    (status, body)
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let want = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == want)
        .map(|(_, v)| v.as_str())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn horizon_of(addr: std::net::SocketAddr) -> u64 {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    json(&body).get("horizon").and_then(Value::as_u64).unwrap()
}

/// `(entity, score_bits)` pairs from a predict reply, in rank order.
fn ranking(body: &Value) -> Vec<(u64, u64)> {
    body.get("predictions")
        .and_then(Value::as_array)
        .expect("predictions array")
        .iter()
        .map(|p| {
            (
                p.get("entity").and_then(Value::as_u64).expect("entity"),
                p.get("score_bits").and_then(Value::as_u64).expect("bits"),
            )
        })
        .collect()
}

// ----------------------------------------------------------------- predict

/// Predicting through the router over three sharded workers must reproduce
/// the single-node top-k bit-for-bit: same entities, same order, same raw
/// score bit patterns, with full coverage and no degradation flag.
#[test]
fn router_predict_is_bit_identical_to_single_node() {
    let single = worker(None, "127.0.0.1:0", None);
    let workers: Vec<Server> = (0..SHARDS)
        .map(|i| {
            worker(
                Some(ShardSpec::new(i, SHARDS).unwrap()),
                "127.0.0.1:0",
                None,
            )
        })
        .collect();
    let router = router_over(&workers.iter().collect::<Vec<_>>());
    let t = horizon_of(single.addr());

    for (s, r, k) in [(0u64, 0u64, 5usize), (1, 0, 10), (3, 1, 7)] {
        let query = format!(r#"{{"subject": {s}, "relation": {r}, "time": {t}, "k": {k}}}"#);
        let (status, want_body) = request(single.addr(), "POST", "/predict", &query);
        assert_eq!(status, 200, "{want_body}");
        let want = ranking(&json(&want_body));

        let (status, headers, body) = request_full(router.addr(), "POST", "/predict", &query, &[]);
        assert_eq!(status, 200, "{body}");
        let reply = json(&body);
        assert_eq!(ranking(&reply), want, "query ({s},{r}) diverged");
        assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(false));
        assert_eq!(reply.get("coverage").and_then(Value::as_f64), Some(1.0));
        let shards = reply.get("shards").expect("shards summary");
        let answered: Vec<u64> = shards
            .get("answered")
            .and_then(Value::as_array)
            .expect("answered shard list")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert_eq!(answered, vec![0, 1, 2], "{reply}");
        assert_eq!(shards.get("total").and_then(Value::as_u64), Some(3));
        assert_eq!(header_of(&headers, "x-logcl-degradation"), Some("normal"));
    }

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    single.shutdown();
}

/// A dead shard with the retry budget exhausted must degrade, not fail:
/// 200 with `degraded: true`, partial coverage, the partial tier header and
/// Retry-After discipline — and after the worker returns, the router walks
/// it back to Up and full coverage resumes.
#[test]
fn dead_shard_degrades_to_partial_answers_then_recovers() {
    let workers: Vec<Server> = (0..SHARDS)
        .map(|i| {
            worker(
                Some(ShardSpec::new(i, SHARDS).unwrap()),
                "127.0.0.1:0",
                None,
            )
        })
        .collect();
    let victim_addr = workers[2].addr();
    let router = router_over(&workers.iter().collect::<Vec<_>>());
    let t = horizon_of(workers[0].addr());
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 5}}"#);

    // Kill shard 2 (in-process stand-in for kill -9: the listener closes and
    // connections are refused, which is what the router observes either way).
    let mut workers = workers;
    workers.remove(2).shutdown();

    let (status, headers, body) = request_full(router.addr(), "POST", "/predict", &query, &[]);
    assert_eq!(status, 200, "a dead shard must degrade, not 5xx: {body}");
    let reply = json(&body);
    assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(true));
    let coverage = reply
        .get("coverage")
        .and_then(Value::as_f64)
        .expect("coverage");
    assert!(
        (0.0..1.0).contains(&coverage) && coverage > 0.5,
        "coverage should be ~2/3, got {coverage}"
    );
    assert_eq!(header_of(&headers, "x-logcl-degradation"), Some("partial"));
    assert!(
        header_of(&headers, "retry-after").is_some(),
        "partial answers must carry Retry-After"
    );
    assert!(
        !reply
            .get("predictions")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "surviving shards must still answer"
    );

    // The router noticed: shard 2's replica is no longer Up.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let state = router.shard_states()[2][0];
        if state != WorkerState::Up {
            break;
        }
        assert!(Instant::now() < deadline, "shard 2 never left Up");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Restart the worker on its old port; the prober walks it back to Up
    // and coverage returns to 1.0.
    let reborn = worker(
        Some(ShardSpec::new(2, SHARDS).unwrap()),
        &victim_addr.to_string(),
        None,
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = request_full(router.addr(), "POST", "/predict", &query, &[]);
        assert_eq!(status, 200, "{body}");
        let reply = json(&body);
        if reply.get("coverage").and_then(Value::as_f64) == Some(1.0) {
            assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(false));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "coverage never returned to 1.0 after restart"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(router.shard_states()[2][0], WorkerState::Up);

    router.shutdown();
    reborn.shutdown();
    for w in workers {
        w.shutdown();
    }
}

// ------------------------------------------------------------------ ingest

/// Exactly-once ingest across the cluster, including a worker restart in
/// the middle of a client double-send: the router fans one ingest id to
/// every worker, a retry with the same id is deduplicated everywhere —
/// even by a worker that crashed and recovered from its WAL between the
/// two sends — and no shard's WAL ends up with duplicate facts.
#[test]
fn duplicate_ingest_across_worker_restart_applies_exactly_once() {
    let dirs: Vec<PathBuf> = (0..SHARDS).map(|i| scratch(&format!("wal-{i}"))).collect();
    let workers: Vec<Server> = (0..SHARDS)
        .map(|i| {
            worker(
                Some(ShardSpec::new(i, SHARDS).unwrap()),
                "127.0.0.1:0",
                Some(&dirs[i]),
            )
        })
        .collect();
    let router = router_over(&workers.iter().collect::<Vec<_>>());
    let t0 = horizon_of(workers[0].addr());

    let ingest_body = format!(r#"{{"time": {t0}, "facts": [[1, 0, 2], [3, 1, 4]]}}"#);
    let id_header = [("X-LogCL-Ingest-Id", "cluster-dup-1")];

    let (status, headers, body) =
        request_full(router.addr(), "POST", "/ingest", &ingest_body, &id_header);
    assert_eq!(status, 200, "{body}");
    let first = json(&body);
    assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(first.get("workers").and_then(Value::as_u64), Some(3));
    assert_eq!(first.get("acked").and_then(Value::as_u64), Some(3));
    assert_eq!(first.get("appended").and_then(Value::as_u64), Some(2));
    assert_eq!(
        first.get("deduplicated").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(
        header_of(&headers, "x-logcl-ingest-id"),
        Some("cluster-dup-1"),
        "the router must echo the id it used"
    );
    for w in &workers {
        assert_eq!(horizon_of(w.addr()), t0 + 1, "every worker advanced once");
    }

    // Worker 0 dies and recovers from its WAL on the same port.
    let victim_addr = workers[0].addr();
    let mut workers = workers;
    workers.remove(0).shutdown();
    let reborn = worker(
        Some(ShardSpec::new(0, SHARDS).unwrap()),
        &victim_addr.to_string(),
        Some(&dirs[0]),
    );
    assert_eq!(
        horizon_of(reborn.addr()),
        t0 + 1,
        "the restarted worker must recover the acked ingest from its WAL"
    );

    // The client double-sends the SAME id through the router.
    let (status, headers, body) =
        request_full(router.addr(), "POST", "/ingest", &ingest_body, &id_header);
    assert_eq!(status, 200, "{body}");
    let retry = json(&body);
    assert_eq!(retry.get("acked").and_then(Value::as_u64), Some(3));
    assert_eq!(
        retry.get("deduplicated").and_then(Value::as_bool),
        Some(true),
        "every worker (including the restarted one) must dedupe: {retry}"
    );
    assert_eq!(
        retry.get("appended").and_then(Value::as_u64),
        Some(2),
        "the remembered outcome is replayed, not re-applied"
    );
    assert_eq!(
        header_of(&headers, "x-logcl-ingest-id"),
        Some("cluster-dup-1")
    );

    // No duplicate facts in any shard's WAL: each worker's horizon moved
    // exactly once, and a fresh recovery from each WAL replays exactly one
    // ingest frame.
    assert_eq!(horizon_of(reborn.addr()), t0 + 1);
    for w in &workers {
        assert_eq!(horizon_of(w.addr()), t0 + 1);
    }
    router.shutdown();
    reborn.shutdown();
    let survivors: Vec<PathBuf> = dirs[1..].to_vec();
    for w in workers {
        w.shutdown();
    }
    for dir in std::iter::once(&dirs[0]).chain(survivors.iter()) {
        let check = worker(None, "127.0.0.1:0", Some(dir));
        assert_eq!(
            check
                .metrics()
                .wal_replayed_frames
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "WAL at {} must hold exactly one ingest frame",
            dir.display()
        );
        assert_eq!(horizon_of(check.addr()), t0 + 1);
        check.shutdown();
    }
}

// ----------------------------------------------------------------- metrics

/// The router's scrape exposes per-shard health gauges, pre-registered
/// retry reasons, and latency histograms that actually observe traffic.
#[test]
fn metrics_scrape_reflects_cluster_traffic() {
    let workers: Vec<Server> = (0..SHARDS)
        .map(|i| {
            worker(
                Some(ShardSpec::new(i, SHARDS).unwrap()),
                "127.0.0.1:0",
                None,
            )
        })
        .collect();
    let router = router_over(&workers.iter().collect::<Vec<_>>());
    let t = horizon_of(workers[0].addr());
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 5}}"#);
    let (status, body) = request(router.addr(), "POST", "/predict", &query);
    assert_eq!(status, 200, "{body}");

    let (status, text) = request(router.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("logcl_router_predict_requests_total 1"),
        "{text}"
    );
    for shard in 0..SHARDS {
        assert!(
            text.contains(&format!(
                "logcl_router_shard_state{{shard=\"{shard}\",replica=\"0\"}} 3"
            )),
            "shard {shard} should scrape as Up (3): {text}"
        );
        assert!(
            text.contains(&format!(
                "logcl_router_shard_{shard}_latency_seconds_count 1"
            )),
            "shard {shard} latency histogram should have observed the hop: {text}"
        );
    }
    for reason in ["connect", "timeout", "http", "io"] {
        assert!(
            text.contains(&format!(
                "logcl_router_retries_total{{reason=\"{reason}\"}}"
            )),
            "retry reason {reason} must be pre-registered: {text}"
        );
    }
    assert!(text.contains("logcl_partial_responses_total 0"), "{text}");
    assert!(text.contains("logcl_router_hedges_total 0"), "{text}");

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}
