//! Chaos suite (only built with `--features fault-inject`): seeded fault
//! plans at the router's network boundaries prove the liveness story —
//! a refused shard degrades to partial answers instead of 5xx storms or
//! hangs, a stalled shard is hedged around, a probe blackhole still
//! recovers through passive traffic, and clearing the plan walks the
//! afflicted shard back to Up.
#![cfg(feature = "fault-inject")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use logcl_cluster::fault::{clear, fired, install, FaultPlan, FaultPoint};
use logcl_cluster::{Router, RouterConfig, WorkerState};
use logcl_core::{LogClConfig, ShardSpec};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde_json::Value;

const SHARDS: usize = 3;

/// The fault plan is process-global; chaos tests take turns.
static SERIAL: Mutex<()> = Mutex::new(());

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

fn spec() -> ModelSpec {
    ModelSpec {
        name: "default".into(),
        cfg: tiny_cfg(),
        checkpoint: None,
        train: None,
    }
}

fn workers() -> Vec<Server> {
    (0..SHARDS)
        .map(|i| {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                linger: Duration::from_millis(0),
                shard: Some(ShardSpec::new(i, SHARDS).unwrap()),
                brownout_sojourn: Duration::from_secs(10),
                shed_sojourn: Duration::from_secs(60),
                ..ServeConfig::default()
            };
            Server::start(cfg, tiny_ds(), vec![spec()]).expect("worker must start")
        })
        .collect()
}

fn router_over(workers: &[Server], hedge_after: Option<Duration>) -> Router {
    let cfg = RouterConfig {
        shards: workers.iter().map(|w| vec![w.addr().to_string()]).collect(),
        retries: 2,
        retry_base: Duration::from_millis(2),
        hedge_after,
        probe_interval: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(250),
        default_deadline: Duration::from_secs(10),
        seed: 0xc4a0_5eed,
        ..RouterConfig::default()
    };
    Router::start(cfg).expect("router must start")
}

fn request_full(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text:?}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    (status, headers, body)
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let want = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == want)
        .map(|(_, v)| v.as_str())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn horizon_of(addr: std::net::SocketAddr) -> u64 {
    let (status, _, body) = request_full(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    json(&body).get("horizon").and_then(Value::as_u64).unwrap()
}

fn predict(router: &Router, query: &str) -> (u16, Vec<(String, String)>, Value) {
    let (status, headers, body) = request_full(router.addr(), "POST", "/predict", query);
    let v = json(&body);
    (status, headers, v)
}

/// Refused connects to one shard must yield prompt partial answers (never
/// a hang or a 5xx), and clearing the plan walks the shard back to Up and
/// coverage back to 1.0.
#[test]
fn refused_shard_degrades_promptly_and_recovers_when_the_fault_lifts() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ws = workers();
    let router = router_over(&ws, None);
    let t = horizon_of(ws[0].addr());
    let query = format!(r#"{{"subject": 0, "relation": 0, "time": {t}, "k": 5}}"#);

    install(FaultPlan {
        seed: 7,
        connect_refuse_shard: Some(2),
        ..FaultPlan::default()
    });

    // Liveness: with retries exhausted against an injected refusal, the
    // answer must arrive quickly (bounded by backoff, nowhere near the
    // 10s deadline) and be a partial 200, not a 5xx.
    let started = Instant::now();
    let (status, headers, reply) = predict(&router, &query);
    let elapsed = started.elapsed();
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(true));
    let coverage = reply.get("coverage").and_then(Value::as_f64).unwrap();
    assert!(coverage > 0.5 && coverage < 1.0, "coverage {coverage}");
    assert_eq!(header_of(&headers, "x-logcl-degradation"), Some("partial"));
    assert!(header_of(&headers, "retry-after").is_some());
    assert!(
        elapsed < Duration::from_secs(5),
        "degradation must be prompt, took {elapsed:?}"
    );
    assert!(fired(FaultPoint::ConnectRefuse) > 0);

    // Three straight failures walked the replica to Down.
    assert_eq!(router.shard_states()[2][0], WorkerState::Down);

    // Fault lifts: the prober (50ms interval) probes the Down replica and
    // walks it back to Up; coverage returns to 1.0.
    clear();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, reply) = predict(&router, &query);
        assert_eq!(status, 200);
        if reply.get("coverage").and_then(Value::as_f64) == Some(1.0) {
            break;
        }
        assert!(Instant::now() < deadline, "never recovered: {reply}");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(router.shard_states()[2][0], WorkerState::Up);

    router.shutdown();
    for w in ws {
        w.shutdown();
    }
}

/// A stalled (live-but-wedged) shard triggers tail-latency hedging: the
/// hedge fires after `hedge_after`, the answer still arrives with full
/// coverage, and `logcl_router_hedges_total` counts it.
#[test]
fn stalled_shard_is_hedged_and_still_answers_in_full() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ws = workers();
    let router = router_over(&ws, Some(Duration::from_millis(10)));
    let t = horizon_of(ws[0].addr());
    let query = format!(r#"{{"subject": 1, "relation": 0, "time": {t}, "k": 5}}"#);

    install(FaultPlan {
        seed: 11,
        stall_shard: Some(0),
        stall: Some(Duration::from_millis(60)),
        ..FaultPlan::default()
    });

    let (status, _, reply) = predict(&router, &query);
    assert_eq!(status, 200, "{reply}");
    assert_eq!(
        reply.get("coverage").and_then(Value::as_f64),
        Some(1.0),
        "a stall is slow, not lossy: {reply}"
    );
    assert!(fired(FaultPoint::ShardStall) > 0);

    let (_, _, text) = request_full(router.addr(), "GET", "/metrics", "");
    let hedges: u64 = text
        .lines()
        .find(|l| l.starts_with("logcl_router_hedges_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .expect("hedges counter in scrape");
    assert!(hedges > 0, "the stalled shard should have been hedged");

    clear();
    router.shutdown();
    for w in ws {
        w.shutdown();
    }
}

/// With active probes blackholed, a downed shard can only recover through
/// passive traffic — and it does: the single cheap attempt the router
/// grants an all-Down shard doubles as the recovery signal.
#[test]
fn probe_blackhole_still_recovers_via_passive_traffic() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let ws = workers();
    let router = router_over(&ws, None);
    let t = horizon_of(ws[0].addr());
    let query = format!(r#"{{"subject": 2, "relation": 1, "time": {t}, "k": 5}}"#);

    install(FaultPlan {
        seed: 13,
        connect_refuse_shard: Some(1),
        probe_blackhole: true,
        ..FaultPlan::default()
    });

    let (status, _, reply) = predict(&router, &query);
    assert_eq!(status, 200, "{reply}");
    assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(router.shard_states()[1][0], WorkerState::Down);

    // The prober keeps trying and keeps being blackholed.
    let deadline = Instant::now() + Duration::from_secs(5);
    while fired(FaultPoint::ProbeBlackhole) == 0 {
        assert!(Instant::now() < deadline, "prober never attempted a probe");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        router.shard_states()[1][0],
        WorkerState::Down,
        "blackholed probes must not revive the shard"
    );

    // Connects work again but probes stay dark: recovery must come from
    // the passive attempt on live traffic.
    install(FaultPlan {
        seed: 13,
        probe_blackhole: true,
        ..FaultPlan::default()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, reply) = predict(&router, &query);
        assert_eq!(status, 200);
        if reply.get("coverage").and_then(Value::as_f64) == Some(1.0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "passive traffic never revived the shard: {reply}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(router.shard_states()[1][0], WorkerState::Up);

    clear();
    router.shutdown();
    for w in ws {
        w.shutdown();
    }
}
