//! The ConvTransE decoder (Shang et al., 2019) used by Eq. 18.
//!
//! The subject embedding and relation embedding are stacked as two channels,
//! convolved with `K` width-3 kernels along the embedding axis (realised as
//! im2col + matmul), flattened, projected back to `D`, and finally scored
//! against every candidate entity embedding by inner product.

use logcl_tensor::nn::{dropout, xavier_uniform, Linear, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

/// The ConvTransE decoder.
pub struct ConvTransE {
    /// Convolution kernels flattened to `[6, K]` (2 channels × width 3).
    pub kernels: Var,
    /// Kernel bias `[K]`.
    pub bias: Var,
    /// Output projection `[D·K, D]`.
    pub fc: Linear,
    /// Dropout probability applied to the flattened feature map.
    pub dropout_p: f32,
    dim: usize,
    channels: usize,
}

impl ConvTransE {
    /// A decoder with `channels` kernels (the paper uses 50) of size 2×3
    /// over `dim`-wide embeddings.
    pub fn new(dim: usize, channels: usize, dropout_p: f32, rng: &mut Rng) -> Self {
        Self {
            kernels: Var::param(xavier_uniform(6, channels, rng)),
            bias: Var::param(Tensor::zeros(&[channels])),
            fc: Linear::new(dim * channels, dim, rng),
            dropout_p,
            dim,
            channels,
        }
    }

    /// Number of convolution kernels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Decodes query `(e, r)` pairs into `[B, D]` prediction vectors.
    pub fn decode(&self, e: &Var, r: &Var, training: bool, rng: &mut Rng) -> Var {
        let b = e.shape()[0];
        assert_eq!(e.shape()[1], self.dim, "entity dim mismatch");
        assert_eq!(e.shape(), r.shape(), "entity/relation shape mismatch");
        let cols = e.conv_im2col(r); // [B*D, 6]

        // The im2col matrix has structural zeros (boundary padding), so the
        // sparse-lhs matmul kernel applies; the dense kernel stays branch-free.
        let feat = cols.matmul_sparse_lhs(&self.kernels).add(&self.bias).relu(); // [B*D, K]
        let flat = feat.reshape(&[b, self.dim * self.channels]);
        let flat = dropout(&flat, self.dropout_p, training, rng);
        self.fc.forward(&flat) // [B, D]
    }

    /// Scores decoded vectors against all candidate entity embeddings:
    /// `[B, D] × [E, D]ᵀ → [B, E]` logits.
    pub fn score_all(&self, decoded: &Var, entities: &Var) -> Var {
        decoded.matmul(&entities.transpose2())
    }

    /// Convenience: decode then score.
    pub fn forward(&self, e: &Var, r: &Var, entities: &Var, training: bool, rng: &mut Rng) -> Var {
        let decoded = self.decode(e, r, training, rng);
        self.score_all(&decoded, entities)
    }

    /// Registers kernels, bias and projection.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.kernels"), self.kernels.clone());
        params.register(format!("{prefix}.bias"), self.bias.clone());
        self.fc.register(params, &format!("{prefix}.fc"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_and_score_shapes() {
        let mut rng = Rng::seed(91);
        let dec = ConvTransE::new(8, 5, 0.0, &mut rng);
        let e = Var::constant(Tensor::randn(&[3, 8], 0.5, &mut rng));
        let r = Var::constant(Tensor::randn(&[3, 8], 0.5, &mut rng));
        let ents = Var::constant(Tensor::randn(&[20, 8], 0.5, &mut rng));
        let logits = dec.forward(&e, &r, &ents, false, &mut rng);
        assert_eq!(logits.shape(), vec![3, 20]);
        assert!(logits.value().all_finite());
    }

    #[test]
    fn different_relations_give_different_scores() {
        let mut rng = Rng::seed(92);
        let dec = ConvTransE::new(6, 4, 0.0, &mut rng);
        let e = Var::constant(Tensor::randn(&[1, 6], 0.5, &mut rng));
        let r1 = Var::constant(Tensor::randn(&[1, 6], 0.5, &mut rng));
        let r2 = Var::constant(Tensor::randn(&[1, 6], 0.5, &mut rng));
        let ents = Var::constant(Tensor::randn(&[10, 6], 0.5, &mut rng));
        let s1 = dec.forward(&e, &r1, &ents, false, &mut rng);
        let s2 = dec.forward(&e, &r2, &ents, false, &mut rng);
        assert_ne!(s1.value().data(), s2.value().data());
    }

    #[test]
    fn trains_to_rank_a_target() {
        // The decoder alone should be able to learn to score a fixed target
        // entity first for a fixed (e, r).
        let mut rng = Rng::seed(93);
        let dec = ConvTransE::new(6, 4, 0.0, &mut rng);
        let mut params = ParamSet::new();
        dec.register(&mut params, "dec");
        let e_emb = params.new_param("e", Tensor::randn(&[1, 6], 0.5, &mut rng));
        let r_emb = params.new_param("r", Tensor::randn(&[1, 6], 0.5, &mut rng));
        let ents = params.new_param("ents", Tensor::randn(&[8, 6], 0.5, &mut rng));
        let mut opt = logcl_tensor::optim::Adam::new(&params, 0.02);
        for _ in 0..120 {
            let logits = dec.forward(&e_emb, &r_emb, &ents, true, &mut rng);
            let loss = logits.cross_entropy(&[5]);
            loss.backward();
            opt.step();
        }
        let logits = dec.forward(&e_emb, &r_emb, &ents, false, &mut rng);
        let scores = logits.to_tensor();
        let best = scores
            .row(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "decoder failed to fit target: {:?}", scores.row(0));
    }

    #[test]
    fn dropout_only_in_training() {
        let mut rng = Rng::seed(94);
        let dec = ConvTransE::new(6, 4, 0.5, &mut rng);
        let e = Var::constant(Tensor::randn(&[2, 6], 0.5, &mut rng));
        let r = Var::constant(Tensor::randn(&[2, 6], 0.5, &mut rng));
        let a = dec.decode(&e, &r, false, &mut Rng::seed(1));
        let b = dec.decode(&e, &r, false, &mut Rng::seed(2));
        assert_eq!(
            a.value().data(),
            b.value().data(),
            "eval must be deterministic"
        );
        let c = dec.decode(&e, &r, true, &mut Rng::seed(1));
        assert_ne!(
            a.value().data(),
            c.value().data(),
            "training applies dropout"
        );
    }
}
