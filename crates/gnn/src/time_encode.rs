//! The periodic time encoding of Eq. 2–3:
//!
//! ```text
//! φ(d)  = cos(d · w_t + b_t)                  (Eq. 2)
//! ĥ_t   = W₀ [ h_t ‖ φ(d) ]                   (Eq. 3)
//! ```
//!
//! `d = t_q − t_i` is the (scalar) interval between the query time and the
//! snapshot being aggregated; `w_t, b_t ∈ R^k` are a learnable frequency and
//! phase bank, so cyclically recurring facts (period-p meetings) land on the
//! same phase.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

/// The learnable periodic time encoder.
pub struct TimeEncoder {
    /// Frequency bank `w_t` (`[k]`).
    pub w_t: Var,
    /// Phase bank `b_t` (`[k]`).
    pub b_t: Var,
    /// Fusion transform `W₀` (`[d + k, d]`).
    pub w0: Var,
    k: usize,
}

impl TimeEncoder {
    /// An encoder producing `dim`-wide dynamic embeddings with a `k`-wide
    /// frequency bank.
    pub fn new(dim: usize, k: usize, rng: &mut Rng) -> Self {
        // Frequencies spread over scales so different periods are separable
        // at initialisation (geometric ladder, as in positional encodings).
        let freqs: Vec<f32> = (0..k)
            .map(|i| 1.0 / (1.6f32.powi(i as i32)).max(1e-4))
            .collect();
        // W₀ starts as [I; ε·noise]: the fusion is the identity on the
        // entity embedding plus a faint time signal, so stacking this
        // transform every snapshot does not scramble optimisation early on
        // (it learns to use φ(d) as training progresses).
        let mut w0 = Tensor::zeros(&[dim + k, dim]);
        for i in 0..dim {
            w0.set2(i, i, 1.0);
        }
        let noise = xavier_uniform(k, dim, rng);
        for i in 0..k {
            for j in 0..dim {
                w0.set2(dim + i, j, 0.1 * noise.at2(i, j));
            }
        }
        Self {
            w_t: Var::param(Tensor::from_vec(freqs, &[k])),
            b_t: Var::param(Tensor::zeros(&[k])),
            w0: Var::param(w0),
            k,
        }
    }

    /// Width of the frequency bank.
    pub fn bank_width(&self) -> usize {
        self.k
    }

    /// `φ(d)` as a `[1, k]` row.
    pub fn phi(&self, d: f32) -> Var {
        self.w_t.scale(d).add(&self.b_t).cos().reshape(&[1, self.k])
    }

    /// Eq. 3: fuses entity embeddings `h` (`[E, D]`) with the interval
    /// encoding `φ(d)` broadcast to every entity, returning `[E, D]`.
    pub fn forward(&self, h: &Var, d: f32) -> Var {
        let e = h.shape()[0];
        let phi = self.phi(d);
        // Broadcast φ(d) over rows via ones ⊗ φ.
        let ones = Var::constant(Tensor::ones(&[e, 1]));
        let phi_rows = ones.matmul(&phi);
        h.concat_cols(&phi_rows).matmul(&self.w0)
    }

    /// Registers the three parameters.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w_t"), self.w_t.clone());
        params.register(format!("{prefix}.b_t"), self.b_t.clone());
        params.register(format!("{prefix}.w0"), self.w0.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_is_bounded_and_periodic_like() {
        let mut rng = Rng::seed(61);
        let enc = TimeEncoder::new(8, 4, &mut rng);
        for d in [0.0, 1.0, 5.0, 50.0] {
            let p = enc.phi(d);
            assert_eq!(p.shape(), vec![1, 4]);
            assert!(p.value().data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        }
        // φ(0) with zero phase = cos(0) = 1 everywhere.
        assert!(enc
            .phi(0.0)
            .value()
            .data()
            .iter()
            .all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn forward_shape_and_interval_sensitivity() {
        let mut rng = Rng::seed(62);
        let enc = TimeEncoder::new(6, 4, &mut rng);
        let h = Var::constant(Tensor::randn(&[5, 6], 0.5, &mut rng));
        let a = enc.forward(&h, 1.0);
        let b = enc.forward(&h, 2.0);
        assert_eq!(a.shape(), vec![5, 6]);
        assert_ne!(a.value().data(), b.value().data(), "interval must matter");
    }

    #[test]
    fn gradients_reach_frequency_bank() {
        let mut rng = Rng::seed(63);
        let enc = TimeEncoder::new(4, 3, &mut rng);
        let h = Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng));
        enc.forward(&h, 3.0).sum().backward();
        assert!(enc.w_t.grad().is_some());
        assert!(enc.b_t.grad().is_some());
        assert!(enc.w0.grad().is_some());
    }
}
