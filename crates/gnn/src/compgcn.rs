//! CompGCN-style layer (Vashishth et al., 2020) with `sub` and `mult`
//! entity–relation composition — the Table V alternatives.
//!
//! Messages are `W₁ φ(h_s, r)` where `φ` is `h_s − r` (sub) or `h_s ⊙ r`
//! (mult); aggregation, normalisation and self-loop mirror the R-GCN layer
//! so the comparison isolates the composition function, as in the paper.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

use crate::aggregator::{Aggregator, EdgeBatch};

/// The entity–relation composition function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// `φ(h, r) = h − r`.
    Sub,
    /// `φ(h, r) = h ⊙ r`.
    Mult,
}

/// One CompGCN layer.
pub struct CompGcnLayer {
    /// Message transform.
    pub w1: Var,
    /// Self-loop transform.
    pub w2: Var,
    /// Relation transform (CompGCN also projects relations per layer).
    pub w_rel: Var,
    comp: Composition,
}

impl CompGcnLayer {
    /// Xavier-initialised layer of width `dim`.
    pub fn new(dim: usize, comp: Composition, rng: &mut Rng) -> Self {
        Self {
            w1: Var::param(xavier_uniform(dim, dim, rng)),
            w2: Var::param(xavier_uniform(dim, dim, rng)),
            w_rel: Var::param(xavier_uniform(dim, dim, rng)),
            comp,
        }
    }

    /// The composition used by this layer.
    pub fn composition(&self) -> Composition {
        self.comp
    }
}

impl Aggregator for CompGcnLayer {
    fn forward(&self, h: &Var, rel: &Var, edges: &EdgeBatch<'_>) -> Var {
        let self_loop = h.matmul(&self.w2);
        if edges.is_empty() {
            return self_loop.rrelu();
        }
        let h_s = h.gather_rows(edges.subjects);
        let r_e = rel.matmul(&self.w_rel).gather_rows(edges.relations);
        let composed = match self.comp {
            Composition::Sub => h_s.sub(&r_e),
            Composition::Mult => h_s.mul(&r_e),
        };
        let msg = composed.matmul(&self.w1);
        let inv_deg = edges.inv_in_degree_per_edge();
        let norm = Var::constant(Tensor::from_vec(inv_deg, &[edges.len(), 1]));
        let agg = msg
            .mul(&norm)
            .scatter_add_rows(edges.objects, edges.num_entities);
        agg.add(&self_loop).rrelu()
    }

    fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w1"), self.w1.clone());
        params.register(format!("{prefix}.w2"), self.w2.clone());
        params.register(format!("{prefix}.w_rel"), self.w_rel.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(comp: Composition) -> Var {
        let mut rng = Rng::seed(31);
        let layer = CompGcnLayer::new(4, comp, &mut rng);
        let h = Var::param(Tensor::randn(&[4, 4], 0.5, &mut rng));
        let rel = Var::param(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let (s, r, o) = (vec![0, 1, 3], vec![0, 1, 0], vec![2, 2, 1]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 4,
        };
        layer.forward(&h, &rel, &edges)
    }

    #[test]
    fn sub_and_mult_differ() {
        let a = run(Composition::Sub);
        let b = run(Composition::Mult);
        assert_eq!(a.shape(), vec![4, 4]);
        assert_ne!(a.value().data(), b.value().data());
    }

    #[test]
    fn gradients_flow() {
        let mut rng = Rng::seed(32);
        let layer = CompGcnLayer::new(4, Composition::Mult, &mut rng);
        let h = Var::param(Tensor::randn(&[4, 4], 0.5, &mut rng));
        let rel = Var::param(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let (s, r, o) = (vec![0, 1], vec![0, 1], vec![2, 3]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 4,
        };
        layer.forward(&h, &rel, &edges).sum().backward();
        assert!(
            layer.w_rel.grad().is_some(),
            "relation projection must be trained"
        );
        assert!(rel.grad().is_some());
    }

    #[test]
    fn composition_accessor() {
        let mut rng = Rng::seed(33);
        let layer = CompGcnLayer::new(2, Composition::Sub, &mut rng);
        assert_eq!(layer.composition(), Composition::Sub);
    }
}
