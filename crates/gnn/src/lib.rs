//! # logcl-gnn
//!
//! The neural building blocks of LogCL and its baselines, built on
//! [`logcl_tensor`]:
//!
//! * [`rgcn::RgcnLayer`] — the entity-aggregating R-GCN of Eq. 4.
//! * [`compgcn::CompGcnLayer`] — CompGCN with `sub`/`mult` composition
//!   (Table V alternatives).
//! * [`kbgat::KbgatLayer`] — a KBGAT-style edge-attention aggregator
//!   (Table V alternative).
//! * [`aggregator::{Aggregator, AggregatorKind, RelGnn}`] — the common
//!   interface the encoders program against, so the GNN can be swapped.
//! * [`gru::GruCell`] — the entity-evolution GRU of Eq. 5.
//! * [`time_gate::RelationEvolution`] — relation mean-pooling + time gate
//!   (Eq. 6–8).
//! * [`time_encode::TimeEncoder`] — the periodic time encoding of Eq. 2–3.
//! * [`attention::{LocalEntityAttention, GlobalEntityAttention}`] — the
//!   entity-aware attention mechanisms (Eq. 9–11 and 13–14).
//! * [`conv_transe::ConvTransE`] — the decoder of Eq. 18.

pub mod aggregator;
pub mod attention;
pub mod compgcn;
pub mod conv_transe;
pub mod gru;
pub mod kbgat;
pub mod rgcn;
pub mod time_encode;
pub mod time_gate;

pub use aggregator::{Aggregator, AggregatorKind, RelGnn};
pub use attention::{GlobalEntityAttention, LocalEntityAttention};
pub use conv_transe::ConvTransE;
pub use gru::GruCell;
pub use rgcn::RgcnLayer;
pub use time_encode::TimeEncoder;
pub use time_gate::RelationEvolution;
