//! The swappable relational-GNN interface used by both LogCL encoders.
//!
//! Table V of the paper replaces the R-GCN inside the local and global
//! encoders with CompGCN (sub / mult composition) and KBGAT. This module
//! provides the common trait plus a small enum-dispatched stack of layers so
//! the encoders stay agnostic of the aggregator choice.

use logcl_tensor::nn::ParamSet;
use logcl_tensor::{Rng, Var};

use crate::compgcn::{CompGcnLayer, Composition};
use crate::kbgat::KbgatLayer;
use crate::rgcn::RgcnLayer;

/// The edge list a relational GNN consumes: parallel `(subject, relation,
/// object)` index vectors plus the per-object in-degree normaliser.
pub struct EdgeBatch<'a> {
    /// Subject index per edge.
    pub subjects: &'a [usize],
    /// Relation index per edge.
    pub relations: &'a [usize],
    /// Object index per edge.
    pub objects: &'a [usize],
    /// Number of entities in the embedding matrix.
    pub num_entities: usize,
}

impl EdgeBatch<'_> {
    /// Number of edges.
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// True when there are no edges (aggregation degenerates to self-loops).
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    /// `1 / in_degree(o)` per edge (the `1/c_o` factor of Eq. 4).
    pub fn inv_in_degree_per_edge(&self) -> Vec<f32> {
        let mut deg = vec![0u32; self.num_entities];
        for &o in self.objects {
            deg[o] += 1;
        }
        self.objects
            .iter()
            .map(|&o| 1.0 / deg[o].max(1) as f32)
            .collect()
    }
}

/// One message-passing layer over a multi-relational edge batch.
pub trait Aggregator {
    /// Produces updated entity embeddings from current entity embeddings
    /// `h` (`[E, D]`) and relation embeddings `rel` (`[R, D]`).
    fn forward(&self, h: &Var, rel: &Var, edges: &EdgeBatch<'_>) -> Var;

    /// Registers the layer's parameters.
    fn register(&self, params: &mut ParamSet, prefix: &str);
}

/// Which relational GNN fills the encoders (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregatorKind {
    /// The paper's default (Eq. 4).
    Rgcn,
    /// CompGCN with subtraction composition.
    CompGcnSub,
    /// CompGCN with multiplication composition.
    CompGcnMult,
    /// KBGAT-style edge attention.
    Kbgat,
}

impl AggregatorKind {
    /// All Table V variants, paper row order.
    pub const ALL: [AggregatorKind; 4] =
        [Self::Rgcn, Self::CompGcnSub, Self::CompGcnMult, Self::Kbgat];

    /// Display name matching the paper's rows.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Rgcn => "RGCN",
            Self::CompGcnSub => "CompGCN-sub",
            Self::CompGcnMult => "CompGCN-mult",
            Self::Kbgat => "KBAT",
        }
    }

    fn build_layer(&self, dim: usize, rng: &mut Rng) -> Box<dyn Aggregator> {
        match self {
            Self::Rgcn => Box::new(RgcnLayer::new(dim, rng)),
            Self::CompGcnSub => Box::new(CompGcnLayer::new(dim, Composition::Sub, rng)),
            Self::CompGcnMult => Box::new(CompGcnLayer::new(dim, Composition::Mult, rng)),
            Self::Kbgat => Box::new(KbgatLayer::new(dim, rng)),
        }
    }
}

/// A stack of `layers` aggregator layers of one kind — the "ω-layer R-GCN"
/// of the paper's encoders (2 by default, swept in Fig. 6).
pub struct RelGnn {
    layers: Vec<Box<dyn Aggregator>>,
    kind: AggregatorKind,
}

impl RelGnn {
    /// Builds a `num_layers`-deep stack.
    pub fn new(kind: AggregatorKind, dim: usize, num_layers: usize, rng: &mut Rng) -> Self {
        assert!(num_layers >= 1, "need at least one layer");
        let layers = (0..num_layers)
            .map(|_| kind.build_layer(dim, rng))
            .collect();
        Self { layers, kind }
    }

    /// The configured aggregator kind.
    pub fn kind(&self) -> AggregatorKind {
        self.kind
    }

    /// Number of stacked layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs every layer in sequence.
    pub fn forward(&self, h: &Var, rel: &Var, edges: &EdgeBatch<'_>) -> Var {
        let mut cur = h.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur, rel, edges);
        }
        cur
    }

    /// Registers all layers' parameters.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        for (i, layer) in self.layers.iter().enumerate() {
            layer.register(params, &format!("{prefix}.layer{i}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;

    fn toy_edges() -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        (vec![0, 1, 2], vec![0, 1, 0], vec![1, 2, 1])
    }

    #[test]
    fn inv_in_degree_matches_counts() {
        let (s, r, o) = toy_edges();
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 4,
        };
        assert_eq!(edges.inv_in_degree_per_edge(), vec![0.5, 1.0, 0.5]);
    }

    #[test]
    fn every_kind_builds_and_runs() {
        let mut rng = Rng::seed(3);
        let (s, r, o) = toy_edges();
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 4,
        };
        let h = Var::param(Tensor::randn(&[4, 8], 0.5, &mut rng));
        let rel = Var::param(Tensor::randn(&[2, 8], 0.5, &mut rng));
        for kind in AggregatorKind::ALL {
            let gnn = RelGnn::new(kind, 8, 2, &mut rng);
            assert_eq!(gnn.depth(), 2);
            let out = gnn.forward(&h, &rel, &edges);
            assert_eq!(out.shape(), vec![4, 8]);
            assert!(
                out.value().all_finite(),
                "{kind:?} produced non-finite output"
            );
            // Gradients flow back to both inputs.
            out.sum().backward();
            assert!(h.grad().is_some(), "{kind:?}: no entity gradient");
            assert!(rel.grad().is_some(), "{kind:?}: no relation gradient");
            h.zero_grad();
            rel.zero_grad();
        }
    }

    #[test]
    fn registration_counts_params() {
        let mut rng = Rng::seed(4);
        for (kind, min_params) in [
            (AggregatorKind::Rgcn, 2),
            (AggregatorKind::CompGcnSub, 2),
            (AggregatorKind::Kbgat, 3),
        ] {
            let gnn = RelGnn::new(kind, 4, 1, &mut rng);
            let mut params = ParamSet::new();
            gnn.register(&mut params, "g");
            assert!(
                params.len() >= min_params,
                "{kind:?} registered {}",
                params.len()
            );
        }
    }
}
