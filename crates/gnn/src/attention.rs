//! The entity-aware attention mechanisms — the paper's first contribution.
//!
//! **Local** (Eq. 9–11): for a query `(e_q, r_q, ?, t_q)`, a query vector is
//! formed from the pooled embeddings of the query's relations and the
//! subject's evolved state (Eq. 9); each of the `m−1` past snapshots is
//! scored by how much the subject's *aggregated* state there matches the
//! query (Eq. 10, softmax over snapshots); the final local representation
//! adds the attention-weighted past states to the current one (Eq. 11).
//! This is what lets LogCL skip snapshots irrelevant to the query (Fig. 1).
//!
//! **Global** (Eq. 13–14): a gate `β = σ(W₆(h_g^{Agg} + h))` modulates the
//! query-subgraph representation. The paper calls σ₂ "softmax" here, but a
//! softmax over a single logit is identically 1, so we read it as the
//! sigmoid gate (elementwise, the more expressive variant) — noted in
//! DESIGN.md.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

/// Mean relation embedding per query, pooled over every query in the batch
/// that shares the same subject (the `f_ave(r_{t_q})` of Eq. 9).
pub fn mean_relation_per_query(rel_emb: &Var, subjects: &[usize], rels: &[usize]) -> Var {
    assert_eq!(subjects.len(), rels.len());
    let b = subjects.len();
    // Group queries by subject.
    let mut group_of = vec![0usize; b];
    let mut groups: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for (i, &s) in subjects.iter().enumerate() {
        let next = groups.len();
        let g = *groups.entry(s).or_insert(next);
        group_of[i] = g;
    }
    let num_groups = groups.len();
    let mut counts = vec![0u32; num_groups];
    for &g in &group_of {
        counts[g] += 1;
    }
    let inv: Vec<f32> = group_of.iter().map(|&g| 1.0 / counts[g] as f32).collect();
    let weights = Var::constant(Tensor::from_vec(inv, &[b, 1]));
    let r_rows = rel_emb.gather_rows(rels);
    let pooled = r_rows.mul(&weights).scatter_add_rows(&group_of, num_groups);
    pooled.gather_rows(&group_of)
}

/// Local entity-aware attention (Eq. 9–11).
///
/// The paper's σ₂ in Eq. 10 is ambiguous (the same symbol denotes sigmoid
/// in Eq. 8 and "softmax" in the Eq. 10 prose, where a softmax would force
/// a full unit of past-state mass onto *every* query, relevant history or
/// not). We read it as a per-snapshot sigmoid gate, which can switch off
/// snapshots irrelevant to the query — the stated purpose of the mechanism
/// (Fig. 1). The gate bias starts negative so attention begins nearly
/// closed and opens where history helps. See DESIGN.md.
pub struct LocalEntityAttention {
    /// Query fusion `W₄` (`[2D, D]`).
    pub w4: Var,
    /// Snapshot scoring `W₅` (`[D, 1]`).
    pub w5: Var,
    /// Gate bias (scalar, initialised negative).
    pub b5: Var,
}

impl LocalEntityAttention {
    /// Xavier-initialised module of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self {
            w4: Var::param(xavier_uniform(2 * dim, dim, rng)),
            w5: Var::param(xavier_uniform(dim, 1, rng)),
            b5: Var::param(Tensor::from_vec(vec![-2.0], &[1])),
        }
    }

    /// Applies the attention.
    ///
    /// * `h_now` — subject rows of the evolved entity matrix at `t_q`
    ///   (`[B, D]`).
    /// * `r_mean` — per-query pooled relation embeddings (`[B, D]`, Eq. 9).
    /// * `agg_steps` — subject rows of each past snapshot's *aggregated*
    ///   (post-GCN) matrix, oldest first (`m−1` entries of `[B, D]`).
    /// * `evolved_steps` — subject rows of each past snapshot's *evolved*
    ///   (post-GRU) matrix, aligned with `agg_steps`.
    ///
    /// Returns the final local representation `[B, D]` (Eq. 11).
    pub fn forward(
        &self,
        h_now: &Var,
        r_mean: &Var,
        agg_steps: &[Var],
        evolved_steps: &[Var],
    ) -> Var {
        assert_eq!(
            agg_steps.len(),
            evolved_steps.len(),
            "step lists must align"
        );
        if agg_steps.is_empty() {
            return h_now.clone();
        }
        let h_q = r_mean.concat_cols(h_now).matmul(&self.w4); // Eq. 9

        // Eq. 10 (sigmoid-gate reading), batched: stack the m−1 snapshots
        // into [(m−1)·B, D] so every gate comes out of ONE matmul instead of
        // one per snapshot. Gates are row-local, so batching is exact.
        let b = h_q.shape()[0];
        let steps = agg_steps.len();
        let tile_idx: Vec<usize> = (0..steps * b).map(|k| k % b).collect();
        let agg_all = Var::concat_rows(agg_steps); // [(m−1)B, D]
        let ev_all = Var::concat_rows(evolved_steps); // [(m−1)B, D]
        let h_q_tiled = h_q.gather_rows(&tile_idx);
        let alpha = agg_all
            .add(&h_q_tiled)
            .matmul(&self.w5)
            .add(&self.b5)
            .sigmoid(); // [(m−1)B, 1]

        // Eq. 11: h_now + Σ_i α_i · evolved_i, as one segmented scatter-add
        // back onto the B query rows (per-row accumulation in step order).
        let weighted = ev_all.mul(&alpha);
        h_now.add(&weighted.scatter_add_rows(&tile_idx, b))
    }

    /// Registers `W₄`, `W₅` and the gate bias.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w4"), self.w4.clone());
        params.register(format!("{prefix}.w5"), self.w5.clone());
        params.register(format!("{prefix}.b5"), self.b5.clone());
    }
}

/// Global entity-aware attention gate (Eq. 13–14).
pub struct GlobalEntityAttention {
    /// Gate transform `W₆` (`[D, D]`).
    pub w6: Var,
}

impl GlobalEntityAttention {
    /// Xavier-initialised gate of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self {
            w6: Var::param(xavier_uniform(dim, dim, rng)),
        }
    }

    /// `β = σ(W₆(h_g^{Agg} + h))`, returns `β ⊙ h_g^{Agg}`.
    pub fn forward(&self, h_g_agg: &Var, h_static: &Var) -> Var {
        let beta = h_g_agg.add(h_static).matmul(&self.w6).sigmoid(); // Eq. 13
        beta.mul(h_g_agg) // Eq. 14
    }

    /// Registers `W₆`.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w6"), self.w6.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relation_pools_shared_subjects() {
        let rel = Var::constant(Tensor::from_vec(
            vec![1.0, 0.0, 3.0, 0.0, 10.0, 10.0],
            &[3, 2],
        ));
        // Queries: (s=5, r=0), (s=5, r=1), (s=7, r=2).
        let out = mean_relation_per_query(&rel, &[5, 5, 7], &[0, 1, 2]);
        assert_eq!(out.shape(), vec![3, 2]);
        // Subject 5 pools relations 0 and 1: mean = [2, 0].
        assert_eq!(out.value().row(0), &[2.0, 0.0]);
        assert_eq!(out.value().row(1), &[2.0, 0.0]);
        assert_eq!(out.value().row(2), &[10.0, 10.0]);
    }

    #[test]
    fn local_attention_no_history_is_identity() {
        let mut rng = Rng::seed(81);
        let att = LocalEntityAttention::new(4, &mut rng);
        let h = Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let r = Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let out = att.forward(&h, &r, &[], &[]);
        assert_eq!(out.value().data(), h.value().data());
    }

    #[test]
    fn local_attention_mixes_history() {
        let mut rng = Rng::seed(82);
        let att = LocalEntityAttention::new(4, &mut rng);
        let h = Var::constant(Tensor::randn(&[3, 4], 0.5, &mut rng));
        let r = Var::constant(Tensor::randn(&[3, 4], 0.5, &mut rng));
        let steps: Vec<Var> = (0..2)
            .map(|i| Var::constant(Tensor::randn(&[3, 4], 0.5, &mut Rng::seed(90 + i))))
            .collect();
        let out = att.forward(&h, &r, &steps, &steps);
        assert_eq!(out.shape(), vec![3, 4]);
        assert_ne!(out.value().data(), h.value().data());
        // The attention weights are convex, so the added component's norm is
        // bounded by the largest step norm.
        assert!(out.value().all_finite());
    }

    #[test]
    fn local_attention_grads_reach_weights() {
        let mut rng = Rng::seed(83);
        let att = LocalEntityAttention::new(4, &mut rng);
        let h = Var::param(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let r = Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng));
        let agg = vec![
            Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng)),
            Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng)),
        ];
        let ev = vec![
            Var::param(Tensor::randn(&[2, 4], 0.5, &mut rng)),
            Var::param(Tensor::randn(&[2, 4], 0.5, &mut rng)),
        ];
        att.forward(&h, &r, &agg, &ev).sum().backward();
        assert!(att.w4.grad().is_some());
        assert!(att.w5.grad().is_some());
        assert!(ev[0].grad().is_some());
        assert!(h.grad().is_some());
    }

    #[test]
    fn global_gate_shrinks_representation() {
        let mut rng = Rng::seed(84);
        let att = GlobalEntityAttention::new(4, &mut rng);
        let hg = Var::constant(Tensor::randn(&[3, 4], 1.0, &mut rng));
        let hs = Var::constant(Tensor::randn(&[3, 4], 1.0, &mut rng));
        let out = att.forward(&hg, &hs);
        assert_eq!(out.shape(), vec![3, 4]);
        // β ∈ (0,1) elementwise, so |out| < |h_g| coordinatewise.
        for (o, g) in out.value().data().iter().zip(hg.value().data()) {
            assert!(o.abs() <= g.abs() + 1e-6);
        }
    }

    #[test]
    fn global_gate_trains() {
        let mut rng = Rng::seed(85);
        let att = GlobalEntityAttention::new(3, &mut rng);
        let hg = Var::param(Tensor::randn(&[2, 3], 0.5, &mut rng));
        let hs = Var::param(Tensor::randn(&[2, 3], 0.5, &mut rng));
        att.forward(&hg, &hs).sum().backward();
        assert!(att.w6.grad().is_some());
        assert!(hs.grad().is_some(), "static embedding shapes the gate");
    }
}
