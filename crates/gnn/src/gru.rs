//! The entity-evolution GRU of Eq. 5: `H_{t+1} = GRU(H_t, H_t^{Agg})`.
//!
//! The cell operates on whole entity matrices (`[E, D]`), treating each
//! entity's embedding as one sequence element — the same batched-matrix GRU
//! RE-GCN uses.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

/// A gated recurrent unit over `[N, D]` states.
pub struct GruCell {
    w_z: Var,
    u_z: Var,
    b_z: Var,
    w_r: Var,
    u_r: Var,
    b_r: Var,
    w_h: Var,
    u_h: Var,
    b_h: Var,
}

impl GruCell {
    /// Xavier-initialised cell of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        let mut w = || Var::param(xavier_uniform(dim, dim, rng));
        let (w_z, u_z, w_r, u_r, w_h, u_h) = (w(), w(), w(), w(), w(), w());
        Self {
            w_z,
            u_z,
            b_z: Var::param(Tensor::zeros(&[dim])),
            w_r,
            u_r,
            b_r: Var::param(Tensor::zeros(&[dim])),
            w_h,
            u_h,
            b_h: Var::param(Tensor::zeros(&[dim])),
        }
    }

    /// One step: `hidden` is `H_t`, `input` is `H_t^{Agg}`; returns
    /// `H_{t+1}`.
    pub fn forward(&self, hidden: &Var, input: &Var) -> Var {
        assert_eq!(
            hidden.shape(),
            input.shape(),
            "GRU state/input shape mismatch"
        );
        let z = input
            .matmul(&self.w_z)
            .add(&hidden.matmul(&self.u_z))
            .add(&self.b_z)
            .sigmoid();
        let r = input
            .matmul(&self.w_r)
            .add(&hidden.matmul(&self.u_r))
            .add(&self.b_r)
            .sigmoid();
        let h_tilde = input
            .matmul(&self.w_h)
            .add(&r.mul(hidden).matmul(&self.u_h))
            .add(&self.b_h)
            .tanh();
        // H' = (1 - z) ⊙ H + z ⊙ h̃
        let one_minus_z = z.neg().add_scalar(1.0);
        one_minus_z.mul(hidden).add(&z.mul(&h_tilde))
    }

    /// Registers all nine parameter tensors.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        for (name, var) in [
            ("w_z", &self.w_z),
            ("u_z", &self.u_z),
            ("b_z", &self.b_z),
            ("w_r", &self.w_r),
            ("u_r", &self.u_r),
            ("b_r", &self.b_r),
            ("w_h", &self.w_h),
            ("u_h", &self.u_h),
            ("b_h", &self.b_h),
        ] {
            params.register(format!("{prefix}.{name}"), var.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_and_bounds() {
        let mut rng = Rng::seed(51);
        let cell = GruCell::new(8, &mut rng);
        let h = Var::constant(Tensor::randn(&[10, 8], 0.5, &mut rng));
        let x = Var::constant(Tensor::randn(&[10, 8], 0.5, &mut rng));
        let out = cell.forward(&h, &x);
        assert_eq!(out.shape(), vec![10, 8]);
        assert!(out.value().all_finite());
    }

    #[test]
    fn output_interpolates_between_state_and_candidate() {
        // With z in (0,1), each output coordinate lies between the previous
        // hidden value and the tanh candidate, so |out| < max(|h|, 1).
        let mut rng = Rng::seed(52);
        let cell = GruCell::new(4, &mut rng);
        let h = Var::constant(Tensor::rand_uniform(&[6, 4], -0.9, 0.9, &mut rng));
        let x = Var::constant(Tensor::randn(&[6, 4], 1.0, &mut rng));
        let out = cell.forward(&h, &x);
        assert!(out.value().data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn unrolled_sequence_backprops_through_time() {
        let mut rng = Rng::seed(53);
        let cell = GruCell::new(4, &mut rng);
        let h0 = Var::param(Tensor::randn(&[3, 4], 0.5, &mut rng));
        let mut h = h0.clone();
        for step in 0..5 {
            let x = Var::constant(Tensor::randn(&[3, 4], 0.5, &mut Rng::seed(step)));
            h = cell.forward(&h, &x);
        }
        h.sum().backward();
        let g = h0.grad().expect("gradient through 5 steps");
        assert!(g.all_finite());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn registers_nine_params() {
        let mut rng = Rng::seed(54);
        let cell = GruCell::new(3, &mut rng);
        let mut params = ParamSet::new();
        cell.register(&mut params, "gru");
        assert_eq!(params.len(), 9);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let mut rng = Rng::seed(55);
        let cell = GruCell::new(3, &mut rng);
        let h = Var::constant(Tensor::zeros(&[2, 3]));
        let x = Var::constant(Tensor::zeros(&[3, 3]));
        cell.forward(&h, &x);
    }
}
