//! A KBGAT-style attention aggregator (Nathani et al., 2019) — the Table V
//! "KBAT" alternative.
//!
//! Per edge `(s, r, o)` an attention logit is computed from the concatenated
//! projected triple; logits are softmax-normalised **per object** (a scatter
//! softmax) and weight the messages `W(h_s + r)`.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Var};

use crate::aggregator::{Aggregator, EdgeBatch};

/// One KBGAT-style attention layer.
pub struct KbgatLayer {
    /// Message / projection transform `W`.
    pub w: Var,
    /// Self-loop transform.
    pub w_self: Var,
    /// Attention vector over `[Wh_s ‖ Wr ‖ Wh_o]` (`[3D, 1]`).
    pub a: Var,
    /// LeakyReLU slope for attention logits.
    pub slope: f32,
}

impl KbgatLayer {
    /// Xavier-initialised layer of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self {
            w: Var::param(xavier_uniform(dim, dim, rng)),
            w_self: Var::param(xavier_uniform(dim, dim, rng)),
            a: Var::param(xavier_uniform(3 * dim, 1, rng)),
            slope: 0.2,
        }
    }

    /// Softmax over edges grouped by object: `exp(logit) / Σ_{edges into o}
    /// exp(logit)`, computed with gather/scatter so it differentiates.
    fn scatter_softmax(&self, logits: &Var, edges: &EdgeBatch<'_>) -> Var {
        // Stabilise by the global max (cheap; per-group max not needed at
        // these magnitudes).
        let max = logits
            .value()
            .data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        let exp = logits.add_scalar(-max).exp();
        let denom_per_obj = exp.scatter_add_rows(edges.objects, edges.num_entities);
        let denom_per_edge = denom_per_obj.gather_rows(edges.objects).add_scalar(1e-12);
        exp.div(&denom_per_edge)
    }
}

impl Aggregator for KbgatLayer {
    fn forward(&self, h: &Var, rel: &Var, edges: &EdgeBatch<'_>) -> Var {
        let self_loop = h.matmul(&self.w_self);
        if edges.is_empty() {
            return self_loop.rrelu();
        }
        let hw = h.matmul(&self.w);
        let rw = rel.matmul(&self.w);
        let h_s = hw.gather_rows(edges.subjects);
        let r_e = rw.gather_rows(edges.relations);
        let h_o = hw.gather_rows(edges.objects);
        let feat = h_s.concat_cols(&r_e).concat_cols(&h_o); // [M, 3D]
        let logits = feat.matmul(&self.a).leaky_relu(self.slope); // [M, 1]
        let alpha = self.scatter_softmax(&logits, edges); // [M, 1]
        let msg = h_s.add(&r_e).mul(&alpha);
        let agg = msg.scatter_add_rows(edges.objects, edges.num_entities);
        agg.add(&self_loop).rrelu()
    }

    fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w"), self.w.clone());
        params.register(format!("{prefix}.w_self"), self.w_self.clone());
        params.register(format!("{prefix}.a"), self.a.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;

    #[test]
    fn attention_weights_sum_to_one_per_object() {
        let mut rng = Rng::seed(41);
        let layer = KbgatLayer::new(4, &mut rng);
        let h = Var::constant(Tensor::randn(&[5, 4], 0.5, &mut rng));
        let rel = Var::constant(Tensor::randn(&[2, 4], 0.5, &mut rng));
        // Three edges into object 2, one into object 0.
        let (s, r, o) = (vec![0, 1, 3, 4], vec![0, 1, 0, 1], vec![2, 2, 2, 0]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 5,
        };

        let hw = h.matmul(&layer.w);
        let rw = rel.matmul(&layer.w);
        let feat = hw
            .gather_rows(&s)
            .concat_cols(&rw.gather_rows(&r))
            .concat_cols(&hw.gather_rows(&o));
        let logits = feat.matmul(&layer.a).leaky_relu(layer.slope);
        let alpha = layer.scatter_softmax(&logits, &edges);
        let av = alpha.to_tensor();
        let into_2: f32 = av.data()[0] + av.data()[1] + av.data()[2];
        assert!((into_2 - 1.0).abs() < 1e-5, "sum {into_2}");
        assert!((av.data()[3] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_shape_and_grads() {
        let mut rng = Rng::seed(42);
        let layer = KbgatLayer::new(6, &mut rng);
        let h = Var::param(Tensor::randn(&[4, 6], 0.5, &mut rng));
        let rel = Var::param(Tensor::randn(&[3, 6], 0.5, &mut rng));
        let (s, r, o) = (vec![0, 1, 2], vec![0, 1, 2], vec![3, 3, 1]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 4,
        };
        let out = layer.forward(&h, &rel, &edges);
        assert_eq!(out.shape(), vec![4, 6]);
        out.sum().backward();
        assert!(layer.a.grad().is_some(), "attention vector must train");
        assert!(h.grad().unwrap().all_finite());
    }
}
