//! The entity-aggregating R-GCN layer of Eq. 4:
//!
//! ```text
//! h_o^{l+1} = RReLU( 1/c_o · Σ_{(s,r): (s,r,o) ∈ G_t} W₁ (h_s + r)  +  W₂ h_o )
//! ```
//!
//! Messages are `W₁(h_s + r)` normalised by the object's in-degree and
//! scatter-added onto objects; every entity additionally receives a
//! self-loop term `W₂ h_o`.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

use crate::aggregator::{Aggregator, EdgeBatch};

/// One R-GCN layer (Eq. 4).
pub struct RgcnLayer {
    /// Message transform `W₁`.
    pub w1: Var,
    /// Self-loop transform `W₂`.
    pub w2: Var,
}

impl RgcnLayer {
    /// Xavier-initialised layer of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self {
            w1: Var::param(xavier_uniform(dim, dim, rng)),
            w2: Var::param(xavier_uniform(dim, dim, rng)),
        }
    }
}

impl Aggregator for RgcnLayer {
    fn forward(&self, h: &Var, rel: &Var, edges: &EdgeBatch<'_>) -> Var {
        let self_loop = h.matmul(&self.w2);
        if edges.is_empty() {
            return self_loop.rrelu();
        }
        // Per-edge message W₁(h_s + r), normalised by 1/c_o.
        let h_s = h.gather_rows(edges.subjects);
        let r_e = rel.gather_rows(edges.relations);
        let msg = h_s.add(&r_e).matmul(&self.w1);
        let inv_deg = edges.inv_in_degree_per_edge();
        let norm = Var::constant(Tensor::from_vec(inv_deg, &[edges.len(), 1]));
        let msg = msg.mul(&norm);
        let agg = msg.scatter_add_rows(edges.objects, edges.num_entities);
        agg.add(&self_loop).rrelu()
    }

    fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w1"), self.w1.clone());
        params.register(format!("{prefix}.w2"), self.w2.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dim: usize) -> (RgcnLayer, Var, Var) {
        let mut rng = Rng::seed(17);
        let layer = RgcnLayer::new(dim, &mut rng);
        let h = Var::param(Tensor::randn(&[5, dim], 0.5, &mut rng));
        let rel = Var::param(Tensor::randn(&[3, dim], 0.5, &mut rng));
        (layer, h, rel)
    }

    #[test]
    fn output_shape_preserved() {
        let (layer, h, rel) = setup(6);
        let (s, r, o) = (vec![0, 1], vec![0, 2], vec![2, 2]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 5,
        };
        let out = layer.forward(&h, &rel, &edges);
        assert_eq!(out.shape(), vec![5, 6]);
    }

    #[test]
    fn isolated_entities_keep_self_loop_only() {
        let (layer, h, rel) = setup(4);
        let (s, r, o) = (vec![0], vec![0], vec![1]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 5,
        };
        let out = layer.forward(&h, &rel, &edges);
        // Entity 3 is isolated: output equals RReLU(W₂ h₃).
        let expected = h.matmul(&layer.w2).rrelu();
        let got = out.value().row(3).to_vec();
        let want = expected.value().row(3).to_vec();
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn in_degree_normalisation_averages_messages() {
        // Two subjects with identical embeddings sending the same relation
        // into one object must equal a single such message (mean, not sum).
        let mut rng = Rng::seed(23);
        let layer = RgcnLayer::new(4, &mut rng);
        let base = Tensor::randn(&[1, 4], 0.5, &mut rng);
        let mut h_data = Vec::new();
        for _ in 0..3 {
            h_data.extend_from_slice(base.data());
        }
        let h = Var::constant(Tensor::from_vec(h_data, &[3, 4]));
        let rel = Var::constant(Tensor::randn(&[1, 4], 0.5, &mut rng));

        let (s1, r1, o1) = (vec![0, 1], vec![0, 0], vec![2, 2]);
        let e1 = EdgeBatch {
            subjects: &s1,
            relations: &r1,
            objects: &o1,
            num_entities: 3,
        };
        let (s2, r2, o2) = (vec![0], vec![0], vec![2]);
        let e2 = EdgeBatch {
            subjects: &s2,
            relations: &r2,
            objects: &o2,
            num_entities: 3,
        };

        let out1 = layer.forward(&h, &rel, &e1);
        let out2 = layer.forward(&h, &rel, &e2);
        for (a, b) in out1.value().row(2).iter().zip(out2.value().row(2)) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_graph_is_pure_self_loop() {
        let (layer, h, rel) = setup(4);
        let (s, r, o): (Vec<usize>, Vec<usize>, Vec<usize>) = (vec![], vec![], vec![]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 5,
        };
        let out = layer.forward(&h, &rel, &edges);
        let expected = h.matmul(&layer.w2).rrelu();
        assert_eq!(out.value().data(), expected.value().data());
    }

    #[test]
    fn gradients_reach_weights() {
        let (layer, h, rel) = setup(4);
        let (s, r, o) = (vec![0, 1, 4], vec![0, 1, 2], vec![2, 2, 0]);
        let edges = EdgeBatch {
            subjects: &s,
            relations: &r,
            objects: &o,
            num_entities: 5,
        };
        layer.forward(&h, &rel, &edges).sum().backward();
        assert!(layer.w1.grad().is_some());
        assert!(layer.w2.grad().is_some());
        assert!(h.grad().unwrap().all_finite());
    }
}
