//! Relation evolution: mean pooling over connected entities plus a time
//! gate (Eq. 6–8):
//!
//! ```text
//! r'_t    = f_ave(H_{t,r}) + r                 (Eq. 6)
//! U_t     = σ(W₃ R'_t + b)                     (Eq. 8)
//! R_{t+1} = U_t ⊙ R'_t + (1 − U_t) ⊙ R_t       (Eq. 7)
//! ```
//!
//! where `H_{t,r}` are the embeddings of subject entities connected to `r`
//! in `G_t` and `r` is the relation's *static* embedding (`R₀`). Relations
//! absent from the snapshot pool nothing, so their `r'_t` reduces to `r`.

use logcl_tensor::nn::{xavier_uniform, ParamSet};
use logcl_tensor::{Rng, Tensor, Var};

/// The relation-evolution module.
pub struct RelationEvolution {
    /// Time-gate transform `W₃` (`[D, D]`).
    pub w3: Var,
    /// Time-gate bias `b` (`[D]`).
    pub b: Var,
}

impl RelationEvolution {
    /// Xavier-initialised module of width `dim`.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        Self {
            w3: Var::param(xavier_uniform(dim, dim, rng)),
            b: Var::param(Tensor::zeros(&[dim])),
        }
    }

    /// One evolution step.
    ///
    /// * `rel_prev` — `R_t`, the evolved relation matrix from the previous
    ///   step (`[R, D]`).
    /// * `rel_static` — `R₀`, the static relation embeddings (`[R, D]`).
    /// * `h` — current entity embeddings (`[E, D]`).
    /// * `edges` — `(subjects, relations)` of the snapshot's facts.
    pub fn forward(
        &self,
        rel_prev: &Var,
        rel_static: &Var,
        h: &Var,
        subjects: &[usize],
        relations: &[usize],
    ) -> Var {
        let num_rels = rel_prev.shape()[0];
        // f_ave(H_{t,r}): scatter-mean subject embeddings by relation.
        let pooled = if subjects.is_empty() {
            Var::constant(Tensor::zeros(&rel_prev.shape()))
        } else {
            let mut counts = vec![0u32; num_rels];
            for &r in relations {
                counts[r] += 1;
            }
            let inv: Vec<f32> = relations
                .iter()
                .map(|&r| 1.0 / counts[r].max(1) as f32)
                .collect();
            let weights = Var::constant(Tensor::from_vec(inv, &[relations.len(), 1]));
            h.gather_rows(subjects)
                .mul(&weights)
                .scatter_add_rows(relations, num_rels)
        };
        let r_prime = pooled.add(rel_static); // Eq. 6 (identity for absent relations)
        let gate = r_prime.matmul(&self.w3).add(&self.b).sigmoid(); // Eq. 8
        let keep = gate.neg().add_scalar(1.0);
        gate.mul(&r_prime).add(&keep.mul(rel_prev)) // Eq. 7
    }

    /// Registers `W₃` and `b`.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.w3"), self.w3.clone());
        params.register(format!("{prefix}.b"), self.b.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_relations_interpolate_prev_and_static() {
        let mut rng = Rng::seed(71);
        let evo = RelationEvolution::new(4, &mut rng);
        let rel_prev = Var::constant(Tensor::randn(&[3, 4], 0.5, &mut rng));
        let rel_static = Var::constant(Tensor::randn(&[3, 4], 0.5, &mut rng));
        let h = Var::constant(Tensor::randn(&[5, 4], 0.5, &mut rng));
        // Only relation 0 appears.
        let out = evo.forward(&rel_prev, &rel_static, &h, &[1, 2], &[0, 0]);
        assert_eq!(out.shape(), vec![3, 4]);
        // For absent relation 1, the output must lie between rel_prev and
        // rel_static coordinatewise (gated convex combination).
        let o = out.to_tensor();
        let p = rel_prev.to_tensor();
        let s = rel_static.to_tensor();
        for j in 0..4 {
            let (lo, hi) = if p.at2(1, j) < s.at2(1, j) {
                (p.at2(1, j), s.at2(1, j))
            } else {
                (s.at2(1, j), p.at2(1, j))
            };
            assert!(o.at2(1, j) >= lo - 1e-5 && o.at2(1, j) <= hi + 1e-5);
        }
    }

    #[test]
    fn pooling_averages_subject_embeddings() {
        let mut rng = Rng::seed(72);
        let evo = RelationEvolution::new(2, &mut rng);
        let rel_prev = Var::constant(Tensor::zeros(&[1, 2]));
        let rel_static = Var::constant(Tensor::zeros(&[1, 2]));
        let h = Var::constant(Tensor::from_vec(vec![2.0, 0.0, 4.0, 0.0], &[2, 2]));
        // Two subjects with embeddings [2,0] and [4,0] under relation 0:
        // pooled = [3, 0]; r' = pooled + 0.
        let out = evo.forward(&rel_prev, &rel_static, &h, &[0, 1], &[0, 0]);
        // out = gate * r' with rel_prev = 0; gate = σ(W₃ r' + b) ∈ (0, 1),
        // so out is a positive fraction of [3, 0] in coordinate 0.
        let v = out.to_tensor();
        assert!(v.at2(0, 0) > 0.0 && v.at2(0, 0) < 3.0);
    }

    #[test]
    fn empty_snapshot_keeps_shape_and_grads() {
        let mut rng = Rng::seed(73);
        let evo = RelationEvolution::new(3, &mut rng);
        let rel_prev = Var::param(Tensor::randn(&[2, 3], 0.5, &mut rng));
        let rel_static = Var::param(Tensor::randn(&[2, 3], 0.5, &mut rng));
        let h = Var::constant(Tensor::zeros(&[2, 3]));
        let out = evo.forward(&rel_prev, &rel_static, &h, &[], &[]);
        out.sum().backward();
        assert!(rel_prev.grad().is_some());
        assert!(rel_static.grad().is_some());
    }
}
