//! Property-based tests for the relational GNN layers: permutation
//! equivariance, locality, and determinism — the structural invariants a
//! message-passing layer must satisfy regardless of weights.

use logcl_gnn::aggregator::{AggregatorKind, EdgeBatch, RelGnn};
use logcl_tensor::{Rng, Tensor, Var};
use proptest::prelude::*;

const N: usize = 6;
const D: usize = 4;

/// Strategy: a random edge list over `N` entities and 2 relations.
fn edges() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    prop::collection::vec((0usize..N, 0usize..2, 0usize..N), 1..12)
}

fn run_gnn(
    kind: AggregatorKind,
    h: &Tensor,
    rel: &Tensor,
    edge_list: &[(usize, usize, usize)],
    seed: u64,
) -> Tensor {
    let mut rng = Rng::seed(seed);
    let gnn = RelGnn::new(kind, D, 1, &mut rng);
    let (s, r, o): (Vec<_>, Vec<_>, Vec<_>) = itertools_unzip(edge_list);
    let batch = EdgeBatch {
        subjects: &s,
        relations: &r,
        objects: &o,
        num_entities: N,
    };
    gnn.forward(
        &Var::constant(h.clone()),
        &Var::constant(rel.clone()),
        &batch,
    )
    .to_tensor()
}

fn itertools_unzip(edges: &[(usize, usize, usize)]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut s = Vec::new();
    let mut r = Vec::new();
    let mut o = Vec::new();
    for &(a, b, c) in edges {
        s.push(a);
        r.push(b);
        o.push(c);
    }
    (s, r, o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relabelling entities by a permutation π and permuting the input rows
    /// must permute the output rows identically: GNN(π·h, π·edges) = π·GNN(h, edges).
    #[test]
    fn rgcn_is_permutation_equivariant(edge_list in edges(), seed in 0u64..100, shift in 1usize..N) {
        let mut rng = Rng::seed(seed);
        let h = Tensor::randn(&[N, D], 0.5, &mut rng);
        let rel = Tensor::randn(&[2, D], 0.5, &mut rng);
        // π = cyclic shift by `shift`.
        let pi = |e: usize| (e + shift) % N;

        let out = run_gnn(AggregatorKind::Rgcn, &h, &rel, &edge_list, seed);

        // Permuted inputs.
        let mut h_pi = Tensor::zeros(&[N, D]);
        for e in 0..N {
            for j in 0..D {
                h_pi.set2(pi(e), j, h.at2(e, j));
            }
        }
        let edges_pi: Vec<_> = edge_list.iter().map(|&(s, r, o)| (pi(s), r, pi(o))).collect();
        let out_pi = run_gnn(AggregatorKind::Rgcn, &h_pi, &rel, &edges_pi, seed);

        for e in 0..N {
            for j in 0..D {
                let a = out.at2(e, j);
                let b = out_pi.at2(pi(e), j);
                prop_assert!((a - b).abs() < 1e-4, "entity {e} dim {j}: {a} vs {b}");
            }
        }
    }

    /// Duplicate edges must not change the R-GCN output (the 1/c_o mean
    /// normalisation makes repeated identical messages idempotent).
    #[test]
    fn rgcn_mean_normalisation_is_duplicate_invariant(edge_list in edges(), seed in 0u64..100) {
        let mut rng = Rng::seed(seed);
        let h = Tensor::randn(&[N, D], 0.5, &mut rng);
        let rel = Tensor::randn(&[2, D], 0.5, &mut rng);
        let out = run_gnn(AggregatorKind::Rgcn, &h, &rel, &edge_list, seed);
        let mut doubled = edge_list.clone();
        doubled.extend_from_slice(&edge_list);
        let out2 = run_gnn(AggregatorKind::Rgcn, &h, &rel, &doubled, seed);
        for (a, b) in out.data().iter().zip(out2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Entities with no incident edges must be unaffected by edges elsewhere
    /// in the graph (1-layer locality).
    #[test]
    fn isolated_entities_are_local(edge_list in edges(), seed in 0u64..100) {
        let mut rng = Rng::seed(seed);
        let h = Tensor::randn(&[N, D], 0.5, &mut rng);
        let rel = Tensor::randn(&[2, D], 0.5, &mut rng);
        let out_empty = run_gnn(AggregatorKind::Rgcn, &h, &rel, &[], seed);
        let out_full = run_gnn(AggregatorKind::Rgcn, &h, &rel, &edge_list, seed);
        for e in 0..N {
            let incident = edge_list.iter().any(|&(_, _, o)| o == e);
            if !incident {
                for j in 0..D {
                    prop_assert!(
                        (out_empty.at2(e, j) - out_full.at2(e, j)).abs() < 1e-5,
                        "isolated entity {e} changed"
                    );
                }
            }
        }
    }

    /// Every aggregator is deterministic across calls with the same seed.
    #[test]
    fn all_aggregators_deterministic(edge_list in edges(), seed in 0u64..100) {
        let mut rng = Rng::seed(seed);
        let h = Tensor::randn(&[N, D], 0.5, &mut rng);
        let rel = Tensor::randn(&[2, D], 0.5, &mut rng);
        for kind in AggregatorKind::ALL {
            let a = run_gnn(kind, &h, &rel, &edge_list, seed);
            let b = run_gnn(kind, &h, &rel, &edge_list, seed);
            prop_assert_eq!(a.data(), b.data());
        }
    }

    /// Edge *order* must never matter (message passing is a set operation).
    #[test]
    fn edge_order_invariance(edge_list in edges(), seed in 0u64..100) {
        let mut rng = Rng::seed(seed);
        let h = Tensor::randn(&[N, D], 0.5, &mut rng);
        let rel = Tensor::randn(&[2, D], 0.5, &mut rng);
        let mut reversed = edge_list.clone();
        reversed.reverse();
        for kind in [AggregatorKind::Rgcn, AggregatorKind::CompGcnSub, AggregatorKind::Kbgat] {
            let a = run_gnn(kind, &h, &rel, &edge_list, seed);
            let b = run_gnn(kind, &h, &rel, &reversed, seed);
            for (x, y) in a.data().iter().zip(b.data()) {
                prop_assert!((x - y).abs() < 1e-4, "{kind:?} order-sensitive");
            }
        }
    }
}
