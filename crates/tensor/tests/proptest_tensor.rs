//! Property-based tests for the tensor substrate: algebraic identities,
//! broadcasting laws and autograd invariants under random inputs.

use logcl_tensor::{shape, Tensor, Var};
use proptest::prelude::*;

/// Strategy: a small random tensor with the given shape.
fn tensor_with(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-5.0f32..5.0, n).prop_map(move |data| Tensor::from_vec(data, &shape))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor_with(vec![3, 4]), b in tensor_with(vec![3, 4])) {
        let (x, y) = (a.add(&b), b.add(&a));
        prop_assert_eq!(x.data(), y.data());
    }

    #[test]
    fn add_commutes_under_broadcast(a in tensor_with(vec![3, 4]), b in tensor_with(vec![4])) {
        let (x, y) = (a.add(&b), b.add(&a));
        prop_assert_eq!(x.data(), y.data());
    }

    #[test]
    fn scale_distributes_over_add(a in tensor_with(vec![3, 4]), b in tensor_with(vec![3, 4]), k in -3.0f32..3.0) {
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity_is_neutral(a in tensor_with(vec![4, 3])) {
        let i = Tensor::eye(3);
        let out = a.matmul(&i);
        prop_assert_eq!(out.data(), a.data());
    }

    #[test]
    fn transpose_involution(a in tensor_with(vec![3, 5])) {
        let round = a.transpose2().transpose2();
        prop_assert_eq!(round.data(), a.data());
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_with(vec![2, 3]), b in tensor_with(vec![3, 4])) {
        // (AB)^T == B^T A^T
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_with(vec![4, 6])) {
        let s = a.softmax_rows();
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn reduce_to_preserves_total(a in tensor_with(vec![4, 3])) {
        let total = a.sum_all();
        for target in [vec![3], vec![4, 1], vec![1]] {
            let reduced = a.reduce_to(&target);
            prop_assert!((reduced.sum_all() - total).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_shape_is_symmetric(r in 1usize..4, c in 1usize..4) {
        let a = vec![r, c];
        let b = vec![c];
        prop_assert_eq!(shape::broadcast_shape(&a, &b), shape::broadcast_shape(&b, &a));
    }

    #[test]
    fn gather_scatter_adjoint(a in tensor_with(vec![5, 3]), idx in prop::collection::vec(0usize..5, 1..8)) {
        // <gather(A), B> == <A, scatter(B)> — the adjoint identity the
        // autograd pair relies on.
        let b = Tensor::ones(&[idx.len(), 3]);
        let lhs: f32 = a.gather_rows(&idx).mul(&b).sum_all();
        let rhs: f32 = a.mul(&b.scatter_add_rows(&idx, 5)).sum_all();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn linear_backward_matches_finite_difference(
        w in tensor_with(vec![3, 2]),
        x in tensor_with(vec![2, 3]),
    ) {
        // d/dw sum(x @ w) == x^T @ ones
        let wv = Var::param(w.clone());
        let xv = Var::constant(x.clone());
        xv.matmul(&wv).sum().backward();
        let grad = wv.grad().unwrap();
        let expected = x.transpose2().matmul(&Tensor::ones(&[2, 2]));
        for (g, e) in grad.data().iter().zip(expected.data()) {
            prop_assert!((g - e).abs() < 1e-3);
        }
    }

    #[test]
    fn gradients_of_sum_are_ones(a in tensor_with(vec![3, 3])) {
        let v = Var::param(a);
        v.sum().backward();
        prop_assert!(v.grad().unwrap().data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in tensor_with(vec![1, 8])) {
        let v = Var::constant(a.clone()).sigmoid();
        let out = v.to_tensor();
        prop_assert!(out.data().iter().all(|&y| (0.0..=1.0).contains(&y)));
        // Monotone: apply to sorted input, outputs sorted.
        let mut sorted = a.data().to_vec();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let sv = Var::constant(Tensor::from_vec(sorted, &[1, 8])).sigmoid();
        let sd = sv.to_tensor();
        prop_assert!(sd.data().windows(2).all(|w| w[0] <= w[1] + 1e-6));
    }

    #[test]
    fn cross_entropy_nonnegative(logits in tensor_with(vec![3, 5]), t0 in 0usize..5, t1 in 0usize..5, t2 in 0usize..5) {
        let loss = Var::constant(logits).cross_entropy(&[t0, t1, t2]);
        prop_assert!(loss.item() >= -1e-5);
    }
}
