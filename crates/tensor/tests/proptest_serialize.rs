//! Property tests for the durable checkpoint container: any single-bit
//! corruption of a saved checkpoint must surface as a typed `Corrupt`
//! error — never a panic, never a silently wrong load.

use logcl_tensor::nn::ParamSet;
use logcl_tensor::serialize::{self, CheckpointError};
use logcl_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Builds a small random parameter set from a seed.
fn random_params(seed: u64) -> ParamSet {
    let mut rng = Rng::seed(seed);
    let mut params = ParamSet::new();
    let rows = 1 + (seed % 5) as usize;
    let cols = 1 + (seed % 7) as usize;
    params.new_param("w", Tensor::randn(&[rows, cols], 1.0, &mut rng));
    params.new_param("b", Tensor::randn(&[cols], 0.5, &mut rng));
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flip one bit anywhere in an encoded checkpoint: decoding must fail
    /// with `Corrupt`, and never panic or return a tensor set.
    #[test]
    fn single_bit_flip_is_always_detected(seed in 0u64..1_000, pos in 0usize..1_000_000, bit in 0u32..8) {
        let params = random_params(seed);
        let ckpt = serialize::snapshot(&params);
        let json = serde_json::to_string(&ckpt).unwrap();
        let mut bytes = serialize::encode_container(json.as_bytes());
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        match serialize::decode_container(&bytes) {
            Err(CheckpointError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "flip at {}:{} gave wrong error class: {}", idx, bit, other),
            Ok(_) => prop_assert!(false, "flip at {}:{} silently accepted", idx, bit),
        }
    }

    /// Same property end-to-end through the filesystem: save, corrupt the
    /// file on disk, load. The loader must return an error (corruption of
    /// the magic makes the file look like legacy JSON, which then fails to
    /// parse — still a typed `Corrupt`, still no panic).
    #[test]
    fn corrupted_checkpoint_file_never_loads(seed in 0u64..200, pos in 0usize..1_000_000, bit in 0u32..8) {
        let dir = std::env::temp_dir().join("logcl-proptest-serialize");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("ckpt-{seed}.bin"));
        let params = random_params(seed);
        serialize::save(&params, &path).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let victim = random_params(seed + 1);
        let before: Vec<Tensor> = victim.vars().iter().map(|v| v.to_tensor()).collect();
        match serialize::load(&victim, &path) {
            Err(CheckpointError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "flip at {}:{} gave wrong error class: {}", idx, bit, other),
            Ok(()) => prop_assert!(false, "flip at {}:{} silently loaded", idx, bit),
        }
        // A rejected load must leave the destination untouched.
        for (var, t) in victim.vars().iter().zip(&before) {
            prop_assert_eq!(&var.to_tensor(), t);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncation at any byte boundary is detected as well.
    #[test]
    fn truncation_is_always_detected(seed in 0u64..500, cut_frac in 0.0f64..1.0) {
        let params = random_params(seed);
        let json = serde_json::to_string(&serialize::snapshot(&params)).unwrap();
        let bytes = serialize::encode_container(json.as_bytes());
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // always < len
        prop_assert!(serialize::decode_container(&bytes[..cut]).is_err());
    }
}
