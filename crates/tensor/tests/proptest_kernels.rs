//! Property tests for the kernel backend's determinism contract: every
//! kernel run on `Parallel` pools of 2, 3 and 8 threads must be
//! **bit-identical** (`f32::to_bits`) to `Serial`, forward and backward,
//! on random shapes — including sizes that cross the chunking thresholds so
//! the multi-task code paths are genuinely exercised. Segmented scatter-add
//! is additionally fuzzed against a scalar reference implementation.

use std::sync::{Arc, OnceLock};

use logcl_tensor::kernels::{ops, Backend, Binary, Parallel, Serial, Unary};
use logcl_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Shared pools, built once: spawning threads per proptest case would
/// dominate the run time.
fn pools() -> &'static [Arc<Parallel>] {
    static POOLS: OnceLock<Vec<Arc<Parallel>>> = OnceLock::new();
    POOLS.get_or_init(|| {
        [2, 3, 8]
            .into_iter()
            .map(|t| Arc::new(Parallel::new(t)))
            .collect()
    })
}

fn randn(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed(seed);
    Tensor::randn(&[n.max(1)], 1.0, &mut rng).data()[..n].to_vec()
}

/// Deterministic indices in `0..n` derived from a seed.
fn indices(len: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng::seed(seed ^ 0x5eed);
    (0..len).map(|_| rng.below(n)).collect()
}

#[track_caller]
fn bits_eq(label: &str, threads: usize, serial: &[f32], got: &[f32]) -> Result<(), TestCaseError> {
    prop_assert!(
        serial.len() == got.len(),
        "{}: length mismatch ({} vs {})",
        label,
        serial.len(),
        got.len()
    );
    for (i, (s, g)) in serial.iter().zip(got).enumerate() {
        prop_assert!(
            s.to_bits() == g.to_bits(),
            "{} diverged from serial at element {} on {} threads ({} vs {})",
            label,
            i,
            threads,
            s,
            g
        );
    }
    Ok(())
}

/// Checks a pure kernel: runs it on `Serial` and every pool, comparing bits.
fn check(label: &str, run: impl Fn(&dyn Backend) -> Vec<f32>) -> Result<(), TestCaseError> {
    let reference = run(&Serial);
    for bk in pools() {
        bits_eq(label, bk.threads(), &reference, &run(bk.as_ref()))?;
    }
    Ok(())
}

const UNARIES: [Unary; 8] = [
    Unary::Scale(-1.75),
    Unary::AddScalar(0.5),
    Unary::Sigmoid,
    Unary::Tanh,
    Unary::LeakyRelu(0.2),
    Unary::Exp,
    Unary::LnClamped,
    Unary::Cos,
];

const BINARIES: [Binary; 9] = [
    Binary::Add,
    Binary::Sub,
    Binary::Mul,
    Binary::Div,
    Binary::SigmoidBwd,
    Binary::TanhBwd,
    Binary::LeakyReluBwd(0.2),
    Binary::LnBwd,
    Binary::CosBwd,
];

/// Scalar reference for segmented scatter-add: accumulates in index order,
/// which is exactly the order the segmented kernel guarantees per row.
fn scatter_reference(src: &[f32], d: usize, idx: &[usize], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    for (r, &i) in idx.iter().enumerate() {
        for c in 0..d {
            out[i * d + c] += src[r * d + c];
        }
    }
    out
}

proptest! {
    // Sizes deliberately span the kernels' chunking constants
    // (REDUCE_CHUNK = 4096, ELEM_CHUNK = 16384 elements) so both the
    // inline fast path and the multi-task path are hit.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unary_forward_and_backward_bitwise(seed in 0u64..u64::MAX, n in 1usize..40_000) {
        let x = randn(n, seed);
        for op in UNARIES {
            check(&format!("unary {op:?}"), |bk| ops::unary(bk, op, &x))?;
            let mut inplace_ref = x.clone();
            ops::unary_inplace(&Serial, op, &mut inplace_ref);
            for bk in pools() {
                let mut got = x.clone();
                ops::unary_inplace(bk.as_ref(), op, &mut got);
                bits_eq(&format!("unary_inplace {op:?}"), bk.threads(), &inplace_ref, &got)?;
            }
        }
    }

    #[test]
    fn binary_bitwise(seed in 0u64..u64::MAX, n in 1usize..40_000) {
        let a = randn(n, seed);
        let b = randn(n, seed.wrapping_add(1));
        for op in BINARIES {
            check(&format!("binary {op:?}"), |bk| ops::binary(bk, op, &a, &b))?;
        }
    }

    #[test]
    fn binary_bcast_bitwise(seed in 0u64..u64::MAX, rows in 1usize..300, cols in 1usize..200) {
        let a = randn(rows * cols, seed);
        let b = randn(cols, seed.wrapping_add(1));
        let (sa, sb) = (vec![rows, cols], vec![cols]);
        check("binary_bcast row-vector", |bk| {
            ops::binary_bcast(bk, Binary::Mul, &a, &sa, &b, &sb, &sa)
        })?;
    }

    #[test]
    fn accumulators_bitwise(seed in 0u64..u64::MAX, n in 1usize..40_000, s in -2.0f32..2.0) {
        let a = randn(n, seed);
        let b = randn(n, seed.wrapping_add(1));
        let mut add_ref = a.clone();
        ops::add_assign(&Serial, &mut add_ref, &b);
        let mut axpy_ref = a.clone();
        ops::axpy(&Serial, &mut axpy_ref, s, &b);
        for bk in pools() {
            let mut got = a.clone();
            ops::add_assign(bk.as_ref(), &mut got, &b);
            bits_eq("add_assign", bk.threads(), &add_ref, &got)?;
            let mut got = a.clone();
            ops::axpy(bk.as_ref(), &mut got, s, &b);
            bits_eq("axpy", bk.threads(), &axpy_ref, &got)?;
        }
    }

    #[test]
    fn reductions_bitwise(seed in 0u64..u64::MAX, n in 1usize..40_000) {
        let x = randn(n, seed);
        check("sum", |bk| vec![ops::sum(bk, &x)])?;
        check("sum_sq", |bk| vec![ops::sum_sq(bk, &x)])?;
    }

    #[test]
    fn row_col_reductions_bitwise(seed in 0u64..u64::MAX, n in 1usize..200, d in 1usize..150) {
        let x = randn(n * d, seed);
        check("col_sums", |bk| ops::col_sums(bk, &x, n, d))?;
        check("row_sums", |bk| ops::row_sums(bk, &x, n, d))?;
        check("max_per_row", |bk| ops::max_per_row(bk, &x, n, d))?;
        check("reduce_to rows", |bk| ops::reduce_to(bk, &x, &[n, d], &[1, d]))?;
        check("reduce_to cols", |bk| ops::reduce_to(bk, &x, &[n, d], &[n, 1]))?;
    }

    #[test]
    fn matmul_bitwise(seed in 0u64..u64::MAX, n in 1usize..48, k in 1usize..48, m in 1usize..48) {
        let a = randn(n * k, seed);
        let b = randn(k * m, seed.wrapping_add(1));
        check("matmul", |bk| ops::matmul(bk, &a, &b, n, k, m))?;
        // The sparse-lhs variant must agree bitwise across backends too,
        // including when the lhs really contains structural zeros.
        let mut a0 = a.clone();
        for v in a0.iter_mut().step_by(3) {
            *v = 0.0;
        }
        check("matmul_sparse_lhs", |bk| ops::matmul_sparse_lhs(bk, &a0, &b, n, k, m))?;
    }

    #[test]
    fn big_matmul_crosses_task_threshold(seed in 0u64..u64::MAX) {
        // 96*80*64 flops >> MATMUL_TASK_FLOPS: several tasks per backend.
        let (n, k, m) = (96, 80, 64);
        let a = randn(n * k, seed);
        let b = randn(k * m, seed.wrapping_add(1));
        check("matmul large", |bk| ops::matmul(bk, &a, &b, n, k, m))?;
    }

    #[test]
    fn transpose_and_concat_bitwise(seed in 0u64..u64::MAX, n in 1usize..120, da in 1usize..60, db in 1usize..60) {
        let a = randn(n * da, seed);
        let b = randn(n * db, seed.wrapping_add(1));
        check("transpose2", |bk| ops::transpose2(bk, &a, n, da))?;
        check("concat_cols", |bk| ops::concat_cols(bk, &a, &b, n, da, db))?;
        let g = randn(n * (da + db), seed.wrapping_add(2));
        check("split_cols", |bk| {
            let (ga, gb) = ops::split_cols(bk, &g, n, da, db);
            let mut out = ga;
            out.extend(gb);
            out
        })?;
    }

    #[test]
    fn softmax_bitwise(seed in 0u64..u64::MAX, n in 1usize..150, d in 1usize..150) {
        let x = randn(n * d, seed);
        let y = ops::softmax_rows(&Serial, &x, n, d);
        check("softmax_rows", |bk| ops::softmax_rows(bk, &x, n, d))?;
        let g = randn(n * d, seed.wrapping_add(1));
        check("softmax_rows_bwd", |bk| ops::softmax_rows_bwd(bk, &y, &g, n, d))?;
    }

    #[test]
    fn gather_scatter_bitwise_and_vs_reference(
        seed in 0u64..u64::MAX,
        rows in 1usize..600,
        d in 1usize..64,
        len in 1usize..2_000,
    ) {
        let table = randn(rows * d, seed);
        let idx = indices(len, rows, seed);
        check("gather_rows", |bk| ops::gather_rows(bk, &table, d, &idx))?;
        let src = randn(len * d, seed.wrapping_add(1));
        let reference = scatter_reference(&src, d, &idx, rows);
        // The scalar reference accumulates per-row in index order — the
        // segmented kernel's guarantee — so even the f32 rounding matches.
        bits_eq("scatter serial vs reference", 1, &reference,
                &ops::scatter_add_rows(&Serial, &src, d, &idx, rows))?;
        for bk in pools() {
            bits_eq("scatter parallel vs reference", bk.threads(), &reference,
                    &ops::scatter_add_rows(bk.as_ref(), &src, d, &idx, rows))?;
        }
    }

    #[test]
    fn im2col_bitwise(seed in 0u64..u64::MAX, b in 1usize..40, d in 1usize..48) {
        let e = randn(b * d, seed);
        let r = randn(b * d, seed.wrapping_add(1));
        check("im2col3", |bk| ops::im2col3(bk, &e, &r, b, d))?;
        let g = randn(b * d * 6, seed.wrapping_add(2));
        check("im2col3_bwd", |bk| {
            let (ge, gr) = ops::im2col3_bwd(bk, &g, b, d);
            let mut out = ge;
            out.extend(gr);
            out
        })?;
    }

    #[test]
    fn losses_bitwise(seed in 0u64..u64::MAX, n in 1usize..200, c in 2usize..40) {
        let logits = randn(n * c, seed);
        let targets = indices(n, c, seed);
        check("cross_entropy_fwd", |bk| {
            vec![ops::cross_entropy_fwd(bk, &logits, n, c, &targets)]
        })?;
        check("cross_entropy_bwd", |bk| {
            ops::cross_entropy_bwd(bk, &logits, n, c, &targets, 0.37)
        })?;
        let y: Vec<f32> = indices(n * c, 2, seed.wrapping_add(1))
            .into_iter()
            .map(|v| v as f32)
            .collect();
        check("bce_fwd", |bk| vec![ops::bce_fwd(bk, &logits, &y)])?;
        check("bce_bwd", |bk| ops::bce_bwd(bk, &logits, &y, 0.51))?;
    }

    #[test]
    fn l2_normalize_bitwise(seed in 0u64..u64::MAX, n in 1usize..200, d in 1usize..64) {
        let x = randn(n * d, seed);
        let (y, norms) = ops::l2_normalize_rows_fwd(&Serial, &x, n, d);
        check("l2_normalize_rows_fwd", |bk| {
            let (out, nrm) = ops::l2_normalize_rows_fwd(bk, &x, n, d);
            let mut all = out;
            all.extend(nrm);
            all
        })?;
        let g = randn(n * d, seed.wrapping_add(1));
        check("l2_normalize_rows_bwd", |bk| {
            ops::l2_normalize_rows_bwd(bk, &y, &g, &norms, n, d)
        })?;
    }

    #[test]
    fn adam_step_bitwise(seed in 0u64..u64::MAX, n in 1usize..40_000) {
        let w0 = randn(n, seed);
        let g = randn(n, seed.wrapping_add(1));
        let m0 = randn(n, seed.wrapping_add(2));
        let v0: Vec<f32> = randn(n, seed.wrapping_add(3)).iter().map(|v| v * v).collect();
        let step = |bk: &dyn Backend| {
            let (mut w, mut m, mut v) = (w0.clone(), m0.clone(), v0.clone());
            ops::adam_step(bk, &mut w, &g, &mut m, &mut v,
                           1e-3, 0.9, 0.999, 1e-8, 1e-5, 0.1, 0.001);
            let mut all = w;
            all.extend(m);
            all.extend(v);
            all
        };
        let reference = step(&Serial);
        for bk in pools() {
            bits_eq("adam_step", bk.threads(), &reference, &step(bk.as_ref()))?;
        }
    }
}
