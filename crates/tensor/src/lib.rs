//! # logcl-tensor
//!
//! A small, self-contained dense-tensor library with reverse-mode automatic
//! differentiation, written for the Rust reproduction of *LogCL* (ICDE 2024).
//!
//! The crate provides exactly the machinery a graph-neural TKG model needs:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor of rank ≤ 3 with shape
//!   checking, broadcasting arithmetic, matrix multiplication, reductions and
//!   ranking helpers (used at evaluation time where no gradients are needed).
//! * [`Var`] — a reference-counted autograd handle wrapping a `Tensor`.
//!   Operations on `Var`s build a dynamic computation graph; calling
//!   [`Var::backward`] runs reverse-mode differentiation and accumulates
//!   gradients into every reachable trainable leaf.
//! * [`nn`] — layers (`Linear`, `Embedding`, `Mlp`, dropout) and parameter
//!   initialisation.
//! * [`optim`] — `Adam` and `Sgd` optimizers with gradient clipping.
//! * [`serialize`] — JSON checkpointing of named parameter sets.
//! * [`kernels`] — the pluggable compute backend that owns every inner loop
//!   (`Serial` and the deterministic multi-threaded `Parallel`); selected
//!   process-wide via [`kernels::set_threads`] or the `LOGCL_THREADS`
//!   environment variable.
//!
//! The design goal is correctness and debuggability over raw speed: every op
//! has a straightforward reference implementation and a gradient that is
//! verified against finite differences in the test-suite. Both backends are
//! bit-identical on every kernel (see [`kernels`] for the determinism
//! contract), so the backend choice never affects results — only wall-clock.
//!
//! ## Example
//!
//! ```
//! use logcl_tensor::{Tensor, Var};
//!
//! let w = Var::param(Tensor::from_vec(vec![2.0, -1.0], &[2, 1]));
//! let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
//! let y = x.matmul(&w).sum(); // scalar
//! y.backward();
//! let g = w.grad().expect("gradient");
//! assert_eq!(g.shape(), &[2, 1]);
//! assert_eq!(g.data(), &[4.0, 6.0]); // column sums of x
//! ```

pub mod autograd;
pub mod kernels;
pub mod nn;
pub mod optim;
pub mod rng;
pub mod serialize;
pub mod shape;
pub mod tensor;

pub use autograd::Var;
pub use rng::Rng;
pub use tensor::Tensor;

/// Numerical tolerance used across the crate's tests and stability guards.
pub const EPS: f32 = 1e-6;
