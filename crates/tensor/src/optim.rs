//! Optimizers: Adam (the paper's choice) and SGD, plus global-norm gradient
//! clipping.

use crate::autograd::Var;
use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Clips the global L2 norm of the gradients of `params` to `max_norm`,
/// returning the pre-clip norm. Parameters without gradients are skipped.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.data().iter().map(|&x| x * x).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(g.scale(scale));
            }
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// ```
/// use logcl_tensor::{nn::ParamSet, optim::Adam, Tensor};
/// let mut params = ParamSet::new();
/// let x = params.new_param("x", Tensor::scalar(3.0));
/// let mut opt = Adam::new(&params, 0.1);
/// for _ in 0..200 {
///     x.mul(&x).sum().backward(); // d(x²)/dx
///     opt.step();
/// }
/// assert!(x.item().abs() < 0.05);
/// ```
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer over every parameter of `params` with the
    /// paper's default learning rate semantics.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let vars = params.vars();
        let m = vars.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = vars.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params: vars,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m,
            v,
        }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step from the accumulated gradients, then clears
    /// them. Parameters with no gradient are left untouched.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            p.update_value(|value| {
                let md = m.data_mut();
                let vd = v.data_mut();
                let vals = value.data_mut();
                for (((w, &g), mi), vi) in vals
                    .iter_mut()
                    .zip(grad.data())
                    .zip(md.iter_mut())
                    .zip(vd.iter_mut())
                {
                    *mi = b1 * *mi + (1.0 - b1) * g;
                    *vi = b2 * *vi + (1.0 - b2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *w -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *w);
                }
            });
            p.zero_grad();
        }
    }

    /// Clips gradients then steps; returns the pre-clip gradient norm.
    pub fn clip_and_step(&mut self, max_norm: f32) -> f32 {
        let norm = clip_grad_norm(&self.params, max_norm);
        self.step();
        norm
    }
}

/// Plain stochastic gradient descent, for the baselines that train shallow
/// factorisation scores.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
}

impl Sgd {
    /// SGD over every parameter of `params`.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        Self {
            params: params.vars(),
            lr,
        }
    }

    /// Applies one descent step and clears gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            let Some(grad) = p.grad() else { continue };
            let lr = self.lr;
            p.update_value(|value| value.axpy(-lr, &grad));
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamSet;

    /// Minimises ‖x - target‖² and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let target = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut opt = Adam::new(&params, 0.1);
        for _ in 0..300 {
            let diff = x.sub(&target);
            let loss = diff.mul(&diff).sum();
            loss.backward();
            opt.step();
        }
        let v = x.to_tensor();
        assert!((v.data()[0] - 1.0).abs() < 1e-2, "{v:?}");
        assert!((v.data()[1] - 2.0).abs() < 1e-2, "{v:?}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(4.0));
        let mut opt = Sgd::new(&params, 0.1);
        for _ in 0..200 {
            let loss = x.mul(&x).sum();
            loss.backward();
            opt.step();
        }
        assert!(x.item().abs() < 1e-2);
    }

    #[test]
    fn step_clears_gradients() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(1.0));
        let mut opt = Adam::new(&params, 0.01);
        x.mul(&x).sum().backward();
        assert!(x.grad().is_some());
        opt.step();
        assert!(x.grad().is_none());
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        x.mul(&x).sum().backward(); // grad = [6, 8], norm 10
        let pre = clip_grad_norm(&params.vars(), 1.0);
        assert!((pre - 10.0).abs() < 1e-4);
        let g = x.grad().unwrap();
        let norm = g.norm();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
        // Direction preserved.
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-4);
    }

    #[test]
    fn adam_skips_gradientless_params() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(1.0));
        let y = params.new_param("y", Tensor::scalar(2.0));
        let mut opt = Adam::new(&params, 0.1);
        x.mul(&x).sum().backward();
        opt.step();
        assert_eq!(y.item(), 2.0, "untouched parameter must not move");
        assert!(x.item() < 1.0);
    }
}
