//! Optimizers: Adam (the paper's choice) and SGD, plus global-norm gradient
//! clipping.

use serde::{Deserialize, Serialize};

use crate::autograd::Var;
use crate::kernels::{self, ops};
use crate::nn::ParamSet;
use crate::serialize::{CheckpointError, TensorRecord};
use crate::tensor::Tensor;

/// Clips the global L2 norm of the gradients of `params` to `max_norm`,
/// returning the pre-clip norm. Parameters without gradients are skipped.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += ops::sum_sq(&*kernels::backend(), g.data());
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(g.scale(scale));
            }
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
///
/// ```
/// use logcl_tensor::{nn::ParamSet, optim::Adam, Tensor};
/// let mut params = ParamSet::new();
/// let x = params.new_param("x", Tensor::scalar(3.0));
/// let mut opt = Adam::new(&params, 0.1);
/// for _ in 0..200 {
///     x.mul(&x).sum().backward(); // d(x²)/dx
///     opt.step();
/// }
/// assert!(x.item().abs() < 0.05);
/// ```
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer over every parameter of `params` with the
    /// paper's default learning rate semantics.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let vars = params.vars();
        let m = vars.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = vars.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params: vars,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m,
            v,
        }
    }

    /// Sets decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjusts the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step from the accumulated gradients, then clears
    /// them. Parameters with no gradient are left untouched.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(grad) = p.grad() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            p.update_value(|value| {
                ops::adam_step(
                    &*kernels::backend(),
                    value.data_mut(),
                    grad.data(),
                    m.data_mut(),
                    v.data_mut(),
                    lr,
                    b1,
                    b2,
                    eps,
                    wd,
                    bc1,
                    bc2,
                );
            });
            p.zero_grad();
        }
    }

    /// Clips gradients then steps; returns the pre-clip gradient norm.
    pub fn clip_and_step(&mut self, max_norm: f32) -> f32 {
        let norm = clip_grad_norm(&self.params, max_norm);
        self.step();
        norm
    }

    /// Snapshots the optimizer's mutable state (step count, learning rate,
    /// both moment estimates). Hyper-parameters that never change mid-run
    /// (betas, eps, weight decay) come from configuration, not the snapshot.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            lr: self.lr,
            m: self.m.iter().map(TensorRecord::from).collect(),
            v: self.v.iter().map(TensorRecord::from).collect(),
        }
    }

    /// Restores a previously exported state. The optimizer must be built
    /// over the same parameter set (same count and shapes); anything else
    /// is rejected without partially mutating the moments.
    pub fn import_state(&mut self, state: &AdamState) -> Result<(), CheckpointError> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(CheckpointError::Mismatch(format!(
                "optimizer state covers {} params, optimizer has {}",
                state.m.len(),
                self.params.len()
            )));
        }
        let mut m = Vec::with_capacity(state.m.len());
        let mut v = Vec::with_capacity(state.v.len());
        for (i, p) in self.params.iter().enumerate() {
            for (which, rec) in [("m", &state.m[i]), ("v", &state.v[i])] {
                if rec.shape != p.shape() {
                    return Err(CheckpointError::ShapeMismatch(format!(
                        "optimizer moment {which}[{i}]: snapshot shape {:?} vs parameter {:?}",
                        rec.shape,
                        p.shape()
                    )));
                }
            }
            m.push(state.m[i].try_to_tensor()?);
            v.push(state.v[i].try_to_tensor()?);
        }
        self.t = state.t;
        self.lr = state.lr;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

/// Serialisable snapshot of an [`Adam`] optimizer's mutable state, captured
/// at a checkpoint so a resumed run continues the identical update sequence.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub struct AdamState {
    /// Step count (drives bias correction).
    pub t: u64,
    /// Learning rate at capture time (may differ from the configured one
    /// after divergence-rollback backoff).
    pub lr: f32,
    /// First-moment estimates, one per parameter in registration order.
    pub m: Vec<TensorRecord>,
    /// Second-moment estimates, one per parameter in registration order.
    pub v: Vec<TensorRecord>,
}

/// Plain stochastic gradient descent, for the baselines that train shallow
/// factorisation scores.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
}

impl Sgd {
    /// SGD over every parameter of `params`.
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        Self {
            params: params.vars(),
            lr,
        }
    }

    /// Applies one descent step and clears gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            let Some(grad) = p.grad() else { continue };
            let lr = self.lr;
            p.update_value(|value| value.axpy(-lr, &grad));
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamSet;

    /// Minimises ‖x - target‖² and checks convergence.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let target = Var::constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut opt = Adam::new(&params, 0.1);
        for _ in 0..300 {
            let diff = x.sub(&target);
            let loss = diff.mul(&diff).sum();
            loss.backward();
            opt.step();
        }
        let v = x.to_tensor();
        assert!((v.data()[0] - 1.0).abs() < 1e-2, "{v:?}");
        assert!((v.data()[1] - 2.0).abs() < 1e-2, "{v:?}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(4.0));
        let mut opt = Sgd::new(&params, 0.1);
        for _ in 0..200 {
            let loss = x.mul(&x).sum();
            loss.backward();
            opt.step();
        }
        assert!(x.item().abs() < 1e-2);
    }

    #[test]
    fn step_clears_gradients() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(1.0));
        let mut opt = Adam::new(&params, 0.01);
        x.mul(&x).sum().backward();
        assert!(x.grad().is_some());
        opt.step();
        assert!(x.grad().is_none());
    }

    #[test]
    fn clip_grad_norm_caps_global_norm() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::from_vec(vec![3.0, 4.0], &[2]));
        x.mul(&x).sum().backward(); // grad = [6, 8], norm 10
        let pre = clip_grad_norm(&params.vars(), 1.0);
        assert!((pre - 10.0).abs() < 1e-4);
        let g = x.grad().unwrap();
        let norm = g.norm();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
        // Direction preserved.
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-4);
    }

    /// Exporting Adam's state, continuing training, then importing it into
    /// a fresh optimizer over an identically initialised model must replay
    /// the exact same parameter trajectory — the bit-identical-resume
    /// guarantee the trainer's checkpoints rely on.
    #[test]
    fn adam_state_round_trip_replays_identically() {
        let build = || {
            let mut params = ParamSet::new();
            params.new_param("x", Tensor::from_vec(vec![5.0, -3.0], &[2]));
            params.new_param("y", Tensor::from_vec(vec![0.5; 6], &[2, 3]));
            params
        };
        let step = |params: &ParamSet, opt: &mut Adam| {
            let x = params.get("x").unwrap();
            let y = params.get("y").unwrap();
            x.mul(x).sum().add(&y.mul(y).sum()).backward();
            opt.clip_and_step(1.0);
        };

        let params_a = build();
        let mut opt_a = Adam::new(&params_a, 0.05);
        for _ in 0..5 {
            step(&params_a, &mut opt_a);
        }
        let snap = opt_a.export_state();
        assert_eq!(snap.t, 5);
        let frozen: Vec<Tensor> = params_a.vars().iter().map(|p| p.to_tensor()).collect();
        for _ in 0..5 {
            step(&params_a, &mut opt_a);
        }

        // Fresh model at the checkpointed weights + imported moments.
        let params_b = build();
        for (p, t) in params_b.vars().iter().zip(&frozen) {
            p.set_value(t.clone());
        }
        let mut opt_b = Adam::new(&params_b, 999.0); // wrong lr, import fixes it
        let json = crate::serialize::save_json_durable(&snap, {
            let dir = std::env::temp_dir().join("logcl-adam-state");
            std::fs::create_dir_all(&dir).unwrap();
            dir.join("adam.bin")
        });
        json.unwrap();
        let restored: AdamState = crate::serialize::load_json_durable(
            std::env::temp_dir()
                .join("logcl-adam-state")
                .join("adam.bin"),
        )
        .unwrap();
        opt_b.import_state(&restored).unwrap();
        assert_eq!(opt_b.lr(), 0.05);
        for _ in 0..5 {
            step(&params_b, &mut opt_b);
        }
        for (a, b) in params_a.vars().iter().zip(params_b.vars().iter()) {
            assert_eq!(a.to_tensor(), b.to_tensor(), "trajectories diverged");
        }
    }

    #[test]
    fn adam_import_rejects_mismatched_state() {
        let mut params = ParamSet::new();
        params.new_param("x", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let mut opt = Adam::new(&params, 0.1);
        let mut snap = opt.export_state();
        snap.m[0].shape = vec![3];
        snap.m[0].data = vec![0.0; 3];
        assert!(matches!(
            opt.import_state(&snap),
            Err(CheckpointError::ShapeMismatch(_))
        ));
        let mut snap = opt.export_state();
        snap.v.pop();
        assert!(matches!(
            opt.import_state(&snap),
            Err(CheckpointError::Mismatch(_))
        ));
        // Failed imports leave the optimizer usable.
        params
            .get("x")
            .unwrap()
            .mul(params.get("x").unwrap())
            .sum()
            .backward();
        opt.step();
    }

    #[test]
    fn adam_skips_gradientless_params() {
        let mut params = ParamSet::new();
        let x = params.new_param("x", Tensor::scalar(1.0));
        let y = params.new_param("y", Tensor::scalar(2.0));
        let mut opt = Adam::new(&params, 0.1);
        x.mul(&x).sum().backward();
        opt.step();
        assert_eq!(y.item(), 2.0, "untouched parameter must not move");
        assert!(x.item() < 1.0);
    }
}
