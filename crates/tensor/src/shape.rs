//! Shape utilities: validation, broadcasting and reduction bookkeeping.
//!
//! Tensors in this crate are row-major with rank ≤ 3. Broadcasting follows
//! NumPy's right-aligned rule restricted to those ranks: two shapes are
//! compatible if, after right-aligning, every dimension pair is equal or one
//! of them is `1` (a missing leading dimension behaves like `1`).

/// Maximum tensor rank supported by the crate.
pub const MAX_RANK: usize = 3;

/// Returns the number of elements implied by `shape`.
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Validates that `shape` has an acceptable rank and no zero-sized dimension
/// unless the whole tensor is empty.
pub fn validate(shape: &[usize]) {
    assert!(
        shape.len() <= MAX_RANK,
        "tensor rank {} exceeds supported maximum {MAX_RANK}",
        shape.len()
    );
}

/// Computes the broadcast result shape of `a` and `b`, or panics with a
/// descriptive message when the shapes are incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Vec<usize> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = dim_from_right(a, i);
        let db = dim_from_right(b, i);
        out[rank - 1 - i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            // logcl-allow(L002): shape contract — incompatible broadcast shapes are a caller bug, same class as the rank asserts
            _ => panic!("shapes {a:?} and {b:?} are not broadcast-compatible"),
        };
    }
    out
}

/// Dimension `i` counted from the right, treating missing dims as 1.
#[inline]
pub fn dim_from_right(shape: &[usize], i: usize) -> usize {
    if i < shape.len() {
        shape[shape.len() - 1 - i]
    } else {
        1
    }
}

/// Row-major strides for `shape`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Strides used to *read* a tensor of `shape` as if broadcast to `target`:
/// broadcast dimensions get stride 0 so the same element is revisited.
pub fn broadcast_strides(shape: &[usize], target: &[usize]) -> Vec<usize> {
    let own = strides(shape);
    let rank = target.len();
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let d = dim_from_right(shape, i);
        let t = dim_from_right(target, i);
        assert!(d == t || d == 1, "cannot broadcast {shape:?} to {target:?}");
        out[rank - 1 - i] = if d == 1 && t != 1 {
            0
        } else if i < shape.len() {
            own[shape.len() - 1 - i]
        } else {
            0
        };
    }
    out
}

/// True when `from` can be reduced (by summation) back to `to`; used when
/// propagating gradients through broadcasting ops.
pub fn reducible(from: &[usize], to: &[usize]) -> bool {
    if to.len() > from.len() {
        return false;
    }
    (0..from.len()).all(|i| {
        let f = dim_from_right(from, i);
        let t = dim_from_right(to, i);
        f == t || t == 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_row_vector() {
        assert_eq!(broadcast_shape(&[4, 3], &[3]), vec![4, 3]);
        assert_eq!(broadcast_shape(&[3], &[4, 3]), vec![4, 3]);
    }

    #[test]
    fn broadcast_column_vector() {
        assert_eq!(broadcast_shape(&[4, 3], &[4, 1]), vec![4, 3]);
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shape(&[4, 3], &[1]), vec![4, 3]);
        assert_eq!(broadcast_shape(&[1], &[1]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn broadcast_incompatible_panics() {
        broadcast_shape(&[4, 3], &[2, 3]);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert!(strides(&[]).is_empty());
    }

    #[test]
    fn broadcast_strides_zeroes_broadcast_dims() {
        assert_eq!(broadcast_strides(&[3], &[4, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[4, 1], &[4, 3]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[1], &[4, 3]), vec![0, 0]);
    }

    #[test]
    fn reducible_checks() {
        assert!(reducible(&[4, 3], &[3]));
        assert!(reducible(&[4, 3], &[4, 1]));
        assert!(reducible(&[4, 3], &[1]));
        assert!(!reducible(&[3], &[4, 3]));
    }
}
