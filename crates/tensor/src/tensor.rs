//! The raw dense tensor type: storage, construction and gradient-free math.
//!
//! [`Tensor`] is deliberately simple — a `Vec<f32>` plus a shape — and all
//! operations are eager and allocate their result. The autograd layer
//! ([`crate::autograd`]) builds on these primitives; evaluation-time code
//! (ranking, metric computation) uses them directly.
//!
//! No compute loop lives here: every op validates shapes and dispatches to
//! [`crate::kernels`], which executes it on the process-wide backend
//! (serial or deterministic multi-threaded — bit-identical either way).

use crate::kernels::{self, ops, Binary, Unary};
use crate::rng::Rng;
use crate::shape;

/// A dense, row-major `f32` tensor of rank ≤ 3.
///
/// ```
/// use logcl_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b).data(), a.data());
/// assert_eq!(a.add(&Tensor::scalar(1.0)).data(), &[2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{}, {}, ...])", self.data[0], self.data[1])
        }
    }
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Builds a tensor from raw data; `data.len()` must equal the product of
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        shape::validate(shape);
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// An all-zero tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        shape::validate(shape);
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape::numel(shape)],
        }
    }

    /// An all-one tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        shape::validate(shape);
        Self {
            shape: shape.to_vec(),
            data: vec![value; shape::numel(shape)],
        }
    }

    /// A rank-1 single-element tensor holding `value` (the crate's scalar
    /// representation).
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Standard-normal entries scaled by `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        shape::validate(shape);
        let data = (0..shape::numel(shape))
            .map(|_| rng.normal() * std)
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        shape::validate(shape);
        let data = (0..shape::numel(shape))
            .map(|_| rng.uniform(lo, hi))
            .collect();
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Self {
            shape: vec![n],
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let data = (0..n * n)
            .map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 })
            .collect();
        Self {
            shape: vec![n, n],
            data,
        }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    // logcl-allow(L001): sanctioned accessor seam — hands the buffer *to* the kernel boundary; no compute happens here
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with shape {:?}",
            self.shape
        );
        self.data[0]
    }

    /// Element at 2-D position `(i, j)`.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Sets element at 2-D position `(i, j)`.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j] = v;
    }

    /// Borrow of row `i` of a rank-2 tensor.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(
            self.rank(),
            2,
            "row() requires rank-2, got {:?}",
            self.shape
        );
        let c = self.shape[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable borrow of row `i` of a rank-2 tensor.
    // logcl-allow(L001): sanctioned accessor seam — hands the buffer *to* the kernel boundary; no compute happens here
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(
            self.rank(),
            2,
            "row_mut() requires rank-2, got {:?}",
            self.shape
        );
        let c = self.shape[1];
        &mut self.data[i * c..(i + 1) * c]
    }

    // ------------------------------------------------------------- reshapes

    /// Returns a tensor sharing no storage but with the same data and a new
    /// shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape::numel(shape),
            self.numel(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(
            self.rank(),
            2,
            "transpose2 requires rank-2, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        let out = ops::transpose2(&*kernels::backend(), &self.data, r, c);
        Tensor::from_vec(out, &[c, r])
    }

    // ------------------------------------------------------- elementwise ops

    /// Applies a named unary kernel elementwise.
    pub fn unary(&self, op: Unary) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: ops::unary(&*kernels::backend(), op, &self.data),
        }
    }

    /// In-place variant of [`Tensor::unary`].
    pub fn unary_inplace(&mut self, op: Unary) {
        ops::unary_inplace(&*kernels::backend(), op, &mut self.data);
    }

    /// Applies a named binary kernel with broadcasting.
    pub fn binary(&self, other: &Tensor, op: Binary) -> Tensor {
        let bk = kernels::backend();
        if self.shape == other.shape {
            return Tensor {
                shape: self.shape.clone(),
                data: ops::binary(&*bk, op, &self.data, &other.data),
            };
        }
        let out_shape = shape::broadcast_shape(&self.shape, &other.shape);
        let data = ops::binary_bcast(
            &*bk,
            op,
            &self.data,
            &self.shape,
            &other.data,
            &other.shape,
            &out_shape,
        );
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Applies `f` elementwise, producing a new tensor.
    ///
    /// Arbitrary closures run sequentially (they cannot cross threads);
    /// prefer [`Tensor::unary`] for the named hot-path ops.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: ops::map_fallback(&f, &self.data),
        }
    }

    /// In-place elementwise update.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        ops::map_fallback_inplace(&f, &mut self.data);
    }

    /// Broadcasting binary op. The result has the broadcast shape of the two
    /// inputs. Arbitrary closures run sequentially; prefer
    /// [`Tensor::binary`] for the named hot-path ops.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let out_shape = if self.shape == other.shape {
            self.shape.clone()
        } else {
            shape::broadcast_shape(&self.shape, &other.shape)
        };
        let data = ops::zip_fallback(
            &f,
            &self.data,
            &self.shape,
            &other.data,
            &other.shape,
            &out_shape,
        );
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.binary(other, Binary::Add)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.binary(other, Binary::Sub)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.binary(other, Binary::Mul)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.binary(other, Binary::Div)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.unary(Unary::Scale(s))
    }

    /// `self += other` where shapes match exactly.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        ops::add_assign(&*kernels::backend(), &mut self.data, &other.data);
    }

    /// `self += s * other` (axpy) where shapes match exactly.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        ops::axpy(&*kernels::backend(), &mut self.data, s, &other.data);
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements (fixed-shape reduction tree; identical on every
    /// backend and thread count).
    pub fn sum_all(&self) -> f32 {
        ops::sum(&*kernels::backend(), &self.data)
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum_all() / self.data.len() as f32
        }
    }

    /// Sums `self` down to `target` shape (inverse of broadcasting); used by
    /// gradient propagation.
    pub fn reduce_to(&self, target: &[usize]) -> Tensor {
        if self.shape == target {
            return self.clone();
        }
        assert!(
            shape::reducible(&self.shape, target),
            "cannot reduce {:?} to {:?}",
            self.shape,
            target
        );
        let data = ops::reduce_to(&*kernels::backend(), &self.data, &self.shape, target);
        Tensor::from_vec(data, target)
    }

    /// Column-wise mean of a rank-2 tensor: `[N, D] -> [D]`.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (n, d) = (self.shape[0], self.shape[1]);
        let bk = kernels::backend();
        let mut out = ops::col_sums(&*bk, &self.data, n, d);
        if n > 0 {
            ops::unary_inplace(&*bk, Unary::Scale(1.0 / n as f32), &mut out);
        }
        Tensor::from_vec(out, &[d])
    }

    /// Row-wise maximum of a rank-2 tensor: `[N, D] -> [N]`.
    pub fn max_per_row(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (n, d) = (self.shape[0], self.shape[1]);
        let out = ops::max_per_row(&*kernels::backend(), &self.data, n, d);
        Tensor::from_vec(out, &[n])
    }

    // --------------------------------------------------------------- linalg

    /// Matrix product of rank-2 tensors: `[N, K] x [K, M] -> [N, M]`.
    ///
    /// Dense kernel with a fixed flop order (no value-dependent skips); use
    /// [`Tensor::matmul_sparse_lhs`] when the lhs is known to be sparse.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (n, k, m) = self.matmul_dims(other);
        let out = ops::matmul(&*kernels::backend(), &self.data, &other.data, n, k, m);
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix product for a lhs with many structural zeros (one-hot gathers,
    /// zero-padded im2col windows): skips zero lhs entries. Same result as
    /// [`Tensor::matmul`] up to floating-point summation order.
    pub fn matmul_sparse_lhs(&self, other: &Tensor) -> Tensor {
        let (n, k, m) = self.matmul_dims(other);
        let out = ops::matmul_sparse_lhs(&*kernels::backend(), &self.data, &other.data, n, k, m);
        Tensor::from_vec(out, &[n, m])
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize, usize) {
        assert_eq!(
            self.rank(),
            2,
            "matmul lhs must be rank-2, got {:?}",
            self.shape
        );
        assert_eq!(
            other.rank(),
            2,
            "matmul rhs must be rank-2, got {:?}",
            other.shape
        );
        let (n, k) = (self.shape[0], self.shape[1]);
        let (k2, m) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        (n, k, m)
    }

    /// Frobenius / L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        ops::sum_sq(&*kernels::backend(), &self.data).sqrt()
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (n, d) = (self.shape[0], self.shape[1]);
        let out = ops::softmax_rows(&*kernels::backend(), &self.data, n, d);
        Tensor::from_vec(out, &[n, d])
    }

    // ------------------------------------------------------------- indexing

    /// Gathers rows of a rank-2 tensor: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        assert_eq!(self.rank(), 2);
        let d = self.shape[1];
        if let Some(&bad) = idx.iter().find(|&&i| i >= self.shape[0]) {
            // logcl-allow(L002): bounds contract, same class as the adjacent asserts — a bad index is a caller bug, not a representable state
            panic!("gather index {bad} out of bounds {}", self.shape[0]);
        }
        let data = ops::gather_rows(&*kernels::backend(), &self.data, d, idx);
        Tensor::from_vec(data, &[idx.len(), d])
    }

    /// Scatter-adds rows of `self` (`[M, D]`) into a fresh `[n, D]` tensor at
    /// row positions `idx` (segmented, deterministic: per-row accumulation
    /// order is always index order).
    pub fn scatter_add_rows(&self, idx: &[usize], n: usize) -> Tensor {
        assert_eq!(self.rank(), 2);
        assert_eq!(idx.len(), self.shape[0], "scatter index count mismatch");
        if let Some(&bad) = idx.iter().find(|&&i| i >= n) {
            // logcl-allow(L002): bounds contract, same class as the adjacent asserts — a bad index is a caller bug, not a representable state
            panic!("scatter index {bad} out of bounds {n}");
        }
        let d = self.shape[1];
        let data = ops::scatter_add_rows(&*kernels::backend(), &self.data, d, idx, n);
        Tensor::from_vec(data, &[n, d])
    }

    // -------------------------------------------------------------- ranking

    /// Indices of the `k` largest entries of a rank-1 tensor, descending.
    pub fn topk(&self, k: usize) -> Vec<usize> {
        assert_eq!(self.rank(), 1);
        ops::topk(&self.data, k)
    }

    /// 1-based rank of `target` in a score vector under "average over ties of
    /// strictly-greater + 1" semantics, ignoring indices in `masked` (treated
    /// as removed candidates).
    pub fn rank_of(&self, target: usize, masked: &[usize]) -> usize {
        assert_eq!(self.rank(), 1);
        ops::rank_of(&self.data, target, masked)
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        ops::all_finite(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn broadcasting_add_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcasting_mul_column() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 100.0], &[2, 1]);
        let c = a.mul(&b);
        assert_eq!(c.data(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn broadcasting_scalar() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let s = Tensor::scalar(5.0);
        assert_eq!(a.add(&s).data(), &[6.0, 7.0]);
        assert_eq!(s.sub(&a).data(), &[4.0, 3.0]);
    }

    #[test]
    fn matmul_basic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_sparse_lhs_matches_dense() {
        // One-hot-ish lhs: the sparse kernel must agree exactly with the
        // dense kernel here (products with zero contribute exact zeros).
        let a = Tensor::from_vec(vec![0.0, 1.0, 0.0, 0.0, 0.0, 2.0], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(a.matmul_sparse_lhs(&b).data(), a.matmul(&b).data());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().shape(), &[3, 2]);
        assert_eq!(a.transpose2().at2(2, 1), 6.0);
    }

    #[test]
    fn reduce_to_inverts_broadcast() {
        let g = Tensor::ones(&[4, 3]);
        assert_eq!(g.reduce_to(&[3]).data(), &[4.0, 4.0, 4.0]);
        assert_eq!(g.reduce_to(&[4, 1]).data(), &[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(g.reduce_to(&[1]).data(), &[12.0]);
    }

    #[test]
    fn softmax_rows_normalises() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = a.softmax_rows();
        let r0: f32 = s.row(0).iter().sum();
        let r1: f32 = s.row(1).iter().sum();
        assert!((r0 - 1.0).abs() < 1e-6 && (r1 - 1.0).abs() < 1e-6);
        assert!((s.at2(1, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.at2(0, 2) > s.at2(0, 1) && s.at2(0, 1) > s.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.scatter_add_rows(&[2, 0, 2], 3);
        assert_eq!(s.data(), &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn topk_orders_descending() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.9], &[4]);
        assert_eq!(t.topk(3), vec![1, 3, 2]); // tie broken by index
    }

    #[test]
    fn rank_of_with_mask() {
        let t = Tensor::from_vec(vec![0.9, 0.8, 0.7, 0.6], &[4]);
        assert_eq!(t.rank_of(2, &[]), 3);
        assert_eq!(t.rank_of(2, &[0]), 2); // best candidate filtered out
        assert_eq!(t.rank_of(2, &[2]), 3); // target itself never masked
    }

    #[test]
    fn mean_rows_basic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.data(), &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }
}
