//! Neural-network building blocks: initialisation, layers and a named
//! parameter registry.

use crate::autograd::Var;
use crate::rng::Rng;
use crate::tensor::Tensor;

/// Deterministic (evaluation-mode) slope used for the paper's RReLU σ₁:
/// the mean of PyTorch's default RReLU range `[1/8, 1/3]`.
pub const RRELU_EVAL_SLOPE: f32 = (1.0 / 8.0 + 1.0 / 3.0) / 2.0;

// ---------------------------------------------------------------------- init

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// Normal(0, std²) initialisation of arbitrary shape.
pub fn normal_init(shape: &[usize], std: f32, rng: &mut Rng) -> Tensor {
    Tensor::randn(shape, std, rng)
}

// ------------------------------------------------------------------ registry

/// A named collection of trainable parameters; the unit optimizers and
/// checkpointing operate on.
#[derive(Default)]
pub struct ParamSet {
    items: Vec<(String, Var)>,
}

impl ParamSet {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `var` under `name` (names must be unique) and returns the
    /// handle back for convenience.
    pub fn register(&mut self, name: impl Into<String>, var: Var) -> Var {
        let name = name.into();
        assert!(
            var.is_param(),
            "only trainable Vars can be registered: {name}"
        );
        assert!(
            self.items.iter().all(|(n, _)| *n != name),
            "duplicate parameter name {name}"
        );
        self.items.push((name, var.clone()));
        var
    }

    /// Creates, registers and returns a fresh parameter.
    pub fn new_param(&mut self, name: impl Into<String>, init: Tensor) -> Var {
        self.register(name, Var::param(init))
    }

    /// Iterates over `(name, var)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Var)> {
        self.items.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// All parameter handles.
    pub fn vars(&self) -> Vec<Var> {
        self.items.iter().map(|(_, v)| v.clone()).collect()
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Var> {
        self.items.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.items.iter().map(|(_, v)| v.value().numel()).sum()
    }

    /// Clears gradients on every parameter.
    pub fn zero_grad(&self) {
        for (_, v) in &self.items {
            v.zero_grad();
        }
    }

    /// Merges another registry under a `prefix/` namespace.
    pub fn absorb(&mut self, prefix: &str, other: ParamSet) {
        for (name, var) in other.items {
            self.register(format!("{prefix}/{name}"), var);
        }
    }
}

// -------------------------------------------------------------------- layers

/// A dense affine layer `y = x W + b`.
pub struct Linear {
    /// Weight matrix `[in_dim, out_dim]`.
    pub weight: Var,
    /// Optional bias `[out_dim]`.
    pub bias: Option<Var>,
}

impl Linear {
    /// Xavier-initialised layer with bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            weight: Var::param(xavier_uniform(in_dim, out_dim, rng)),
            bias: Some(Var::param(Tensor::zeros(&[out_dim]))),
        }
    }

    /// Xavier-initialised layer without bias.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            weight: Var::param(xavier_uniform(in_dim, out_dim, rng)),
            bias: None,
        }
    }

    /// Applies the layer to `[N, in_dim]` input.
    pub fn forward(&self, x: &Var) -> Var {
        let y = x.matmul(&self.weight);
        match &self.bias {
            Some(b) => y.add(b),
            None => y,
        }
    }

    /// Registers this layer's parameters under `prefix`.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.weight"), self.weight.clone());
        if let Some(b) = &self.bias {
            params.register(format!("{prefix}.bias"), b.clone());
        }
    }
}

/// A trainable embedding table `[num, dim]` with row lookup.
pub struct Embedding {
    /// The table itself.
    pub weight: Var,
}

impl Embedding {
    /// Normal(0, 1/√dim) initialised table.
    pub fn new(num: usize, dim: usize, rng: &mut Rng) -> Self {
        let std = 1.0 / (dim as f32).sqrt();
        Self {
            weight: Var::param(normal_init(&[num, dim], std, rng)),
        }
    }

    /// Rows `idx` of the table as `[idx.len(), dim]`.
    pub fn lookup(&self, idx: &[usize]) -> Var {
        self.weight.gather_rows(idx)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.weight.value().shape()[0]
    }

    /// True for an empty table.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.weight.value().shape()[1]
    }

    /// Registers the table under `prefix`.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        params.register(format!("{prefix}.weight"), self.weight.clone());
    }
}

/// A two-layer perceptron with ReLU hidden activation, used as the
/// contrastive projection head (Eq. 15–16). Output rows are L2-normalised
/// onto the unit sphere when `normalize` is set.
pub struct Mlp {
    /// First affine layer.
    pub fc1: Linear,
    /// Second affine layer.
    pub fc2: Linear,
    /// Whether to project outputs onto the unit sphere.
    pub normalize: bool,
}

impl Mlp {
    /// Builds an `in_dim -> hidden -> out_dim` MLP.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        normalize: bool,
        rng: &mut Rng,
    ) -> Self {
        Self {
            fc1: Linear::new(in_dim, hidden, rng),
            fc2: Linear::new(hidden, out_dim, rng),
            normalize,
        }
    }

    /// Applies the MLP to `[N, in_dim]`.
    pub fn forward(&self, x: &Var) -> Var {
        let h = self.fc1.forward(x).relu();
        let y = self.fc2.forward(&h);
        if self.normalize {
            y.l2_normalize_rows()
        } else {
            y
        }
    }

    /// Registers both layers under `prefix`.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.fc1.register(params, &format!("{prefix}.fc1"));
        self.fc2.register(params, &format!("{prefix}.fc2"));
    }
}

/// Inverted dropout: during training, zeroes each element with probability
/// `p` and scales survivors by `1/(1-p)`; identity at evaluation time.
///
/// The mask is a constant in the autograd graph, so gradients flow only
/// through surviving elements — exactly standard dropout semantics.
pub fn dropout(x: &Var, p: f32, training: bool, rng: &mut Rng) -> Var {
    assert!(
        (0.0..1.0).contains(&p),
        "dropout p must be in [0, 1), got {p}"
    );
    if !training || p == 0.0 {
        return x.clone();
    }
    let shape = x.shape();
    let keep = 1.0 - p;
    let mask_data: Vec<f32> = (0..x.value().numel())
        .map(|_| {
            if rng.chance(keep as f64) {
                1.0 / keep
            } else {
                0.0
            }
        })
        .collect();
    let mask = Var::constant(Tensor::from_vec(mask_data, &shape));
    x.mul(&mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_grad_flow() {
        let mut rng = Rng::seed(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Var::constant(Tensor::ones(&[2, 4]));
        let y = layer.forward(&x);
        assert_eq!(y.shape(), vec![2, 3]);
        y.sum().backward();
        assert_eq!(layer.weight.grad().unwrap().shape(), &[4, 3]);
        assert_eq!(layer.bias.as_ref().unwrap().grad().unwrap().shape(), &[3]);
    }

    #[test]
    fn embedding_lookup_grad_is_sparse() {
        let mut rng = Rng::seed(2);
        let emb = Embedding::new(5, 3, &mut rng);
        let y = emb.lookup(&[1, 3, 1]);
        y.sum().backward();
        let g = emb.weight.grad().unwrap();
        assert_eq!(g.row(1), &[2.0, 2.0, 2.0]); // looked up twice
        assert_eq!(g.row(3), &[1.0, 1.0, 1.0]);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn mlp_normalizes_output() {
        let mut rng = Rng::seed(3);
        let mlp = Mlp::new(4, 8, 4, true, &mut rng);
        let x = Var::constant(Tensor::randn(&[3, 4], 1.0, &mut rng));
        let y = mlp.forward(&x);
        for i in 0..3 {
            let n: f32 = y.value().row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = Rng::seed(4);
        let x = Var::constant(Tensor::ones(&[10, 10]));
        let y = dropout(&x, 0.5, false, &mut rng);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut rng = Rng::seed(5);
        let x = Var::constant(Tensor::ones(&[100, 100]));
        let y = dropout(&x, 0.3, true, &mut rng);
        let mean = y.value().mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 1/(1-p).
        let distinct: std::collections::HashSet<u32> =
            y.value().data().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() <= 2);
    }

    #[test]
    fn paramset_registry() {
        let mut rng = Rng::seed(6);
        let mut params = ParamSet::new();
        let lin = Linear::new(2, 2, &mut rng);
        lin.register(&mut params, "dec");
        assert_eq!(params.len(), 2);
        assert!(params.get("dec.weight").is_some());
        assert_eq!(params.num_weights(), 4 + 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut params = ParamSet::new();
        params.new_param("w", Tensor::zeros(&[1]));
        params.new_param("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed(7);
        let w = xavier_uniform(100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
    }
}
