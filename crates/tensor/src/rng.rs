//! Seeded random number generation shared by the whole workspace.
//!
//! Every experiment in the reproduction is deterministic given a seed; this
//! module wraps a `StdRng` and adds the couple of distributions the models
//! need (standard normal via Box–Muller, so no extra dependency is pulled).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded RNG with the handful of sampling helpers used across the crates.
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a deterministic generator from `seed`.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform sample in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Derives an independent child generator (useful to keep sub-streams
    /// stable when code paths are reordered).
    pub fn fork(&mut self) -> Rng {
        Rng::seed(self.inner.gen::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed(3);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = Rng::seed(9);
        let mut c1 = rng.fork();
        let mut c2 = rng.fork();
        let a: Vec<f32> = (0..10).map(|_| c1.uniform(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..10).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(a, b);
    }
}
