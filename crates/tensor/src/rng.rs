//! Seeded random number generation shared by the whole workspace.
//!
//! Every experiment in the reproduction is deterministic given a seed. The
//! generator is SplitMix64-seeded xoshiro256++ implemented inline so its
//! full state can be captured into a [`RngState`] and restored later —
//! the property crash-safe training resume depends on: a checkpoint that
//! stores the RNG state mid-run continues the *same* random stream
//! (dropout masks, noise draws) as an uninterrupted run would.

use serde::{Deserialize, Serialize};

/// The complete, serialisable state of a [`Rng`]. Capturing and restoring
/// it is exact: the restored generator produces the identical stream the
/// original would have produced from the capture point on.
#[derive(Serialize, Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// xoshiro256++ state word 0.
    pub s0: u64,
    /// xoshiro256++ state word 1.
    pub s1: u64,
    /// xoshiro256++ state word 2.
    pub s2: u64,
    /// xoshiro256++ state word 3.
    pub s3: u64,
    /// Cached second output of the Box–Muller transform.
    pub spare_normal: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG with the handful of sampling helpers used across the crates.
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a deterministic generator from `seed`.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Snapshots the generator's complete state.
    pub fn state(&self) -> RngState {
        RngState {
            s0: self.s[0],
            s1: self.s[1],
            s2: self.s[2],
            s3: self.s[3],
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator from a captured state.
    pub fn from_state(state: RngState) -> Self {
        Self {
            s: [state.s0, state.s1, state.s2, state.s3],
            spare_normal: state.spare_normal,
        }
    }

    /// Overwrites this generator's state in place.
    pub fn restore(&mut self, state: RngState) {
        self.s = [state.s0, state.s1, state.s2, state.s3];
        self.spare_normal = state.spare_normal;
    }

    /// The raw xoshiro256++ output.
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f32 in `[0, 1)` (24 random mantissa bits).
    fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform f64 in `[0, 1)` (53 random mantissa bits).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Debiased integer sample in `[0, span)` via rejection sampling.
    fn below_u64(&mut self, span: u64) -> u64 {
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        lo + self.unit_f32() * (hi - lo)
    }

    /// Uniform sample in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.below_u64(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f32 = 1.0 - self.unit_f32();
        let u2: f32 = self.unit_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Derives an independent child generator (useful to keep sub-streams
    /// stable when code paths are reordered).
    pub fn fork(&mut self) -> Rng {
        Rng::seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    /// The inline xoshiro256++ must produce the exact streams the previous
    /// `rand::StdRng`-backed implementation did, so that seeds recorded in
    /// EXPERIMENTS.md and existing checkpoints stay meaningful.
    #[test]
    fn matches_rand_stdrng_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng as _, SeedableRng};
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut ours = Rng::seed(seed);
            let mut theirs = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                assert_eq!(ours.uniform(-1.0, 1.0), theirs.gen_range(-1.0f32..1.0));
            }
            for _ in 0..64 {
                assert_eq!(ours.below(17), theirs.gen_range(0..17usize));
            }
            for _ in 0..64 {
                assert_eq!(ours.chance(0.3), theirs.gen_bool(0.3));
            }
            assert_eq!(ours.next_u64(), theirs.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = Rng::seed(99);
        // Burn an odd number of normals so a spare is cached.
        for _ in 0..7 {
            a.normal();
        }
        let snap = a.state();
        let mut b = Rng::from_state(snap);
        let expect: Vec<f32> = (0..32).map(|_| a.normal()).collect();
        let got: Vec<f32> = (0..32).map(|_| b.normal()).collect();
        assert_eq!(expect, got);
        // And the JSON round trip is exact too.
        let json = serde_json::to_string(&snap).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let mut c = Rng::from_state(back);
        let mut d = Rng::from_state(snap);
        for _ in 0..32 {
            assert_eq!(c.uniform(0.0, 1.0), d.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn restore_in_place_rewinds() {
        let mut rng = Rng::seed(5);
        let snap = rng.state();
        let first: Vec<usize> = (0..16).map(|_| rng.below(1000)).collect();
        rng.restore(snap);
        let replay: Vec<usize> = (0..16).map(|_| rng.below(1000)).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed(3);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_differ() {
        let mut rng = Rng::seed(9);
        let mut c1 = rng.fork();
        let mut c2 = rng.fork();
        let a: Vec<f32> = (0..10).map(|_| c1.uniform(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..10).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(a, b);
    }
}
