//! Reverse-mode automatic differentiation.
//!
//! A [`Var`] is a cheap reference-counted handle to a node in a dynamically
//! built computation graph. Every operation records (a) its output value,
//! (b) handles to its parents, and (c) a backward closure that converts the
//! gradient w.r.t. the output into gradients w.r.t. each parent.
//!
//! Calling [`Var::backward`] on a scalar output topologically sorts the
//! reachable subgraph and accumulates gradients into every *trainable* leaf
//! ([`Var::param`]). Graphs are freed automatically when the last handle to
//! the output is dropped; parameters survive across steps because the model
//! owns handles to them.

mod index;
mod linalg;
mod loss;
mod ops;

use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::tensor::Tensor;

/// Gradient function: `(grad_out, out_value, parents) -> grad per parent`.
///
/// A `None` entry means "no gradient flows to this parent" (e.g. an index
/// tensor or a detached input).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &Tensor, &[Var]) -> Vec<Option<Tensor>>>;

pub(crate) struct Node {
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    /// Trainable leaf: gradients are retained here after `backward()`.
    trainable: bool,
    /// Whether this node is on a path from a trainable leaf (gradients must
    /// flow through it).
    needs_grad: bool,
}

impl Drop for Node {
    /// Iterative drop: a long op chain (e.g. a recurrent encoder unrolled
    /// over many snapshots) would otherwise recurse through `Rc<Node>` drops
    /// and overflow the stack.
    fn drop(&mut self) {
        let mut stack = std::mem::take(&mut self.parents);
        while let Some(parent) = stack.pop() {
            let Var { node } = parent;
            if let Some(mut inner) = Rc::into_inner(node) {
                stack.append(&mut std::mem::take(&mut inner.parents));
            }
        }
    }
}

/// An autograd variable: a shared handle to a tensor plus its position in the
/// computation graph.
#[derive(Clone)]
pub struct Var {
    pub(crate) node: Rc<Node>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Var(shape={:?}, trainable={}, needs_grad={})",
            self.node.value.borrow().shape(),
            self.node.trainable,
            self.node.needs_grad
        )
    }
}

impl Var {
    // --------------------------------------------------------------- leaves

    /// A trainable leaf. Gradients accumulate here during `backward()`.
    pub fn param(value: Tensor) -> Var {
        Var {
            node: Rc::new(Node {
                value: RefCell::new(value),
                grad: RefCell::new(None),
                parents: Vec::new(),
                backward: None,
                trainable: true,
                needs_grad: true,
            }),
        }
    }

    /// A non-trainable leaf (input data); no gradient is retained.
    pub fn constant(value: Tensor) -> Var {
        Var {
            node: Rc::new(Node {
                value: RefCell::new(value),
                grad: RefCell::new(None),
                parents: Vec::new(),
                backward: None,
                trainable: false,
                needs_grad: false,
            }),
        }
    }

    /// Convenience: a constant scalar.
    pub fn scalar(v: f32) -> Var {
        Var::constant(Tensor::scalar(v))
    }

    /// Internal: an interior node produced by an op.
    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        let needs_grad = parents.iter().any(|p| p.node.needs_grad);
        Var {
            node: Rc::new(Node {
                value: RefCell::new(value),
                grad: RefCell::new(None),
                parents,
                backward: if needs_grad { Some(backward) } else { None },
                trainable: false,
                needs_grad,
            }),
        }
    }

    // ------------------------------------------------------------ accessors

    /// Borrow of the current value.
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.node.value.borrow()
    }

    /// Clone of the current value.
    pub fn to_tensor(&self) -> Tensor {
        self.node.value.borrow().clone()
    }

    /// Shape of the current value.
    pub fn shape(&self) -> Vec<usize> {
        self.node.value.borrow().shape().to_vec()
    }

    /// Scalar value of a one-element variable.
    pub fn item(&self) -> f32 {
        self.node.value.borrow().item()
    }

    /// Whether this is a trainable leaf.
    pub fn is_param(&self) -> bool {
        self.node.trainable
    }

    /// Accumulated gradient of a trainable leaf (if `backward` ran).
    pub fn grad(&self) -> Option<Tensor> {
        self.node.grad.borrow().clone()
    }

    /// Clears the stored gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Replaces the stored gradient (used by gradient clipping).
    pub(crate) fn set_grad(&self, g: Tensor) {
        *self.node.grad.borrow_mut() = Some(g);
    }

    /// Overwrites the value in place (used by optimizers; shape must match).
    pub fn set_value(&self, value: Tensor) {
        let mut v = self.node.value.borrow_mut();
        assert_eq!(v.shape(), value.shape(), "set_value must preserve shape");
        *v = value;
    }

    /// Applies `f` to the value in place (used by optimizers and noise
    /// injection).
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.value.borrow_mut());
    }

    /// A new constant leaf sharing this variable's current value; gradients
    /// do not flow through it.
    pub fn detach(&self) -> Var {
        Var::constant(self.to_tensor())
    }

    // -------------------------------------------------------------- engine

    /// Runs reverse-mode differentiation from this (scalar) output,
    /// accumulating gradients into every reachable trainable leaf.
    pub fn backward(&self) {
        assert_eq!(
            self.node.value.borrow().numel(),
            1,
            "backward() requires a scalar output, got shape {:?}",
            self.node.value.borrow().shape()
        );
        self.backward_with(Tensor::ones(self.node.value.borrow().shape()));
    }

    /// Runs backward with an explicit seed gradient (same shape as the
    /// output value).
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(
            seed.shape(),
            self.node.value.borrow().shape(),
            "seed gradient shape mismatch"
        );
        // Topological order over the needs_grad subgraph.
        let order = topo_order(self);
        // Transient gradient accumulation keyed by node pointer.
        // logcl-allow(L003): lookup-only map (never iterated) — traversal order comes from `order`, so hash order cannot leak into results
        let mut grads: HashMap<*const Node, Tensor> = HashMap::with_capacity(order.len());
        grads.insert(Rc::as_ptr(&self.node), seed);

        for var in order.iter().rev() {
            let key = Rc::as_ptr(&var.node);
            let Some(grad_out) = grads.remove(&key) else {
                continue;
            };
            if var.node.trainable {
                let mut slot = var.node.grad.borrow_mut();
                match slot.as_mut() {
                    Some(g) => g.add_assign(&grad_out),
                    None => *slot = Some(grad_out.clone()),
                }
            }
            if let Some(back) = &var.node.backward {
                let out_val = var.node.value.borrow();
                let parent_grads = back(&grad_out, &out_val, &var.node.parents);
                drop(out_val);
                assert_eq!(
                    parent_grads.len(),
                    var.node.parents.len(),
                    "backward fn returned wrong number of gradients"
                );
                for (parent, g) in var.node.parents.iter().zip(parent_grads) {
                    let (Some(g), true) = (g, parent.node.needs_grad) else {
                        continue;
                    };
                    let pkey = Rc::as_ptr(&parent.node);
                    match grads.get_mut(&pkey) {
                        Some(acc) => acc.add_assign(&g),
                        None => {
                            grads.insert(pkey, g);
                        }
                    }
                }
            }
        }
    }
}

/// Iterative DFS producing a topological order (parents before children) of
/// the `needs_grad` subgraph rooted at `root`.
fn topo_order(root: &Var) -> Vec<Var> {
    let mut order: Vec<Var> = Vec::new();
    // logcl-allow(L003): lookup-only visited-set (never iterated) — order comes from the DFS stack, so hash order cannot leak into results
    let mut state: HashMap<*const Node, bool> = HashMap::new(); // false=open, true=done
    let mut stack: Vec<(Var, usize)> = vec![(root.clone(), 0)];
    while let Some((var, child_idx)) = stack.pop() {
        let key = Rc::as_ptr(&var.node);
        if child_idx == 0 {
            match state.get(&key) {
                Some(_) => continue, // already visited (or in progress via another path)
                None => {
                    state.insert(key, false);
                }
            }
        }
        // Find the next parent that needs gradients.
        let parents = &var.node.parents;
        let mut i = child_idx;
        while i < parents.len() && !parents[i].node.needs_grad {
            i += 1;
        }
        if i < parents.len() {
            let parent = parents[i].clone();
            stack.push((var, i + 1));
            let pkey = Rc::as_ptr(&parent.node);
            if !state.contains_key(&pkey) {
                stack.push((parent, 0));
            }
            continue;
        }
        state.insert(key, true);
        order.push(var);
    }
    order
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient verification used across op tests.

    use super::*;

    /// Checks the analytic gradient of `f` w.r.t. every input against central
    /// finite differences.
    pub fn check<F>(inputs: &[Tensor], f: F, tol: f32)
    where
        F: Fn(&[Var]) -> Var,
    {
        let vars: Vec<Var> = inputs.iter().cloned().map(Var::param).collect();
        let out = f(&vars);
        assert_eq!(out.shape(), vec![1], "gradcheck requires scalar output");
        out.backward();
        let analytic: Vec<Tensor> = vars
            .iter()
            .map(|v| v.grad().unwrap_or_else(|| Tensor::zeros(&v.shape())))
            .collect();

        let h = 1e-2f32;
        for (pi, input) in inputs.iter().enumerate() {
            for ei in 0..input.numel() {
                let eval = |delta: f32| {
                    let perturbed: Vec<Var> = inputs.iter().cloned().map(Var::param).collect();
                    perturbed[pi].update_value(|t| t.data_mut()[ei] += delta);
                    f(&perturbed).item()
                };
                let numeric = (eval(h) - eval(-h)) / (2.0 * h);
                let got = analytic[pi].data()[ei];
                let denom = 1.0f32.max(numeric.abs()).max(got.abs());
                assert!(
                    (numeric - got).abs() / denom < tol,
                    "grad mismatch input {pi} elem {ei}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_accumulates_gradient() {
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.mul(&x); // x^2
        let z = y.sum();
        z.backward();
        assert!((x.grad().unwrap().item() - 6.0).abs() < 1e-5);
        // Second backward on a fresh graph accumulates.
        let z2 = x.mul(&x).sum();
        z2.backward();
        assert!((x.grad().unwrap().item() - 12.0).abs() < 1e-5);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn constants_get_no_gradient() {
        let x = Var::constant(Tensor::scalar(3.0));
        let y = x.mul(&x).sum();
        y.backward();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_sums_paths() {
        // z = x*x + x*x => dz/dx = 4x
        let x = Var::param(Tensor::scalar(2.0));
        let a = x.mul(&x);
        let b = x.mul(&x);
        let z = a.add(&b).sum();
        z.backward();
        assert!((x.grad().unwrap().item() - 8.0).abs() < 1e-5);
    }

    #[test]
    fn shared_subexpression_counted_once_per_use() {
        // y = (x*x); z = y + y => dz/dx = 4x
        let x = Var::param(Tensor::scalar(3.0));
        let y = x.mul(&x);
        let z = y.add(&y).sum();
        z.backward();
        assert!((x.grad().unwrap().item() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::param(Tensor::scalar(2.0));
        let y = x.mul(&x).detach();
        let z = y.mul(&x).sum(); // only the direct x factor is differentiated
        z.backward();
        assert!((x.grad().unwrap().item() - 4.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "requires a scalar output")]
    fn backward_on_non_scalar_panics() {
        let x = Var::param(Tensor::ones(&[2, 2]));
        x.backward();
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let x = Var::param(Tensor::scalar(1.0));
        let mut y = x.clone();
        for _ in 0..20_000 {
            y = y.add_scalar(0.0);
        }
        y.sum().backward();
        assert!((x.grad().unwrap().item() - 1.0).abs() < 1e-5);
    }
}
