//! Fused loss and normalization ops.

use super::Var;
use crate::kernels::{self, ops};
use crate::tensor::Tensor;

impl Var {
    /// Mean cross-entropy between row logits and integer targets:
    /// `-(1/N) Σ log softmax(logits)[i, targets[i]]`.
    ///
    /// The op is fused (log-sum-exp shift inside) so large logits remain
    /// stable; the backward pass is `(softmax - onehot) / N`.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        let logits = self.value();
        assert_eq!(logits.rank(), 2, "cross_entropy expects [N, C] logits");
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(targets.len(), n, "cross_entropy target count mismatch");
        assert!(n > 0, "cross_entropy on empty batch");
        if let Some(&bad) = targets.iter().find(|&&t| t >= c) {
            // logcl-allow(L002): bounds contract, same class as the adjacent asserts — a bad target is a caller bug, not a representable state
            panic!("target {bad} out of bounds for {c} classes");
        }
        let loss =
            ops::cross_entropy_fwd(&*kernels::backend(), logits.data(), n, c, targets) / n as f32;
        drop(logits);
        let targets_owned: Vec<usize> = targets.to_vec();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g, _, parents| {
                let logits = parents[0].value();
                let scale = g.item() / n as f32;
                let grad = ops::cross_entropy_bwd(
                    &*kernels::backend(),
                    logits.data(),
                    n,
                    c,
                    &targets_owned,
                    scale,
                );
                vec![Some(Tensor::from_vec(grad, &[n, c]))]
            }),
        )
    }

    /// Row-wise L2 normalization onto the unit sphere, `y = x / max(‖x‖, ε)`
    /// — the projection used by the contrastive heads (Eq. 15–16).
    pub fn l2_normalize_rows(&self) -> Var {
        let x = self.value();
        assert_eq!(x.rank(), 2, "l2_normalize_rows expects rank-2");
        let (n, d) = (x.shape()[0], x.shape()[1]);
        let (out, norms) = ops::l2_normalize_rows_fwd(&*kernels::backend(), x.data(), n, d);
        drop(x);
        Var::from_op(
            Tensor::from_vec(out, &[n, d]),
            vec![self.clone()],
            Box::new(move |g, out_val, _| {
                // grad_x = (g - (g·y) y) / ‖x‖ per row
                let grad = ops::l2_normalize_rows_bwd(
                    &*kernels::backend(),
                    out_val.data(),
                    g.data(),
                    &norms,
                    n,
                    d,
                );
                vec![Some(Tensor::from_vec(grad, &[n, d]))]
            }),
        )
    }

    /// Binary cross-entropy with logits against dense multi-hot labels of
    /// the same shape (Eq. 20's multi-label view), averaged over rows.
    pub fn bce_with_logits(&self, labels: &Tensor) -> Var {
        let x = self.value();
        assert_eq!(x.shape(), labels.shape(), "bce label shape mismatch");
        assert_eq!(x.rank(), 2, "bce_with_logits expects [N, C]");
        let n = x.shape()[0].max(1) as f32;
        // loss = max(x,0) - x*y + ln(1 + e^{-|x|}), the numerically stable form.
        let loss = ops::bce_fwd(&*kernels::backend(), x.data(), labels.data()) / n;
        drop(x);
        let labels_owned = labels.clone();
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g, _, parents| {
                let x = parents[0].value();
                let scale = g.item() / n;
                let grad = ops::bce_bwd(&*kernels::backend(), x.data(), labels_owned.data(), scale);
                vec![Some(Tensor::from_vec(grad, x.shape()))]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check;
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn cross_entropy_matches_manual() {
        // Uniform logits over C classes -> loss = ln(C).
        let logits = Var::constant(Tensor::zeros(&[2, 4]));
        let loss = logits.cross_entropy(&[0, 3]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad() {
        let mut rng = Rng::seed(8);
        let logits = Tensor::randn(&[3, 5], 1.0, &mut rng);
        check(&[logits], |v| v[0].cross_entropy(&[1, 4, 0]), 1e-2);
    }

    #[test]
    fn cross_entropy_is_stable_for_large_logits() {
        let logits = Var::param(Tensor::from_vec(vec![500.0, -500.0, 0.0, 1.0], &[1, 4]));
        let loss = logits.cross_entropy(&[0]);
        assert!(loss.item().is_finite());
        loss.backward();
        assert!(logits.grad().unwrap().all_finite());
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let weak = Var::constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]));
        let strong = Var::constant(Tensor::from_vec(vec![5.0, 0.0], &[1, 2]));
        assert!(strong.cross_entropy(&[0]).item() < weak.cross_entropy(&[0]).item());
    }

    #[test]
    fn l2_normalize_makes_unit_rows() {
        let mut rng = Rng::seed(9);
        let x = Var::constant(Tensor::randn(&[4, 6], 2.0, &mut rng));
        let y = x.l2_normalize_rows();
        for i in 0..4 {
            let norm: f32 = y.value().row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_normalize_grad() {
        let mut rng = Rng::seed(10);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 4], 1.0, &mut rng);
        check(
            &[x],
            move |v| {
                v[0].l2_normalize_rows()
                    .mul(&Var::constant(w.clone()))
                    .sum()
            },
            2e-2,
        );
    }

    #[test]
    fn l2_normalize_survives_zero_row() {
        let x = Var::param(Tensor::zeros(&[1, 3]));
        let y = x.l2_normalize_rows();
        assert!(y.value().all_finite());
        y.sum().backward();
        assert!(x.grad().unwrap().all_finite());
    }

    #[test]
    fn bce_grad_and_value() {
        // logit 0 against label 0.5 -> loss ln 2.
        let x = Var::constant(Tensor::zeros(&[1, 1]));
        let labels = Tensor::from_vec(vec![0.5], &[1, 1]);
        assert!((x.bce_with_logits(&labels).item() - (2.0f32).ln()).abs() < 1e-5);

        let mut rng = Rng::seed(14);
        let logits = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let labels = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[2, 3]);
        check(&[logits], move |v| v[0].bce_with_logits(&labels), 1e-2);
    }
}
