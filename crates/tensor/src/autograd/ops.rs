//! Elementwise arithmetic, activations and reductions for [`Var`].

use super::Var;
use crate::kernels::{self, ops, Binary, Unary};
use crate::tensor::Tensor;

impl Var {
    // ------------------------------------------------------ broadcast arith

    /// Broadcasting addition.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                vec![
                    Some(g.reduce_to(parents[0].value().shape())),
                    Some(g.reduce_to(parents[1].value().shape())),
                ]
            }),
        )
    }

    /// Broadcasting subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                vec![
                    Some(g.reduce_to(parents[0].value().shape())),
                    Some(g.scale(-1.0).reduce_to(parents[1].value().shape())),
                ]
            }),
        )
    }

    /// Broadcasting elementwise multiplication.
    pub fn mul(&self, other: &Var) -> Var {
        let value = self.value().mul(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                vec![
                    Some(g.mul(&b).reduce_to(a.shape())),
                    Some(g.mul(&a).reduce_to(b.shape())),
                ]
            }),
        )
    }

    /// Broadcasting elementwise division.
    pub fn div(&self, other: &Var) -> Var {
        let value = self.value().div(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                let ga = g.div(&b).reduce_to(a.shape());
                // d(a/b)/db = -a / b^2
                let gb = g.mul(&a).div(&b.mul(&b)).scale(-1.0).reduce_to(b.shape());
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Multiplies every element by the constant `s`.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _, _| vec![Some(g.scale(s))]),
        )
    }

    /// Adds the constant `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let value = self.value().unary(Unary::AddScalar(s));
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, _| vec![Some(g.clone())]),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    // ----------------------------------------------------------- activations

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().unary(Unary::Sigmoid);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, out, _| vec![Some(g.binary(out, Binary::SigmoidBwd))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().unary(Unary::Tanh);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, out, _| vec![Some(g.binary(out, Binary::TanhBwd))]),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.leaky_relu(0.0)
    }

    /// Leaky ReLU with negative slope `slope`.
    ///
    /// The paper's σ₁ is RReLU; in evaluation mode RReLU is a leaky ReLU with
    /// the mean slope of its range (PyTorch default range [1/8, 1/3] → slope
    /// 0.2292), which is what we use deterministically. See DESIGN.md.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let value = self.value().unary(Unary::LeakyRelu(slope));
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _, parents| {
                let x = parents[0].value();
                vec![Some(g.binary(&x, Binary::LeakyReluBwd(slope)))]
            }),
        )
    }

    /// RReLU in its deterministic (evaluation-mode) form.
    pub fn rrelu(&self) -> Var {
        self.leaky_relu(crate::nn::RRELU_EVAL_SLOPE)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().unary(Unary::Exp);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, out, _| vec![Some(g.mul(out))]),
        )
    }

    /// Elementwise natural logarithm (inputs clamped at 1e-12 for stability).
    pub fn ln(&self) -> Var {
        let value = self.value().unary(Unary::LnClamped);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, parents| {
                let x = parents[0].value();
                vec![Some(g.binary(&x, Binary::LnBwd))]
            }),
        )
    }

    /// Elementwise cosine (the paper's periodic time activation, Eq. 2).
    pub fn cos(&self) -> Var {
        let value = self.value().unary(Unary::Cos);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, parents| {
                let x = parents[0].value();
                vec![Some(g.binary(&x, Binary::CosBwd))]
            }),
        )
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements, as a scalar variable.
    pub fn sum(&self) -> Var {
        let value = Tensor::scalar(self.value().sum_all());
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, parents| {
                let shape = parents[0].value().shape().to_vec();
                vec![Some(Tensor::full(&shape, g.item()))]
            }),
        )
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean(&self) -> Var {
        let n = self.value().numel().max(1) as f32;
        self.sum().scale(1.0 / n)
    }

    /// Column-wise mean of a rank-2 variable: `[N, D] -> [D]`.
    pub fn mean_rows(&self) -> Var {
        let value = self.value().mean_rows();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, parents| {
                let shape = parents[0].value().shape().to_vec();
                let n = shape[0].max(1) as f32;
                // Spread g/N back over every row.
                let gb = g.reshape(&[1, g.numel()]);
                vec![Some(Tensor::ones(&[shape[0], 1]).mul(&gb).scale(1.0 / n))]
            }),
        )
    }

    /// Row-wise softmax of a rank-2 variable.
    pub fn softmax_rows(&self) -> Var {
        let value = self.value().softmax_rows();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, out, _| {
                // dx = y * (g - sum(g*y, row))
                let (n, d) = (out.shape()[0], out.shape()[1]);
                let grad = ops::softmax_rows_bwd(&*kernels::backend(), out.data(), g.data(), n, d);
                vec![Some(Tensor::from_vec(grad, &[n, d]))]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check;
    use super::*;
    use crate::rng::Rng;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn add_forward_and_grad() {
        check(
            &[
                t(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]),
                t(vec![0.3, 0.7], &[2]),
            ],
            |v| v[0].add(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn sub_grad_broadcast_column() {
        check(
            &[
                t(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]),
                t(vec![0.3, 0.7], &[2, 1]),
            ],
            |v| v[0].sub(&v[1]).mul(&v[0]).sum(),
            1e-2,
        );
    }

    #[test]
    fn mul_div_grads() {
        check(
            &[
                t(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]),
                t(vec![1.3, 0.7, 2.0, -1.5], &[2, 2]),
            ],
            |v| v[0].mul(&v[1]).div(&v[1].mul(&v[1]).add_scalar(1.0)).sum(),
            1e-2,
        );
    }

    #[test]
    fn activation_grads() {
        // No exact zeros: finite differences disagree with the subgradient
        // convention at the ReLU kink.
        let x = t(vec![0.5, -0.3, 1.2, -2.0, 0.4, 0.05], &[2, 3]);
        let xs = std::slice::from_ref(&x);
        check(xs, |v| v[0].sigmoid().sum(), 1e-2);
        check(xs, |v| v[0].tanh().sum(), 1e-2);
        check(xs, |v| v[0].exp().sum(), 1e-2);
        check(xs, |v| v[0].cos().sum(), 1e-2);
        check(xs, |v| v[0].leaky_relu(0.2).sum(), 2e-2);
    }

    #[test]
    fn ln_grad_positive_domain() {
        check(
            &[t(vec![0.5, 1.3, 2.2, 0.9], &[4])],
            |v| v[0].ln().sum(),
            1e-2,
        );
    }

    #[test]
    fn softmax_rows_grad() {
        let mut rng = Rng::seed(5);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let wc = w.clone();
        check(
            &[x],
            move |v| v[0].softmax_rows().mul(&Var::constant(wc.clone())).sum(),
            2e-2,
        );
    }

    #[test]
    fn mean_rows_grad() {
        check(
            &[t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2])],
            |v| {
                let m = v[0].mean_rows();
                m.mul(&m).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn sigmoid_saturates_sanely() {
        let x = Var::constant(t(vec![40.0, -40.0], &[2]));
        let y = x.sigmoid();
        assert!((y.value().data()[0] - 1.0).abs() < 1e-6);
        assert!(y.value().data()[1] < 1e-6);
    }

    #[test]
    fn mean_matches_manual() {
        let x = Var::constant(t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        assert!((x.mean().item() - 2.5).abs() < 1e-6);
    }
}
