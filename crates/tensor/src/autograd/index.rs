//! Indexing ops: row gather / scatter-add (the message-passing primitives)
//! and the im2col unrolling used by the ConvTransE decoder.

use super::Var;
use crate::kernels::{self, ops};
use crate::tensor::Tensor;

impl Var {
    /// Gathers rows of a rank-2 variable: `out[i] = self[idx[i]]`.
    ///
    /// This is the embedding-lookup / message-gather primitive; its backward
    /// pass scatter-adds the output gradient into the source rows.
    pub fn gather_rows(&self, idx: &[usize]) -> Var {
        let value = self.value().gather_rows(idx);
        let idx_owned: Vec<usize> = idx.to_vec();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _, parents| {
                let n = parents[0].value().shape()[0];
                vec![Some(g.scatter_add_rows(&idx_owned, n))]
            }),
        )
    }

    /// Scatter-adds rows of `self` (`[M, D]`) into a fresh `[n, D]` result at
    /// positions `idx` — the message-aggregation primitive. Backward gathers.
    pub fn scatter_add_rows(&self, idx: &[usize], n: usize) -> Var {
        let value = self.value().scatter_add_rows(idx, n);
        let idx_owned: Vec<usize> = idx.to_vec();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, _, _| vec![Some(g.gather_rows(&idx_owned))]),
        )
    }

    /// im2col unrolling for a width-3, zero-padded, 2-input-channel 1-D
    /// convolution over embedding positions (the ConvTransE stem).
    ///
    /// Given entity rows `self` (`[B, D]`) and relation rows `rel` (`[B, D]`)
    /// produces `[B * D, 6]` where row `b * D + j` holds
    /// `[e[j-1], e[j], e[j+1], r[j-1], r[j], r[j+1]]` (zero padding at the
    /// boundaries). Multiplying by a `[6, K]` kernel matrix then realises a
    /// `K`-channel convolution.
    pub fn conv_im2col(&self, rel: &Var) -> Var {
        let e = self.value();
        let r = rel.value();
        assert_eq!(e.rank(), 2, "conv_im2col entity input must be rank-2");
        assert_eq!(e.shape(), r.shape(), "conv_im2col inputs must share shape");
        let (b, d) = (e.shape()[0], e.shape()[1]);
        let data = ops::im2col3(&*kernels::backend(), e.data(), r.data(), b, d);
        drop(e);
        drop(r);
        let value = Tensor::from_vec(data, &[b * d, 6]);
        Var::from_op(
            value,
            vec![self.clone(), rel.clone()],
            Box::new(move |g, _, _| {
                let (ge, gr) = ops::im2col3_bwd(&*kernels::backend(), g.data(), b, d);
                vec![
                    Some(Tensor::from_vec(ge, &[b, d])),
                    Some(Tensor::from_vec(gr, &[b, d])),
                ]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check;
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn gather_grad_accumulates_duplicates() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        check(&[x], |v| v[0].gather_rows(&[0, 1, 0]).sum(), 1e-2);

        let x = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        x.gather_rows(&[0, 0, 0]).sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn scatter_add_grad() {
        let mut rng = Rng::seed(4);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        check(
            &[x],
            |v| {
                let s = v[0].scatter_add_rows(&[1, 0, 1, 2], 3);
                s.mul(&s).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn gather_then_scatter_is_linear() {
        // scatter(gather(x)) with matching indices doubles rows gathered twice.
        let x = Var::param(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let y = x.gather_rows(&[1, 1]).scatter_add_rows(&[0, 0], 2);
        assert_eq!(y.value().data(), &[6.0, 8.0, 0.0, 0.0]);
    }

    #[test]
    fn im2col_layout() {
        let e = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let r = Var::constant(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]));
        let x = e.conv_im2col(&r);
        assert_eq!(x.value().shape(), &[3, 6]);
        // j = 0: left-padded
        assert_eq!(x.value().row(0), &[0.0, 1.0, 2.0, 0.0, 10.0, 20.0]);
        // j = 1: full window
        assert_eq!(x.value().row(1), &[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        // j = 2: right-padded
        assert_eq!(x.value().row(2), &[2.0, 3.0, 0.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn im2col_grad() {
        let mut rng = Rng::seed(21);
        let e = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let r = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let k = Tensor::randn(&[6, 3], 1.0, &mut rng);
        check(
            &[e, r],
            move |v| {
                let x = v[0].conv_im2col(&v[1]);
                x.matmul(&Var::constant(k.clone())).tanh().sum()
            },
            2e-2,
        );
    }
}
