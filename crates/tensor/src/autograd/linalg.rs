//! Linear-algebra and layout ops for [`Var`]: matmul, transpose, reshape and
//! concatenation.

use super::Var;
use crate::kernels::{self, ops};
use crate::tensor::Tensor;

impl Var {
    /// Matrix product `[N, K] x [K, M] -> [N, M]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let value = self.value().matmul(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                // dA = G B^T ; dB = A^T G
                let ga = g.matmul(&b.transpose2());
                let gb = a.transpose2().matmul(g);
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Matrix product for a lhs with many structural zeros (one-hot gathers,
    /// zero-padded im2col windows). Forward and the `dB = Aᵀ G` backward use
    /// the sparse-skipping kernel (`Aᵀ` shares the zeros of `A`); `dA` is
    /// dense.
    pub fn matmul_sparse_lhs(&self, other: &Var) -> Var {
        let value = self.value().matmul_sparse_lhs(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, _, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                let ga = g.matmul(&b.transpose2());
                let gb = a.transpose2().matmul_sparse_lhs(g);
                vec![Some(ga), Some(gb)]
            }),
        )
    }

    /// Transpose of a rank-2 variable.
    pub fn transpose2(&self) -> Var {
        let value = self.value().transpose2();
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, _| vec![Some(g.transpose2())]),
        )
    }

    /// Reshape preserving element count.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let value = self.value().reshape(shape);
        Var::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, _, parents| vec![Some(g.reshape(parents[0].value().shape()))]),
        )
    }

    /// Column-wise concatenation of two rank-2 variables with equal row
    /// counts: `[N, A] || [N, B] -> [N, A + B]`.
    pub fn concat_cols(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        assert_eq!(a.rank(), 2, "concat_cols lhs must be rank-2");
        assert_eq!(b.rank(), 2, "concat_cols rhs must be rank-2");
        assert_eq!(a.shape()[0], b.shape()[0], "concat_cols row mismatch");
        let (n, da, db) = (a.shape()[0], a.shape()[1], b.shape()[1]);
        let data = ops::concat_cols(&*kernels::backend(), a.data(), b.data(), n, da, db);
        drop(a);
        drop(b);
        let value = Tensor::from_vec(data, &[n, da + db]);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, _, _| {
                let (ga, gb) = ops::split_cols(&*kernels::backend(), g.data(), n, da, db);
                vec![
                    Some(Tensor::from_vec(ga, &[n, da])),
                    Some(Tensor::from_vec(gb, &[n, db])),
                ]
            }),
        )
    }

    /// Row-wise concatenation (vertical stack) of rank-2 variables with
    /// equal column counts.
    pub fn concat_rows(vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_rows needs at least one input");
        let d = vars[0].value().shape()[1];
        let mut rows = Vec::with_capacity(vars.len());
        let mut data = Vec::new();
        for v in vars {
            let t = v.value();
            assert_eq!(t.rank(), 2, "concat_rows inputs must be rank-2");
            assert_eq!(t.shape()[1], d, "concat_rows column mismatch");
            rows.push(t.shape()[0]);
            data.extend_from_slice(t.data());
        }
        let n: usize = rows.iter().sum();
        let value = Tensor::from_vec(data, &[n, d]);
        Var::from_op(
            value,
            vars.to_vec(),
            Box::new(move |g, _, _| {
                let mut out = Vec::with_capacity(rows.len());
                let mut offset = 0usize;
                for &r in &rows {
                    let chunk = g.data()[offset * d..(offset + r) * d].to_vec();
                    out.push(Some(Tensor::from_vec(chunk, &[r, d])));
                    offset += r;
                }
                out
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::gradcheck::check;
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn matmul_grad() {
        let mut rng = Rng::seed(11);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
        check(&[a, b], |v| v[0].matmul(&v[1]).sum(), 1e-2);
    }

    #[test]
    fn matmul_chain_grad() {
        let mut rng = Rng::seed(12);
        let a = Tensor::randn(&[2, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3, 3], 0.5, &mut rng);
        check(
            &[a, b],
            |v| v[0].matmul(&v[1]).tanh().matmul(&v[0].transpose2()).sum(),
            2e-2,
        );
    }

    #[test]
    fn transpose_grad() {
        let mut rng = Rng::seed(13);
        let a = Tensor::randn(&[3, 2], 1.0, &mut rng);
        check(
            &[a],
            |v| v[0].transpose2().mul(&v[0].transpose2()).sum(),
            1e-2,
        );
    }

    #[test]
    fn reshape_grad() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        check(
            &[a],
            |v| {
                let r = v[0].reshape(&[3, 2]);
                r.mul(&r).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn concat_cols_forward_and_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let va = Var::constant(a.clone());
        let vb = Var::constant(b.clone());
        let c = va.concat_cols(&vb);
        assert_eq!(c.value().shape(), &[2, 3]);
        assert_eq!(c.value().data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        check(
            &[a, b],
            |v| v[0].concat_cols(&v[1]).mul(&v[0].concat_cols(&v[1])).sum(),
            1e-2,
        );
    }

    #[test]
    fn concat_rows_forward_and_grad() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Var::concat_rows(&[Var::constant(a.clone()), Var::constant(b.clone())]);
        assert_eq!(c.value().shape(), &[3, 2]);
        assert_eq!(c.value().data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        check(
            &[a, b],
            |v| {
                let c = Var::concat_rows(&[v[0].clone(), v[1].clone()]);
                c.mul(&c).sum()
            },
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn concat_cols_row_mismatch_panics() {
        let a = Var::constant(Tensor::ones(&[2, 2]));
        let b = Var::constant(Tensor::ones(&[3, 2]));
        a.concat_cols(&b);
    }
}
