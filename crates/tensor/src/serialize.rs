//! JSON checkpointing of named parameter sets.
//!
//! Checkpoints are plain JSON — human-inspectable and dependency-light —
//! which is acceptable at this reproduction's model sizes (≤ a few hundred
//! thousand weights).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Serialisable form of one tensor.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorRecord {
    fn from(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }
}

impl TensorRecord {
    /// Rebuilds the tensor (validates shape/data consistency).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &self.shape)
    }
}

/// Optional provenance attached to a checkpoint: which model produced it,
/// under which configuration, and how many scalar weights it carries.
/// Lets loaders reject a checkpoint trained under a different configuration
/// with a clear message instead of a shape panic deep in restore.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Model display name (e.g. `LogCL`).
    pub model: String,
    /// A stable fingerprint of the training configuration.
    pub config: String,
    /// Total scalar weight count at save time.
    pub param_count: usize,
}

/// A whole-model checkpoint: name → tensor.
#[derive(Serialize, Deserialize, Debug, Default)]
pub struct Checkpoint {
    /// Parameters keyed by registered name (sorted for stable output).
    pub params: BTreeMap<String, TensorRecord>,
    /// Provenance metadata; absent in checkpoints written before it existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub meta: Option<CheckpointMeta>,
}

impl Checkpoint {
    /// Checks the metadata section (when present) against the loader's
    /// expectations. Legacy checkpoints without metadata pass unconditionally.
    pub fn validate_meta(&self, model: &str, config: &str) -> Result<(), CheckpointError> {
        let Some(meta) = &self.meta else {
            return Ok(());
        };
        if meta.model != model {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was trained by model {:?}, loader expects {model:?}",
                meta.model
            )));
        }
        if meta.config != config {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was trained under config {:?}, loader expects {config:?}",
                meta.config
            )));
        }
        Ok(())
    }
}

/// Errors raised while saving or loading checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
    /// Checkpoint and model disagree on a parameter.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            Self::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Snapshots every parameter of `params` into a [`Checkpoint`].
pub fn snapshot(params: &ParamSet) -> Checkpoint {
    let mut ckpt = Checkpoint::default();
    for (name, var) in params.iter() {
        ckpt.params
            .insert(name.to_string(), TensorRecord::from(&*var.value()));
    }
    ckpt
}

/// Like [`snapshot`], stamping provenance metadata (`param_count` is filled
/// in from `params`).
pub fn snapshot_with_meta(params: &ParamSet, model: &str, config: &str) -> Checkpoint {
    let mut ckpt = snapshot(params);
    ckpt.meta = Some(CheckpointMeta {
        model: model.to_string(),
        config: config.to_string(),
        param_count: params.num_weights(),
    });
    ckpt
}

/// Restores a checkpoint into `params`. Every registered parameter must be
/// present with a matching shape; extra checkpoint entries are an error too
/// (they indicate a model/config mismatch).
pub fn restore(params: &ParamSet, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    if let Some(meta) = &ckpt.meta {
        if meta.param_count != params.num_weights() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint metadata declares {} weights, model has {} \
                 (was it trained under a different configuration?)",
                meta.param_count,
                params.num_weights()
            )));
        }
    }
    if ckpt.params.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            ckpt.params.len(),
            params.len()
        )));
    }
    for (name, var) in params.iter() {
        let rec = ckpt
            .params
            .get(name)
            .ok_or_else(|| CheckpointError::Mismatch(format!("missing parameter {name}")))?;
        if rec.shape != var.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name}: checkpoint shape {:?} vs model {:?}",
                rec.shape,
                var.shape()
            )));
        }
        var.set_value(rec.to_tensor());
    }
    Ok(())
}

/// Saves `params` as JSON at `path`.
pub fn save(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    write(&snapshot(params), path)
}

/// Saves `params` as JSON at `path` with provenance metadata.
pub fn save_with_meta(
    params: &ParamSet,
    model: &str,
    config: &str,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    write(&snapshot_with_meta(params, model, config), path)
}

/// Writes an assembled checkpoint as JSON at `path`.
pub fn write(ckpt: &Checkpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(ckpt)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a checkpoint file without restoring it into any parameter set
/// (validation can then happen before a model is even built).
pub fn read(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Loads a JSON checkpoint from `path` into `params`.
pub fn load(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    restore(params, &read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn sample_params(seed: u64) -> ParamSet {
        let mut rng = Rng::seed(seed);
        let mut params = ParamSet::new();
        params.new_param("a", Tensor::randn(&[3, 2], 1.0, &mut rng));
        params.new_param("b", Tensor::randn(&[4], 1.0, &mut rng));
        params
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let src = sample_params(1);
        let dst = sample_params(2);
        assert_ne!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        let ckpt = snapshot(&src);
        restore(&dst, &ckpt).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        assert_eq!(
            src.get("b").unwrap().to_tensor(),
            dst.get("b").unwrap().to_tensor()
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tensor-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let src = sample_params(3);
        save(&src, &path).unwrap();
        let dst = sample_params(4);
        load(&dst, &path).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let src = sample_params(5);
        let mut ckpt = snapshot(&src);
        ckpt.params.get_mut("a").unwrap().shape = vec![2, 3];
        let err = restore(&src, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn restore_rejects_missing_param() {
        let src = sample_params(6);
        let mut ckpt = snapshot(&src);
        let rec = ckpt.params.remove("a").unwrap();
        ckpt.params.insert("zzz".into(), rec);
        assert!(restore(&src, &ckpt).is_err());
    }

    #[test]
    fn meta_round_trips_and_validates() {
        let src = sample_params(7);
        let ckpt = snapshot_with_meta(&src, "LogCL", "d16-m3");
        let meta = ckpt.meta.as_ref().unwrap();
        assert_eq!(meta.param_count, src.num_weights());
        ckpt.validate_meta("LogCL", "d16-m3").unwrap();
        let err = ckpt.validate_meta("LogCL", "d32-m3").unwrap_err();
        assert!(err.to_string().contains("config"), "{err}");
        let err = ckpt.validate_meta("RE-GCN", "d16-m3").unwrap_err();
        assert!(err.to_string().contains("model"), "{err}");
        // JSON round trip preserves the metadata.
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.meta.as_ref(), Some(meta));
    }

    #[test]
    fn legacy_checkpoint_without_meta_still_loads() {
        let src = sample_params(8);
        let mut json = serde_json::to_string(&snapshot(&src)).unwrap();
        assert!(!json.contains("meta"), "no meta key for legacy layout");
        let ckpt: Checkpoint = serde_json::from_str(&json).unwrap();
        ckpt.validate_meta("anything", "goes").unwrap();
        restore(&sample_params(9), &ckpt).unwrap();
        // And a hand-edited meta with the wrong weight count is rejected
        // before any shape comparison.
        json = serde_json::to_string(&snapshot_with_meta(&src, "m", "c")).unwrap();
        let mut ckpt: Checkpoint = serde_json::from_str(&json).unwrap();
        ckpt.meta.as_mut().unwrap().param_count += 1;
        let err = restore(&sample_params(10), &ckpt).unwrap_err();
        assert!(err.to_string().contains("weights"), "{err}");
    }
}
