//! Durable, checksummed checkpointing of named parameter sets.
//!
//! Payloads are plain JSON — human-inspectable and dependency-light — but
//! every checkpoint written since format version 1 is wrapped in a small
//! binary container that makes loading fail-closed:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"LGCL"
//! 4       4     CRC32 (IEEE) over bytes 8.. , little-endian
//! 8       4     format version, little-endian
//! 12      8     payload length, little-endian
//! 20      n     payload (JSON)
//! ```
//!
//! The CRC covers the version and length fields as well as the payload, so
//! *any* single corrupted bit after the magic surfaces as
//! [`CheckpointError::Corrupt`] — never a panic, never a silently wrong
//! load. A genuine file written by a newer format version has a valid CRC
//! and is reported as [`CheckpointError::VersionSkew`] instead.
//!
//! Writes are atomic and durable: the container is written to a sibling
//! `*.tmp` file, fsynced, renamed over the destination, and the directory
//! is fsynced — a crash mid-write leaves either the old checkpoint or the
//! new one, never a torn file. Pre-container (bare JSON) checkpoints are
//! still readable.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Current checkpoint container format version.
pub const FORMAT_VERSION: u32 = 1;

/// Container magic bytes.
pub const MAGIC: [u8; 4] = *b"LGCL";

// ------------------------------------------------------------------- crc32

/// CRC32 (IEEE 802.3, reflected, init `!0`, final xor `!0`) — the polynomial
/// every `cksum`-family tool uses, implemented table-driven and dependency
/// free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// ------------------------------------------------------------------ records

/// Serialisable form of one tensor.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorRecord {
    fn from(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }
}

impl TensorRecord {
    /// Number of scalars the declared shape implies.
    fn declared_len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Rebuilds the tensor, rejecting records whose data length does not
    /// match the declared shape instead of panicking deep in `Tensor`.
    pub fn try_to_tensor(&self) -> Result<Tensor, CheckpointError> {
        if self.declared_len() != self.data.len() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "record declares shape {:?} ({} scalars) but carries {} values",
                self.shape,
                self.declared_len(),
                self.data.len()
            )));
        }
        Ok(Tensor::from_vec(self.data.clone(), &self.shape))
    }

    /// Rebuilds the tensor (panics on an inconsistent record; prefer
    /// [`TensorRecord::try_to_tensor`] on untrusted input).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &self.shape)
    }
}

/// Optional provenance attached to a checkpoint: which model produced it,
/// under which configuration, and how many scalar weights it carries.
/// Lets loaders reject a checkpoint trained under a different configuration
/// with a clear message instead of a shape panic deep in restore.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointMeta {
    /// Model display name (e.g. `LogCL`).
    pub model: String,
    /// A stable fingerprint of the training configuration.
    pub config: String,
    /// Total scalar weight count at save time.
    pub param_count: usize,
}

/// A whole-model checkpoint: name → tensor.
#[derive(Serialize, Deserialize, Debug, Default, Clone)]
pub struct Checkpoint {
    /// Parameters keyed by registered name (sorted for stable output).
    pub params: BTreeMap<String, TensorRecord>,
    /// Provenance metadata; absent in checkpoints written before it existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub meta: Option<CheckpointMeta>,
}

impl Checkpoint {
    /// Checks the metadata section (when present) against the loader's
    /// expectations. Legacy checkpoints without metadata pass unconditionally.
    pub fn validate_meta(&self, model: &str, config: &str) -> Result<(), CheckpointError> {
        let Some(meta) = &self.meta else {
            return Ok(());
        };
        if meta.model != model {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was trained by model {:?}, loader expects {model:?}",
                meta.model
            )));
        }
        if meta.config != config {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was trained under config {:?}, loader expects {config:?}",
                meta.config
            )));
        }
        Ok(())
    }
}

// ------------------------------------------------------------------- errors

/// Errors raised while saving or loading checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialisation failure while *writing*.
    Json(serde_json::Error),
    /// The file is damaged: bad magic, truncated, failed CRC, or an
    /// undecodable payload.
    Corrupt(String),
    /// The file is intact but written by an unsupported format version.
    VersionSkew {
        /// Version recorded in the file.
        found: u32,
        /// Latest version this build reads.
        supported: u32,
    },
    /// A tensor's shape disagrees with the model (or with its own data).
    ShapeMismatch(String),
    /// Checkpoint and model disagree on provenance or parameter names.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            Self::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
            Self::VersionSkew { found, supported } => write!(
                f,
                "checkpoint version skew: file is format v{found}, this build reads up to v{supported}"
            ),
            Self::ShapeMismatch(m) => write!(f, "checkpoint shape mismatch: {m}"),
            Self::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

// ---------------------------------------------------------------- container

/// Wraps `payload` in the checksummed container.
pub fn encode_container(payload: &[u8]) -> Vec<u8> {
    let mut tail = Vec::with_capacity(12 + payload.len());
    tail.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    tail.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    tail.extend_from_slice(payload);
    let mut out = Vec::with_capacity(8 + tail.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&crc32(&tail).to_le_bytes());
    out.extend_from_slice(&tail);
    out
}

/// Reads a fixed-size window out of the container header, failing closed
/// (never panicking) if the window is out of range.
fn header_array<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], CheckpointError> {
    bytes
        .get(at..at + N)
        .and_then(|w| w.try_into().ok())
        .ok_or_else(|| CheckpointError::Corrupt(format!("container header truncated at byte {at}")))
}

/// Unwraps a container, verifying magic, CRC, version and length. Returns
/// the payload slice.
pub fn decode_container(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < 20 {
        return Err(CheckpointError::Corrupt(format!(
            "file is {} bytes, smaller than the {}-byte container header",
            bytes.len(),
            20
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic bytes".into()));
    }
    let stored_crc = u32::from_le_bytes(header_array(bytes, 4)?);
    let actual_crc = crc32(&bytes[8..]);
    if stored_crc != actual_crc {
        return Err(CheckpointError::Corrupt(format!(
            "CRC mismatch: header says {stored_crc:#010x}, contents hash to {actual_crc:#010x}"
        )));
    }
    let version = u32::from_le_bytes(header_array(bytes, 8)?);
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let declared = u64::from_le_bytes(header_array(bytes, 12)?);
    let payload = &bytes[20..];
    if declared != payload.len() as u64 {
        return Err(CheckpointError::Corrupt(format!(
            "payload length mismatch: header declares {declared} bytes, file carries {}",
            payload.len()
        )));
    }
    Ok(payload)
}

/// Atomically and durably writes `bytes` to `path`: sibling tmp file,
/// fsync, rename, directory fsync. A crash at any point leaves either the
/// previous file or the complete new one.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself (directory entry). Failure to open the
    // directory (e.g. on filesystems without directory handles) downgrades
    // gracefully: the data file itself is already synced.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Serialises any value as JSON inside the durable container at `path`.
pub fn save_json_durable<T: Serialize>(
    value: &T,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(value)?;
    write_atomic(path, &encode_container(json.as_bytes()))
}

/// Reads a durable container at `path` and deserialises its JSON payload.
/// Never panics on damaged input: every corruption class maps to a typed
/// [`CheckpointError`].
pub fn load_json_durable<T: serde::de::DeserializeOwned>(
    path: impl AsRef<Path>,
) -> Result<T, CheckpointError> {
    let bytes = fs::read(path)?;
    let payload = decode_container(&bytes)?;
    serde_json::from_slice(payload).map_err(|e| {
        CheckpointError::Corrupt(format!("payload passed CRC but failed to parse: {e}"))
    })
}

// -------------------------------------------------------------- public API

/// Snapshots every parameter of `params` into a [`Checkpoint`].
pub fn snapshot(params: &ParamSet) -> Checkpoint {
    let mut ckpt = Checkpoint::default();
    for (name, var) in params.iter() {
        ckpt.params
            .insert(name.to_string(), TensorRecord::from(&*var.value()));
    }
    ckpt
}

/// Like [`snapshot`], stamping provenance metadata (`param_count` is filled
/// in from `params`).
pub fn snapshot_with_meta(params: &ParamSet, model: &str, config: &str) -> Checkpoint {
    let mut ckpt = snapshot(params);
    ckpt.meta = Some(CheckpointMeta {
        model: model.to_string(),
        config: config.to_string(),
        param_count: params.num_weights(),
    });
    ckpt
}

/// Restores a checkpoint into `params`. Every registered parameter must be
/// present with a matching shape; extra checkpoint entries are an error too
/// (they indicate a model/config mismatch).
pub fn restore(params: &ParamSet, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    if let Some(meta) = &ckpt.meta {
        if meta.param_count != params.num_weights() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint metadata declares {} weights, model has {} \
                 (was it trained under a different configuration?)",
                meta.param_count,
                params.num_weights()
            )));
        }
    }
    if ckpt.params.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            ckpt.params.len(),
            params.len()
        )));
    }
    // Validate everything before mutating anything, so a failed restore
    // cannot leave the model half-overwritten.
    let mut restored = Vec::with_capacity(params.len());
    for (name, var) in params.iter() {
        let rec = ckpt
            .params
            .get(name)
            .ok_or_else(|| CheckpointError::Mismatch(format!("missing parameter {name}")))?;
        if rec.shape != var.shape() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "parameter {name}: checkpoint shape {:?} vs model {:?}",
                rec.shape,
                var.shape()
            )));
        }
        restored.push((var, rec.try_to_tensor()?));
    }
    for (var, tensor) in restored {
        var.set_value(tensor);
    }
    Ok(())
}

/// Saves `params` at `path` (durable container format).
pub fn save(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    write(&snapshot(params), path)
}

/// Saves `params` at `path` with provenance metadata.
pub fn save_with_meta(
    params: &ParamSet,
    model: &str,
    config: &str,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    write(&snapshot_with_meta(params, model, config), path)
}

/// Writes an assembled checkpoint at `path` (durable container format).
pub fn write(ckpt: &Checkpoint, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    save_json_durable(ckpt, path)
}

/// Reads a checkpoint file without restoring it into any parameter set
/// (validation can then happen before a model is even built). Accepts both
/// the durable container and the pre-container bare-JSON layout.
pub fn read(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
    let bytes = fs::read(path)?;
    if bytes.starts_with(&MAGIC) {
        let payload = decode_container(&bytes)?;
        return serde_json::from_slice(payload).map_err(|e| {
            CheckpointError::Corrupt(format!("payload passed CRC but failed to parse: {e}"))
        });
    }
    // Legacy bare-JSON checkpoint (written before the container existed).
    serde_json::from_slice(&bytes).map_err(|e| {
        CheckpointError::Corrupt(format!(
            "not a checkpoint container and not legacy JSON: {e}"
        ))
    })
}

/// Loads a checkpoint from `path` into `params`.
pub fn load(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    restore(params, &read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn sample_params(seed: u64) -> ParamSet {
        let mut rng = Rng::seed(seed);
        let mut params = ParamSet::new();
        params.new_param("a", Tensor::randn(&[3, 2], 1.0, &mut rng));
        params.new_param("b", Tensor::randn(&[4], 1.0, &mut rng));
        params
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trip() {
        let payload = b"{\"hello\":1}";
        let bytes = encode_container(payload);
        assert_eq!(decode_container(&bytes).unwrap(), payload);
    }

    #[test]
    fn container_rejects_every_single_bit_flip() {
        let bytes = encode_container(b"some checkpoint payload");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                let err = decode_container(&evil).unwrap_err();
                assert!(
                    matches!(err, CheckpointError::Corrupt(_)),
                    "flip at {byte}:{bit} gave {err}"
                );
            }
        }
    }

    #[test]
    fn container_rejects_truncation_and_version_skew() {
        let bytes = encode_container(b"payload");
        for cut in 0..bytes.len() {
            assert!(decode_container(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A well-formed file from a future version: valid CRC, higher number.
        let mut tail = Vec::new();
        tail.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        tail.extend_from_slice(&7u64.to_le_bytes());
        tail.extend_from_slice(b"payload");
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&crc32(&tail).to_le_bytes());
        future.extend_from_slice(&tail);
        let err = decode_container(&future).unwrap_err();
        assert!(
            matches!(err, CheckpointError::VersionSkew { found, supported }
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION),
            "{err}"
        );
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let src = sample_params(1);
        let dst = sample_params(2);
        assert_ne!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        let ckpt = snapshot(&src);
        restore(&dst, &ckpt).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        assert_eq!(
            src.get("b").unwrap().to_tensor(),
            dst.get("b").unwrap().to_tensor()
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tensor-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        let src = sample_params(3);
        save(&src, &path).unwrap();
        // On disk it is a container, not bare JSON.
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..4], &MAGIC);
        let dst = sample_params(4);
        load(&dst, &path).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        // No tmp residue.
        assert!(!dir.join("ckpt.bin.tmp").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_bare_json_file_still_loads() {
        let dir = std::env::temp_dir().join("logcl-tensor-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        let src = sample_params(11);
        let json = serde_json::to_string(&snapshot(&src)).unwrap();
        std::fs::write(&path, json).unwrap();
        let dst = sample_params(12);
        load(&dst, &path).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let src = sample_params(5);
        let mut ckpt = snapshot(&src);
        ckpt.params.get_mut("a").unwrap().shape = vec![2, 3];
        let err = restore(&src, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch(_)));
    }

    #[test]
    fn restore_rejects_inconsistent_record_without_mutating() {
        let src = sample_params(13);
        let before = src.get("a").unwrap().to_tensor();
        let mut ckpt = snapshot(&src);
        // Shape agrees with the model but the data payload is short.
        ckpt.params.get_mut("b").unwrap().data.pop();
        let err = restore(&src, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch(_)), "{err}");
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            before,
            "failed restore must not partially overwrite the model"
        );
    }

    #[test]
    fn restore_rejects_missing_param() {
        let src = sample_params(6);
        let mut ckpt = snapshot(&src);
        let rec = ckpt.params.remove("a").unwrap();
        ckpt.params.insert("zzz".into(), rec);
        assert!(restore(&src, &ckpt).is_err());
    }

    #[test]
    fn meta_round_trips_and_validates() {
        let src = sample_params(7);
        let ckpt = snapshot_with_meta(&src, "LogCL", "d16-m3");
        let meta = ckpt.meta.as_ref().unwrap();
        assert_eq!(meta.param_count, src.num_weights());
        ckpt.validate_meta("LogCL", "d16-m3").unwrap();
        let err = ckpt.validate_meta("LogCL", "d32-m3").unwrap_err();
        assert!(err.to_string().contains("config"), "{err}");
        let err = ckpt.validate_meta("RE-GCN", "d16-m3").unwrap_err();
        assert!(err.to_string().contains("model"), "{err}");
        // JSON round trip preserves the metadata.
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.meta.as_ref(), Some(meta));
    }

    #[test]
    fn legacy_checkpoint_without_meta_still_loads() {
        let src = sample_params(8);
        let mut json = serde_json::to_string(&snapshot(&src)).unwrap();
        assert!(!json.contains("meta"), "no meta key for legacy layout");
        let ckpt: Checkpoint = serde_json::from_str(&json).unwrap();
        ckpt.validate_meta("anything", "goes").unwrap();
        restore(&sample_params(9), &ckpt).unwrap();
        // And a hand-edited meta with the wrong weight count is rejected
        // before any shape comparison.
        json = serde_json::to_string(&snapshot_with_meta(&src, "m", "c")).unwrap();
        let mut ckpt: Checkpoint = serde_json::from_str(&json).unwrap();
        ckpt.meta.as_mut().unwrap().param_count += 1;
        let err = restore(&sample_params(10), &ckpt).unwrap_err();
        assert!(err.to_string().contains("weights"), "{err}");
    }
}
