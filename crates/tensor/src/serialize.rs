//! JSON checkpointing of named parameter sets.
//!
//! Checkpoints are plain JSON — human-inspectable and dependency-light —
//! which is acceptable at this reproduction's model sizes (≤ a few hundred
//! thousand weights).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::nn::ParamSet;
use crate::tensor::Tensor;

/// Serialisable form of one tensor.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct TensorRecord {
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl From<&Tensor> for TensorRecord {
    fn from(t: &Tensor) -> Self {
        Self {
            shape: t.shape().to_vec(),
            data: t.data().to_vec(),
        }
    }
}

impl TensorRecord {
    /// Rebuilds the tensor (validates shape/data consistency).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.data.clone(), &self.shape)
    }
}

/// A whole-model checkpoint: name → tensor.
#[derive(Serialize, Deserialize, Debug, Default)]
pub struct Checkpoint {
    /// Parameters keyed by registered name (sorted for stable output).
    pub params: BTreeMap<String, TensorRecord>,
}

/// Errors raised while saving or loading checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
    /// Checkpoint and model disagree on a parameter.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Json(e) => write!(f, "checkpoint JSON error: {e}"),
            Self::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Snapshots every parameter of `params` into a [`Checkpoint`].
pub fn snapshot(params: &ParamSet) -> Checkpoint {
    let mut ckpt = Checkpoint::default();
    for (name, var) in params.iter() {
        ckpt.params
            .insert(name.to_string(), TensorRecord::from(&*var.value()));
    }
    ckpt
}

/// Restores a checkpoint into `params`. Every registered parameter must be
/// present with a matching shape; extra checkpoint entries are an error too
/// (they indicate a model/config mismatch).
pub fn restore(params: &ParamSet, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    if ckpt.params.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            ckpt.params.len(),
            params.len()
        )));
    }
    for (name, var) in params.iter() {
        let rec = ckpt
            .params
            .get(name)
            .ok_or_else(|| CheckpointError::Mismatch(format!("missing parameter {name}")))?;
        if rec.shape != var.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name}: checkpoint shape {:?} vs model {:?}",
                rec.shape,
                var.shape()
            )));
        }
        var.set_value(rec.to_tensor());
    }
    Ok(())
}

/// Saves `params` as JSON at `path`.
pub fn save(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let ckpt = snapshot(params);
    let json = serde_json::to_string(&ckpt)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a JSON checkpoint from `path` into `params`.
pub fn load(params: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let json = fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json)?;
    restore(params, &ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn sample_params(seed: u64) -> ParamSet {
        let mut rng = Rng::seed(seed);
        let mut params = ParamSet::new();
        params.new_param("a", Tensor::randn(&[3, 2], 1.0, &mut rng));
        params.new_param("b", Tensor::randn(&[4], 1.0, &mut rng));
        params
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let src = sample_params(1);
        let dst = sample_params(2);
        assert_ne!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        let ckpt = snapshot(&src);
        restore(&dst, &ckpt).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        assert_eq!(
            src.get("b").unwrap().to_tensor(),
            dst.get("b").unwrap().to_tensor()
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tensor-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let src = sample_params(3);
        save(&src, &path).unwrap();
        let dst = sample_params(4);
        load(&dst, &path).unwrap();
        assert_eq!(
            src.get("a").unwrap().to_tensor(),
            dst.get("a").unwrap().to_tensor()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let src = sample_params(5);
        let mut ckpt = snapshot(&src);
        ckpt.params.get_mut("a").unwrap().shape = vec![2, 3];
        let err = restore(&src, &ckpt).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn restore_rejects_missing_param() {
        let src = sample_params(6);
        let mut ckpt = snapshot(&src);
        let rec = ckpt.params.remove("a").unwrap();
        ckpt.params.insert("zzz".into(), rec);
        assert!(restore(&src, &ckpt).is_err());
    }
}
