//! The pluggable kernel backend: every inner loop of the tensor engine.
//!
//! This module owns all compute kernels — matmul, elementwise maps,
//! reductions, softmax, gather/scatter-rows and the fused forward/backward
//! kernels used by autograd — behind the object-safe [`Backend`] trait.
//! [`Tensor`](crate::Tensor), `Var` and `nn` contain *no* loops of their own;
//! they validate shapes and dispatch here.
//!
//! # Determinism contract
//!
//! Both backends produce **bit-identical** results for every kernel, at any
//! thread count. This is achieved by construction rather than by testing
//! alone (though it is property-tested too):
//!
//! * A kernel parallelises only over **disjoint output regions**, and every
//!   element of the output is computed with a fixed, input-independent flop
//!   order. Which thread computes which region — and in what interleaving —
//!   cannot change a single bit.
//! * Full reductions (`sum`, `sum_sq`, loss totals) use a **fixed-shape
//!   reduction tree**: the input is split into [`REDUCE_CHUNK`]-element
//!   chunks whose partial sums are folded left-to-right. The chunk size is a
//!   compile-time constant, independent of thread count, and the same tree is
//!   evaluated by `Serial` and `Parallel`.
//! * Segmented scatter-add partitions the *output* rows into segments; each
//!   segment scans the full index list in order, so per-row accumulation
//!   order is index order regardless of segmentation.
//!
//! Consequently a checkpoint written under `--threads 8` resumes bit-
//! identically under `--threads 1` and vice versa, and the backend choice is
//! deliberately excluded from the config fingerprint.
//!
//! # Adding a backend
//!
//! Implement [`Backend`]: the whole surface is `run_tasks`, an indexed
//! task-parallel for-loop over disjoint work items. A SIMD or GPU backend
//! would instead intercept the typed kernel entry points in [`ops`]; the
//! determinism contract above is the bar any new backend must clear.

pub mod ops;
pub mod pool;

use std::sync::{Arc, OnceLock, RwLock};

pub use ops::{Binary, Unary, REDUCE_CHUNK};
pub use pool::busy_nanos;

/// An execution strategy for kernels: a way of running `n_tasks` independent
/// work items that each write a disjoint region of the output.
pub trait Backend: Send + Sync {
    /// Human-readable backend name (exported by `logcl-serve` metrics).
    fn name(&self) -> &'static str;

    /// Number of compute threads this backend uses (1 for [`Serial`]).
    fn threads(&self) -> usize;

    /// Executes `task(i)` for every `i in 0..n_tasks`, in any order and with
    /// any parallelism. Tasks must be independent and write disjoint data.
    fn run_tasks(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// Reference backend: runs every task on the calling thread, in order.
pub struct Serial;

impl Backend for Serial {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn threads(&self) -> usize {
        1
    }

    fn run_tasks(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..n_tasks {
            task(i);
        }
    }
}

/// Multi-threaded backend over a persistent std-only worker pool. Bit-
/// identical to [`Serial`] (see the module docs for why).
pub struct Parallel {
    pool: pool::Pool,
}

impl Parallel {
    /// A parallel backend using `threads` compute threads (including the
    /// calling thread, which participates in every kernel).
    pub fn new(threads: usize) -> Parallel {
        Parallel {
            pool: pool::Pool::new(threads.max(2)),
        }
    }
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn run_tasks(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.pool.run(n_tasks, task);
    }
}

// ------------------------------------------------------- global selection

static GLOBAL: OnceLock<RwLock<Arc<dyn Backend>>> = OnceLock::new();

fn make_backend(threads: usize) -> Arc<dyn Backend> {
    if threads <= 1 {
        Arc::new(Serial)
    } else {
        Arc::new(Parallel::new(threads))
    }
}

/// Thread count used when none is configured: the `LOGCL_THREADS`
/// environment variable if set, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("LOGCL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    // logcl-allow(L003): thread-count only sizes the worker pool — backends are bit-identical across counts (PR 3)
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn cell() -> &'static RwLock<Arc<dyn Backend>> {
    GLOBAL.get_or_init(|| RwLock::new(make_backend(default_threads())))
}

/// The process-wide backend every `Tensor`/`Var` op routes through.
/// Poison-tolerant: the stored `Arc` is always a fully constructed backend,
/// so a panic elsewhere cannot leave it half-swapped.
pub fn backend() -> Arc<dyn Backend> {
    cell().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Selects the process-wide backend by thread count: `1` selects [`Serial`],
/// `>= 2` a [`Parallel`] pool of that size, `0` re-applies the default
/// (env `LOGCL_THREADS`, else available parallelism). Idempotent when the
/// count is unchanged. Safe to call at any time — in-flight kernels finish
/// on the backend they started with.
pub fn set_threads(threads: usize) {
    let t = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let mut guard = cell().write().unwrap_or_else(|e| e.into_inner());
    if guard.threads() == t {
        return;
    }
    *guard = make_backend(t);
}

/// Thread count of the current process-wide backend.
pub fn current_threads() -> usize {
    backend().threads()
}

/// Name of the current process-wide backend (`"serial"` / `"parallel"`).
pub fn backend_name() -> &'static str {
    backend().name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_runs_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        Serial.run_tasks(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_runs_all_tasks() {
        let p = Parallel::new(4);
        assert_eq!(p.name(), "parallel");
        assert_eq!(p.threads(), 4);
        let count = AtomicUsize::new(0);
        p.run_tasks(123, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn global_backend_is_switchable() {
        // Only checks the accessors are consistent; other tests run
        // concurrently and may switch the backend too, so take one snapshot.
        let b = backend();
        assert!(b.threads() >= 1);
        assert_eq!(b.name() == "serial", b.threads() == 1);
    }
}
