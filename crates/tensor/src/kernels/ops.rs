//! The kernel implementations: every inner loop of the tensor engine.
//!
//! Each kernel takes the [`Backend`] it should run on and raw slices plus
//! dimensions; shape validation lives in the calling layer (`Tensor`/`Var`).
//! Parallel execution always follows the same recipe — split the *output*
//! into disjoint regions, compute each region with a fixed per-element flop
//! order — so results are bit-identical across backends and thread counts
//! (see the module docs of [`super`] for the full determinism contract).

use super::Backend;
use crate::shape;

/// Fixed chunk size (elements) of the reduction tree used by full
/// reductions. Compile-time constant so the tree shape never depends on
/// thread count.
pub const REDUCE_CHUNK: usize = 4096;

/// Target elements per task for elementwise kernels.
const ELEM_CHUNK: usize = 16 * 1024;

/// Target multiply-adds per task for matmul kernels.
const MATMUL_TASK_FLOPS: usize = 64 * 1024;

/// Target elements per task for row-structured kernels (softmax, norms...).
const ROW_TASK_ELEMS: usize = 4096;

/// Reduction-tree chunks folded per parallel task.
const PARTIALS_PER_TASK: usize = 8;

/// Minimum scatter work (source elements) before segmenting the output.
const SCATTER_MIN_WORK: usize = 16 * 1024;

/// Upper bound on scatter segments (each segment scans the full index list).
const SCATTER_MAX_SEGMENTS: usize = 32;

// ------------------------------------------------------------ partitioning

/// Raw mutable base pointer that may cross threads. Tasks derive disjoint
/// slices from it; the caller guarantees the allocation outlives the kernel.
#[derive(Clone, Copy)]
struct MutPtr(*mut f32);
unsafe impl Send for MutPtr {}
unsafe impl Sync for MutPtr {}

impl MutPtr {
    /// Accessor used inside task closures: going through a method makes the
    /// closure capture the whole (Sync) wrapper rather than the raw pointer
    /// field, which edition-2021 precise capture would otherwise pick.
    #[inline(always)]
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Splits `out` into `chunk`-element pieces and runs `f(offset, piece)` for
/// each on the backend. The pieces are disjoint, so any execution order
/// yields the same bytes.
fn par_chunks(
    bk: &dyn Backend,
    out: &mut [f32],
    chunk: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let ptr = MutPtr(out.as_mut_ptr());
    bk.run_tasks(n.div_ceil(chunk), &|t| {
        let lo = t * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: tasks cover disjoint [lo, hi) ranges of a live allocation.
        let piece = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
        f(lo, piece);
    });
}

/// Row-range variant of [`par_chunks`] for two parallel outputs of `rows`
/// rows each (`da`/`db` columns): runs `f(row_lo, n_rows, a_piece, b_piece)`
/// over disjoint row ranges.
#[allow(clippy::too_many_arguments)]
fn par_row_chunks2(
    bk: &dyn Backend,
    a: &mut [f32],
    da: usize,
    b: &mut [f32],
    db: usize,
    rows: usize,
    rows_per_task: usize,
    f: impl Fn(usize, usize, &mut [f32], &mut [f32]) + Sync,
) {
    if rows == 0 {
        return;
    }
    let rows_per_task = rows_per_task.max(1);
    let pa = MutPtr(a.as_mut_ptr());
    let pb = MutPtr(b.as_mut_ptr());
    bk.run_tasks(rows.div_ceil(rows_per_task), &|t| {
        let lo = t * rows_per_task;
        let hi = (lo + rows_per_task).min(rows);
        // SAFETY: disjoint row ranges of two live allocations.
        let (sa, sb) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.get().add(lo * da), (hi - lo) * da),
                std::slice::from_raw_parts_mut(pb.get().add(lo * db), (hi - lo) * db),
            )
        };
        f(lo, hi - lo, sa, sb);
    });
}

// ------------------------------------------------------------- elementwise

/// Named unary kernels (object-safe dispatch, no closures across threads).
#[derive(Clone, Copy, Debug)]
pub enum Unary {
    /// `x * s`
    Scale(f32),
    /// `x + s`
    AddScalar(f32),
    /// `1 / (1 + e^-x)`
    Sigmoid,
    /// `tanh(x)`
    Tanh,
    /// `x >= 0 ? x : slope * x`
    LeakyRelu(f32),
    /// `e^x`
    Exp,
    /// `ln(max(x, 1e-12))` — clamped for stability
    LnClamped,
    /// `cos(x)`
    Cos,
}

#[inline(always)]
fn unary_eval(op: Unary, x: f32) -> f32 {
    match op {
        Unary::Scale(s) => x * s,
        Unary::AddScalar(s) => x + s,
        Unary::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        Unary::Tanh => x.tanh(),
        Unary::LeakyRelu(slope) => {
            if x >= 0.0 {
                x
            } else {
                slope * x
            }
        }
        Unary::Exp => x.exp(),
        Unary::LnClamped => x.max(1e-12).ln(),
        Unary::Cos => x.cos(),
    }
}

/// Applies a named unary op elementwise.
pub fn unary(bk: &dyn Backend, op: Unary, x: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    par_chunks(bk, &mut out, ELEM_CHUNK, |lo, piece| {
        let len = piece.len();
        for (o, &v) in piece.iter_mut().zip(&x[lo..lo + len]) {
            *o = unary_eval(op, v);
        }
    });
    out
}

/// In-place variant of [`unary`].
pub fn unary_inplace(bk: &dyn Backend, op: Unary, x: &mut [f32]) {
    par_chunks(bk, x, ELEM_CHUNK, |_, piece| {
        for v in piece.iter_mut() {
            *v = unary_eval(op, *v);
        }
    });
}

/// Escape hatch for `Tensor::map` with an arbitrary (non-`Sync`) closure:
/// sequential by design, but the loop still lives here in the kernel layer.
pub fn map_fallback(f: &dyn Fn(f32) -> f32, x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| f(v)).collect()
}

/// In-place variant of [`map_fallback`].
pub fn map_fallback_inplace(f: &dyn Fn(f32) -> f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v = f(*v);
    }
}

/// Named binary kernels, including the fused backward forms that autograd
/// previously open-coded.
#[derive(Clone, Copy, Debug)]
pub enum Binary {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// Sigmoid backward: `(g, y) -> g * y * (1 - y)` where `y = σ(x)`.
    SigmoidBwd,
    /// Tanh backward: `(g, y) -> g * (1 - y²)`.
    TanhBwd,
    /// Leaky-ReLU backward: `(g, x) -> x >= 0 ? g : slope * g`.
    LeakyReluBwd(f32),
    /// Clamped-ln backward: `(g, x) -> g / max(x, 1e-12)`.
    LnBwd,
    /// Cosine backward: `(g, x) -> -g * sin(x)`.
    CosBwd,
}

#[inline(always)]
fn binary_eval(op: Binary, a: f32, b: f32) -> f32 {
    match op {
        Binary::Add => a + b,
        Binary::Sub => a - b,
        Binary::Mul => a * b,
        Binary::Div => a / b,
        Binary::SigmoidBwd => a * b * (1.0 - b),
        Binary::TanhBwd => a * (1.0 - b * b),
        Binary::LeakyReluBwd(slope) => {
            if b >= 0.0 {
                a
            } else {
                slope * a
            }
        }
        Binary::LnBwd => a / b.max(1e-12),
        Binary::CosBwd => -a * b.sin(),
    }
}

/// Applies a named binary op to equal-length slices.
pub fn binary(bk: &dyn Backend, op: Binary, a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0.0f32; a.len()];
    par_chunks(bk, &mut out, ELEM_CHUNK, |lo, piece| {
        let len = piece.len();
        for ((o, &x), &y) in piece.iter_mut().zip(&a[lo..lo + len]).zip(&b[lo..lo + len]) {
            *o = binary_eval(op, x, y);
        }
    });
    out
}

/// Broadcasting variant of [`binary`]; returns the output buffer for the
/// already-computed broadcast shape `out_shape`.
pub fn binary_bcast(
    bk: &dyn Backend,
    op: Binary,
    a: &[f32],
    shape_a: &[usize],
    b: &[f32],
    shape_b: &[usize],
    out_shape: &[usize],
) -> Vec<f32> {
    let sa = shape::broadcast_strides(shape_a, out_shape);
    let sb = shape::broadcast_strides(shape_b, out_shape);
    let n = shape::numel(out_shape);
    let mut out = vec![0.0f32; n];
    let rank = out_shape.len();
    par_chunks(bk, &mut out, ELEM_CHUNK, |lo, piece| {
        // Decompose the flat start offset into a multi-index, then walk it
        // incrementally — identical element order to the serial loop.
        let mut idx = [0usize; shape::MAX_RANK];
        let mut rem = lo;
        for d in (0..rank).rev() {
            idx[d] = rem % out_shape[d];
            rem /= out_shape[d];
        }
        let (mut oa, mut ob) = (0usize, 0usize);
        for d in 0..rank {
            oa += idx[d] * sa[d];
            ob += idx[d] * sb[d];
        }
        for o in piece.iter_mut() {
            *o = binary_eval(op, a[oa], b[ob]);
            for d in (0..rank).rev() {
                idx[d] += 1;
                oa += sa[d];
                ob += sb[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                oa -= sa[d] * out_shape[d];
                ob -= sb[d] * out_shape[d];
                idx[d] = 0;
            }
        }
    });
    out
}

/// Escape hatch for `Tensor::zip` with an arbitrary closure (broadcasting,
/// sequential).
pub fn zip_fallback(
    f: &dyn Fn(f32, f32) -> f32,
    a: &[f32],
    shape_a: &[usize],
    b: &[f32],
    shape_b: &[usize],
    out_shape: &[usize],
) -> Vec<f32> {
    if shape_a == shape_b {
        return a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
    }
    let sa = shape::broadcast_strides(shape_a, out_shape);
    let sb = shape::broadcast_strides(shape_b, out_shape);
    let n = shape::numel(out_shape);
    let mut out = Vec::with_capacity(n);
    let mut idx = vec![0usize; out_shape.len()];
    for _ in 0..n {
        let (mut oa, mut ob) = (0usize, 0usize);
        for (d, &i) in idx.iter().enumerate() {
            oa += i * sa[d];
            ob += i * sb[d];
        }
        out.push(f(a[oa], b[ob]));
        for d in (0..out_shape.len()).rev() {
            idx[d] += 1;
            if idx[d] < out_shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

/// `a += b` over equal-length slices.
pub fn add_assign(bk: &dyn Backend, a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    par_chunks(bk, a, ELEM_CHUNK, |lo, piece| {
        let len = piece.len();
        for (o, &v) in piece.iter_mut().zip(&b[lo..lo + len]) {
            *o += v;
        }
    });
}

/// `a += s * b` over equal-length slices.
pub fn axpy(bk: &dyn Backend, a: &mut [f32], s: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    par_chunks(bk, a, ELEM_CHUNK, |lo, piece| {
        let len = piece.len();
        for (o, &v) in piece.iter_mut().zip(&b[lo..lo + len]) {
            *o += s * v;
        }
    });
}

// -------------------------------------------------------------- reductions

/// Sum of a chunk's images under `f`, folded left-to-right from 0.0.
#[inline(always)]
fn fold_chunk(chunk: &[f32], f: impl Fn(f32) -> f32) -> f32 {
    let mut acc = 0.0f32;
    for &v in chunk {
        acc += f(v);
    }
    acc
}

/// Fixed-shape tree reduction: `REDUCE_CHUNK`-sized partial sums folded in
/// order. `f` maps each element before summation (identity for `sum`,
/// square for `sum_sq`).
fn reduce_tree(bk: &dyn Backend, x: &[f32], f: impl Fn(f32) -> f32 + Sync + Copy) -> f32 {
    let n_parts = x.len().div_ceil(REDUCE_CHUNK);
    if n_parts <= PARTIALS_PER_TASK {
        // Small input: fold the same tree on the calling thread.
        let mut acc = 0.0f32;
        for chunk in x.chunks(REDUCE_CHUNK) {
            acc += fold_chunk(chunk, f);
        }
        return acc;
    }
    let mut partials = vec![0.0f32; n_parts];
    par_chunks(bk, &mut partials, PARTIALS_PER_TASK, |lo, piece| {
        for (pi, p) in piece.iter_mut().enumerate() {
            let start = (lo + pi) * REDUCE_CHUNK;
            let end = (start + REDUCE_CHUNK).min(x.len());
            *p = fold_chunk(&x[start..end], f);
        }
    });
    let mut acc = 0.0f32;
    for p in partials {
        acc += p;
    }
    acc
}

/// Sum of all elements (fixed reduction tree).
pub fn sum(bk: &dyn Backend, x: &[f32]) -> f32 {
    reduce_tree(bk, x, |v| v)
}

/// Sum of squares of all elements (fixed reduction tree).
pub fn sum_sq(bk: &dyn Backend, x: &[f32]) -> f32 {
    reduce_tree(bk, x, |v| v * v)
}

/// Column sums of a row-major `[n, d]` matrix: `out[j] = Σ_i x[i, j]`, each
/// column accumulated in ascending row order.
pub fn col_sums(bk: &dyn Backend, x: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; d];
    let cols_per_task = (ROW_TASK_ELEMS / n.max(1)).max(1);
    par_chunks(bk, &mut out, cols_per_task, |j0, piece| {
        for i in 0..n {
            let row = &x[i * d + j0..i * d + j0 + piece.len()];
            for (o, &v) in piece.iter_mut().zip(row) {
                *o += v;
            }
        }
    });
    out
}

/// Row sums of a row-major `[n, d]` matrix, each row folded left-to-right.
pub fn row_sums(bk: &dyn Backend, x: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task, |i0, piece| {
        for (r, o) in piece.iter_mut().enumerate() {
            let i = i0 + r;
            let mut acc = 0.0f32;
            for &v in &x[i * d..(i + 1) * d] {
                acc += v;
            }
            *o = acc;
        }
    });
    out
}

/// Row maxima of a row-major `[n, d]` matrix (`NEG_INFINITY` fold).
pub fn max_per_row(bk: &dyn Backend, x: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task, |i0, piece| {
        for (r, o) in piece.iter_mut().enumerate() {
            let i = i0 + r;
            *o = x[i * d..(i + 1) * d]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
        }
    });
    out
}

/// Broadcast-inverse reduction (gradient accumulation): sums `x` of `shape`
/// down to `target`. Fast paths cover the shapes autograd actually produces;
/// the generic strided walk runs sequentially on any backend (identical
/// code, so trivially bit-stable).
pub fn reduce_to(bk: &dyn Backend, x: &[f32], xshape: &[usize], target: &[usize]) -> Vec<f32> {
    if shape::numel(target) == 1 {
        return vec![sum(bk, x)];
    }
    if let &[n, d] = xshape {
        match *target {
            [td] if td == d => return col_sums(bk, x, n, d),
            [1, td] if td == d => {
                return col_sums(bk, x, n, d);
            }
            [tn, 1] if tn == n => return row_sums(bk, x, n, d),
            _ => {}
        }
    }
    // Generic path: row-major walk scattering into the broadcast-strided
    // output — same element order as the historical serial loop.
    let mut out = vec![0.0f32; shape::numel(target)];
    let strides_out = shape::broadcast_strides(target, xshape);
    let rank = xshape.len();
    let mut idx = vec![0usize; rank];
    for &v in x {
        let mut o = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            o += i * strides_out[d];
        }
        out[o] += v;
        for d in (0..rank).rev() {
            idx[d] += 1;
            if idx[d] < xshape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    out
}

// ------------------------------------------------------------------ linalg

/// Dense matmul `[n, k] x [k, m] -> [n, m]`, i-k-j loop order (streams the
/// rhs and output rows). No zero-skip branch: the dense hot path runs a
/// fixed flop order regardless of values.
pub fn matmul(bk: &dyn Backend, a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
    matmul_impl::<false>(bk, a, b, n, k, m)
}

/// Matmul for callers that *know* the lhs contains many structural zeros
/// (one-hot gathers, zero-padded im2col blocks): skips zero lhs entries.
/// Value-dependent flop order is fine here because both backends evaluate
/// each output row with the same code.
pub fn matmul_sparse_lhs(
    bk: &dyn Backend,
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
) -> Vec<f32> {
    matmul_impl::<true>(bk, a, b, n, k, m)
}

fn matmul_impl<const SKIP_ZERO_LHS: bool>(
    bk: &dyn Backend,
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), n * k);
    debug_assert_eq!(b.len(), k * m);
    let mut out = vec![0.0f32; n * m];
    let row_flops = (k * m).max(1);
    let rows_per_task = (MATMUL_TASK_FLOPS / row_flops).max(1);
    par_chunks(bk, &mut out, rows_per_task * m, |lo, piece| {
        let i0 = lo / m.max(1);
        for (r, o_row) in piece.chunks_mut(m).enumerate() {
            let i = i0 + r;
            let a_row = &a[i * k..(i + 1) * k];
            for (kk, &av) in a_row.iter().enumerate() {
                if SKIP_ZERO_LHS && av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * m..(kk + 1) * m];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    });
    out
}

/// Transpose of a row-major `[r, c]` matrix into `[c, r]`.
pub fn transpose2(bk: &dyn Backend, x: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; r * c];
    let rows_per_task = (ROW_TASK_ELEMS / r.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * r, |lo, piece| {
        let j0 = lo / r.max(1);
        for (jr, o_row) in piece.chunks_mut(r).enumerate() {
            let j = j0 + jr;
            for (i, o) in o_row.iter_mut().enumerate() {
                *o = x[i * c + j];
            }
        }
    });
    out
}

/// Row-wise softmax of `[n, d]` logits (max-shifted).
pub fn softmax_rows(bk: &dyn Backend, x: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * d, |lo, piece| {
        let i0 = lo / d.max(1);
        for (r, o_row) in piece.chunks_mut(d).enumerate() {
            let row = &x[(i0 + r) * d..(i0 + r + 1) * d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (o, &v) in o_row.iter_mut().zip(row) {
                *o = (v - m).exp();
                z += *o;
            }
            let inv = 1.0 / z;
            for o in o_row.iter_mut() {
                *o *= inv;
            }
        }
    });
    out
}

/// Softmax backward: `dx = y * (g - Σ_row(g * y))`.
pub fn softmax_rows_bwd(bk: &dyn Backend, y: &[f32], g: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * d, |lo, piece| {
        let i0 = lo / d.max(1);
        for (r, o_row) in piece.chunks_mut(d).enumerate() {
            let i = i0 + r;
            let yr = &y[i * d..(i + 1) * d];
            let gr = &g[i * d..(i + 1) * d];
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            for ((o, &yj), &gj) in o_row.iter_mut().zip(yr).zip(gr) {
                *o = yj * (gj - dot);
            }
        }
    });
    out
}

// ---------------------------------------------------------------- indexing

/// Gathers rows: `out[i] = x[idx[i]]` over `d`-column rows. Indices must be
/// pre-validated by the caller.
pub fn gather_rows(bk: &dyn Backend, x: &[f32], d: usize, idx: &[usize]) -> Vec<f32> {
    let mut out = vec![0.0f32; idx.len() * d];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * d, |lo, piece| {
        let r0 = lo / d.max(1);
        for (r, o_row) in piece.chunks_mut(d).enumerate() {
            let src = idx[r0 + r];
            o_row.copy_from_slice(&x[src * d..(src + 1) * d]);
        }
    });
    out
}

/// Segmented scatter-add: adds row `r` of `src` (`[idx.len(), d]`) into row
/// `idx[r]` of a fresh `[n, d]` output. The output is partitioned into row
/// segments; each segment scans the full index list in ascending order, so
/// per-row accumulation order is index order no matter how many segments
/// (or threads) there are. Indices must be pre-validated (`idx[r] < n`).
pub fn scatter_add_rows(
    bk: &dyn Backend,
    src: &[f32],
    d: usize,
    idx: &[usize],
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    if n == 0 || idx.is_empty() {
        return out;
    }
    let n_segments = if src.len() < SCATTER_MIN_WORK {
        1
    } else {
        (bk.threads() * 2).clamp(1, SCATTER_MAX_SEGMENTS.min(n))
    };
    let rows_per_seg = n.div_ceil(n_segments);
    par_chunks(bk, &mut out, rows_per_seg * d, |lo, piece| {
        let row_lo = lo / d;
        let row_hi = row_lo + piece.len() / d;
        for (r, &i) in idx.iter().enumerate() {
            if i < row_lo || i >= row_hi {
                continue;
            }
            let dst = &mut piece[(i - row_lo) * d..(i - row_lo + 1) * d];
            let s = &src[r * d..(r + 1) * d];
            for (o, &v) in dst.iter_mut().zip(s) {
                *o += v;
            }
        }
    });
    out
}

// ------------------------------------------------------------ concatenation

/// Column-wise concatenation `[n, da] || [n, db] -> [n, da + db]`.
pub fn concat_cols(
    bk: &dyn Backend,
    a: &[f32],
    b: &[f32],
    n: usize,
    da: usize,
    db: usize,
) -> Vec<f32> {
    let d = da + db;
    let mut out = vec![0.0f32; n * d];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * d, |lo, piece| {
        let i0 = lo / d.max(1);
        for (r, o_row) in piece.chunks_mut(d).enumerate() {
            let i = i0 + r;
            o_row[..da].copy_from_slice(&a[i * da..(i + 1) * da]);
            o_row[da..].copy_from_slice(&b[i * db..(i + 1) * db]);
        }
    });
    out
}

/// Backward of [`concat_cols`]: splits `g` (`[n, da + db]`) back into the
/// two column blocks.
pub fn split_cols(
    bk: &dyn Backend,
    g: &[f32],
    n: usize,
    da: usize,
    db: usize,
) -> (Vec<f32>, Vec<f32>) {
    let d = da + db;
    let mut ga = vec![0.0f32; n * da];
    let mut gb = vec![0.0f32; n * db];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_row_chunks2(
        bk,
        &mut ga,
        da,
        &mut gb,
        db,
        n,
        rows_per_task,
        |i0, rows, pa, pb| {
            for r in 0..rows {
                let row = &g[(i0 + r) * d..(i0 + r + 1) * d];
                pa[r * da..(r + 1) * da].copy_from_slice(&row[..da]);
                pb[r * db..(r + 1) * db].copy_from_slice(&row[da..]);
            }
        },
    );
    (ga, gb)
}

// ------------------------------------------------------------------ im2col

/// im2col for a width-3, zero-padded, 2-channel 1-D convolution (the
/// ConvTransE stem): `[b, d]` entity/relation rows -> `[b * d, 6]` windows.
pub fn im2col3(bk: &dyn Backend, e: &[f32], r: &[f32], b: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; b * d * 6];
    let batch_per_task = (ROW_TASK_ELEMS / (d * 6).max(1)).max(1);
    par_chunks(bk, &mut out, batch_per_task * d * 6, |lo, piece| {
        let b0 = lo / (d * 6).max(1);
        for (br, block) in piece.chunks_mut(d * 6).enumerate() {
            let bi = b0 + br;
            let er = &e[bi * d..(bi + 1) * d];
            let rr = &r[bi * d..(bi + 1) * d];
            for j in 0..d {
                let base = j * 6;
                if j > 0 {
                    block[base] = er[j - 1];
                    block[base + 3] = rr[j - 1];
                }
                block[base + 1] = er[j];
                block[base + 4] = rr[j];
                if j + 1 < d {
                    block[base + 2] = er[j + 1];
                    block[base + 5] = rr[j + 1];
                }
            }
        }
    });
    out
}

/// Backward of [`im2col3`]: accumulates window gradients back onto the
/// entity and relation rows.
pub fn im2col3_bwd(bk: &dyn Backend, g: &[f32], b: usize, d: usize) -> (Vec<f32>, Vec<f32>) {
    let mut ge = vec![0.0f32; b * d];
    let mut gr = vec![0.0f32; b * d];
    let batch_per_task = (ROW_TASK_ELEMS / (d * 6).max(1)).max(1);
    par_row_chunks2(
        bk,
        &mut ge,
        d,
        &mut gr,
        d,
        b,
        batch_per_task,
        |b0, rows, pe, pr| {
            for br in 0..rows {
                let bi = b0 + br;
                let erow = &mut pe[br * d..(br + 1) * d];
                let rrow = &mut pr[br * d..(br + 1) * d];
                for j in 0..d {
                    let base = (bi * d + j) * 6;
                    let row = &g[base..base + 6];
                    if j > 0 {
                        erow[j - 1] += row[0];
                        rrow[j - 1] += row[3];
                    }
                    erow[j] += row[1];
                    rrow[j] += row[4];
                    if j + 1 < d {
                        erow[j + 1] += row[2];
                        rrow[j + 1] += row[5];
                    }
                }
            }
        },
    );
    (ge, gr)
}

// ------------------------------------------------------------ fused losses

/// Cross-entropy forward: per-row `lse - logit[target]` losses (max-shifted
/// log-sum-exp), summed with the fixed reduction tree. Caller divides by N.
pub fn cross_entropy_fwd(
    bk: &dyn Backend,
    logits: &[f32],
    n: usize,
    c: usize,
    targets: &[usize],
) -> f32 {
    let mut per_row = vec![0.0f32; n];
    let rows_per_task = (ROW_TASK_ELEMS / c.max(1)).max(1);
    par_chunks(bk, &mut per_row, rows_per_task, |i0, piece| {
        for (r, o) in piece.iter_mut().enumerate() {
            let i = i0 + r;
            let row = &logits[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            *o = lse - row[targets[i]];
        }
    });
    sum(bk, &per_row)
}

/// Cross-entropy backward: `(softmax(logits) - onehot) * scale` per row.
pub fn cross_entropy_bwd(
    bk: &dyn Backend,
    logits: &[f32],
    n: usize,
    c: usize,
    targets: &[usize],
    scale: f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * c];
    let rows_per_task = (ROW_TASK_ELEMS / c.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * c, |lo, piece| {
        let i0 = lo / c.max(1);
        for (r, o_row) in piece.chunks_mut(c).enumerate() {
            let i = i0 + r;
            let row = &logits[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (o, &x) in o_row.iter_mut().zip(row) {
                *o = (x - m).exp();
                z += *o;
            }
            let inv = 1.0 / z;
            for o in o_row.iter_mut() {
                *o *= inv;
            }
            o_row[targets[i]] -= 1.0;
            for o in o_row.iter_mut() {
                *o *= scale;
            }
        }
    });
    out
}

/// Row-wise L2 normalization forward: returns `(y, norms)` where
/// `y[i] = x[i] / max(‖x[i]‖, 1e-8)`.
pub fn l2_normalize_rows_fwd(
    bk: &dyn Backend,
    x: &[f32],
    n: usize,
    d: usize,
) -> (Vec<f32>, Vec<f32>) {
    let mut out = vec![0.0f32; n * d];
    let mut norms = vec![0.0f32; n];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_row_chunks2(
        bk,
        &mut out,
        d,
        &mut norms,
        1,
        n,
        rows_per_task,
        |i0, rows, po, pn| {
            for (r, nm) in pn.iter_mut().enumerate().take(rows) {
                let i = i0 + r;
                let row = &x[i * d..(i + 1) * d];
                let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt().max(1e-8);
                *nm = norm;
                for (o, &v) in po[r * d..(r + 1) * d].iter_mut().zip(row) {
                    *o = v / norm;
                }
            }
        },
    );
    (out, norms)
}

/// L2-normalize backward: `grad_x = (g - (g·y) y) / ‖x‖` per row.
pub fn l2_normalize_rows_bwd(
    bk: &dyn Backend,
    y: &[f32],
    g: &[f32],
    norms: &[f32],
    n: usize,
    d: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    let rows_per_task = (ROW_TASK_ELEMS / d.max(1)).max(1);
    par_chunks(bk, &mut out, rows_per_task * d, |lo, piece| {
        let i0 = lo / d.max(1);
        for (r, o_row) in piece.chunks_mut(d).enumerate() {
            let i = i0 + r;
            let yr = &y[i * d..(i + 1) * d];
            let gr = &g[i * d..(i + 1) * d];
            let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
            for ((o, &gj), &yj) in o_row.iter_mut().zip(gr).zip(yr) {
                *o = (gj - dot * yj) / norms[i];
            }
        }
    });
    out
}

/// BCE-with-logits forward: Σ `max(x,0) - x*y + ln(1 + e^-|x|)` via the
/// fixed reduction tree (partials per `REDUCE_CHUNK`). Caller divides by N.
pub fn bce_fwd(bk: &dyn Backend, x: &[f32], y: &[f32]) -> f32 {
    let n_parts = x.len().div_ceil(REDUCE_CHUNK);
    let bce = |xi: f32, yi: f32| xi.max(0.0) - xi * yi + (1.0 + (-xi.abs()).exp()).ln();
    let fold = |start: usize, end: usize| {
        let mut acc = 0.0f32;
        for (&xi, &yi) in x[start..end].iter().zip(&y[start..end]) {
            acc += bce(xi, yi);
        }
        acc
    };
    if n_parts <= PARTIALS_PER_TASK {
        let mut acc = 0.0f32;
        for p in 0..n_parts {
            let start = p * REDUCE_CHUNK;
            acc += fold(start, (start + REDUCE_CHUNK).min(x.len()));
        }
        return acc;
    }
    let mut partials = vec![0.0f32; n_parts];
    par_chunks(bk, &mut partials, PARTIALS_PER_TASK, |lo, piece| {
        for (pi, p) in piece.iter_mut().enumerate() {
            let start = (lo + pi) * REDUCE_CHUNK;
            *p = fold(start, (start + REDUCE_CHUNK).min(x.len()));
        }
    });
    let mut acc = 0.0f32;
    for p in partials {
        acc += p;
    }
    acc
}

/// BCE-with-logits backward: `scale * (σ(x) - y)` elementwise.
pub fn bce_bwd(bk: &dyn Backend, x: &[f32], y: &[f32], scale: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    par_chunks(bk, &mut out, ELEM_CHUNK, |lo, piece| {
        let len = piece.len();
        for ((o, &xi), &yi) in piece.iter_mut().zip(&x[lo..lo + len]).zip(&y[lo..lo + len]) {
            *o = scale * (1.0 / (1.0 + (-xi).exp()) - yi);
        }
    });
    out
}

// --------------------------------------------------------------- optimizer

/// Fused Adam update over one parameter: updates weights and both moment
/// estimates in place. `bc1`/`bc2` are the bias-correction denominators.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    bk: &dyn Backend,
    w: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    bc1: f32,
    bc2: f32,
) {
    debug_assert!(w.len() == g.len() && w.len() == m.len() && w.len() == v.len());
    let n = w.len();
    if n == 0 {
        return;
    }
    let (pw, pm, pv) = (
        MutPtr(w.as_mut_ptr()),
        MutPtr(m.as_mut_ptr()),
        MutPtr(v.as_mut_ptr()),
    );
    bk.run_tasks(n.div_ceil(ELEM_CHUNK), &|t| {
        let lo = t * ELEM_CHUNK;
        let hi = (lo + ELEM_CHUNK).min(n);
        // SAFETY: disjoint [lo, hi) ranges of three live allocations.
        let (ws, ms, vs) = unsafe {
            (
                std::slice::from_raw_parts_mut(pw.get().add(lo), hi - lo),
                std::slice::from_raw_parts_mut(pm.get().add(lo), hi - lo),
                std::slice::from_raw_parts_mut(pv.get().add(lo), hi - lo),
            )
        };
        for (((wi, &gi), mi), vi) in ws
            .iter_mut()
            .zip(&g[lo..hi])
            .zip(ms.iter_mut())
            .zip(vs.iter_mut())
        {
            *mi = beta1 * *mi + (1.0 - beta1) * gi;
            *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *wi -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * *wi);
        }
    });
}

// ----------------------------------------------------------------- ranking

/// Indices of the `k` largest entries, descending, ties broken by index.
pub fn topk(x: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    let k = k.min(idx.len());
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// 1-based filtered rank of `target`: strictly-greater count + 1, ignoring
/// masked candidates (the target itself is never masked).
pub fn rank_of(x: &[f32], target: usize, masked: &[usize]) -> usize {
    let t = x[target];
    let mut mask = vec![false; x.len()];
    for &m in masked {
        if m != target {
            mask[m] = true;
        }
    }
    let mut rank = 1usize;
    for (i, &v) in x.iter().enumerate() {
        if i == target || mask[i] {
            continue;
        }
        if v > t {
            rank += 1;
        }
    }
    rank
}

/// True when every element is finite.
pub fn all_finite(x: &[f32]) -> bool {
    x.iter().all(|v| v.is_finite())
}
