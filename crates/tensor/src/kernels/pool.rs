//! A persistent, std-only worker pool for the [`Parallel`](super::Parallel)
//! backend.
//!
//! Design constraints, in order of importance:
//!
//! 1. **Determinism.** The pool never decides *what* is computed — callers
//!    hand it `n` tasks that each write a disjoint region of the output with
//!    a fixed per-element flop order. Which worker runs which task (and in
//!    what interleaving) therefore cannot affect a single output bit.
//! 2. **No dependencies.** Workers are plain `std::thread`s parked on a
//!    `Condvar`; work distribution is a shared counter under a `Mutex`.
//! 3. **Low dispatch overhead.** The pool is created once and reused for
//!    every kernel call; a dispatch is one lock + one `notify_all`.
//!
//! The job closure is passed by reference and erased to a raw pointer so the
//! pool can store it without a lifetime parameter. This is sound because
//! [`Pool::run`] does not return until every task has finished and the job
//! slot has been cleared, so workers can never observe a dangling pointer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Total nanoseconds spent executing kernel tasks across all pool threads
/// (workers and callers). `logcl-serve` samples this around each request to
/// report compute-thread utilisation.
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Cumulative busy time (ns) of all compute threads since process start.
pub fn busy_nanos() -> u64 {
    // logcl-allow(L011): monotonic telemetry counter — a stale read only smooths the utilisation ratio
    BUSY_NANOS.load(Ordering::Relaxed)
}

/// Type-erased job: a closure invoked once per task index in `0..n_tasks`.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
}

// SAFETY: the pointee is `Sync` (asserted at erasure time in `Pool::run`) and
// is kept alive by the caller blocking inside `run` until the job completes.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    /// Next task index to claim.
    next: usize,
    /// Tasks claimed but not yet finished, plus tasks not yet claimed.
    pending: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job arrives (or shutdown).
    work: Condvar,
    /// Signalled when a job finishes (pending == 0) or the slot frees up.
    done: Condvar,
}

/// Locks the pool state, shrugging off poison. The state is a plain
/// counter triple that is only ever mutated under the lock and left
/// coherent before each unlock, so a panic on some other thread (poison)
/// cannot leave it half-updated; recovering keeps sibling kernel calls
/// from deadlocking behind a poisoned mutex.
fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Persistent worker pool; `threads` counts the caller, so `threads - 1`
/// workers are spawned and the calling thread participates in every run.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                next: 0,
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads - 1);
        for i in 1..threads {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("logcl-kernel-{i}"))
                .spawn(move || worker_loop(&shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                // Thread exhaustion: run with the workers that materialised
                // (the caller always participates, so at least one thread
                // computes). Thread count never affects results (PR 3).
                Err(_) => break,
            }
        }
        let threads = workers.len() + 1;
        Pool {
            shared,
            threads,
            workers,
        }
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n_tasks`, distributing tasks across the
    /// workers and the calling thread. Blocks until all tasks have finished.
    ///
    /// Tasks must write disjoint data; the pool provides no ordering between
    /// them beyond "all done when `run` returns".
    pub(crate) fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        if n_tasks == 1 || self.threads == 1 {
            // logcl-allow(L003): busy-time telemetry only — the reading never feeds results or control flow
            let t0 = Instant::now();
            for i in 0..n_tasks {
                f(i);
            }
            // logcl-allow(L011): monotonic telemetry counter — no data is published through it
            BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return;
        }
        // SAFETY: we erase the lifetime only for the duration of this call;
        // `run` blocks until `pending == 0` and the job slot is cleared, so
        // no worker touches the pointer after we return.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        };
        let mut st = lock_state(&self.shared);
        // Another thread may be mid-run (e.g. parallel test harness); wait
        // for the job slot to free up.
        while st.job.is_some() {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // The caller participates in the run, so it keeps its own copy of
        // the job instead of re-reading (and re-unwrapping) the slot.
        let job = Job { f: erased, n_tasks };
        st.job = Some(job);
        st.next = 0;
        st.pending = n_tasks;
        self.shared.work.notify_all();
        loop {
            if st.next >= n_tasks {
                break;
            }
            let i = st.next;
            st.next += 1;
            drop(st);
            // logcl-allow(L003): busy-time telemetry only — the reading never feeds results or control flow
            let t0 = Instant::now();
            // SAFETY: `job.f` points at `f`, alive for the whole call.
            unsafe { (*job.f)(i) };
            // logcl-allow(L011): monotonic telemetry counter — no data is published through it
            BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            st = lock_state(&self.shared);
            st.pending -= 1;
            if st.pending == 0 {
                break;
            }
        }
        while st.pending > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        // Wake any thread queued in the "slot busy" wait above.
        self.shared.done.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
            drop(st);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = lock_state(shared);
    loop {
        // Wait until there is a claimable task (or shutdown).
        loop {
            if st.shutdown {
                return;
            }
            match st.job {
                Some(job) if st.next < job.n_tasks => break,
                _ => st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        }
        // Claim-and-execute loop. The job is re-read from shared state on
        // every claim (never cached across a completion): once this worker's
        // last task is finished the installing caller may clear the slot and
        // a different caller may install a new job, so a cached copy could
        // pair a stale closure pointer with the new job's task counter.
        while let Some(job) = st.job {
            if st.next >= job.n_tasks {
                break;
            }
            let i = st.next;
            st.next += 1;
            drop(st);
            // logcl-allow(L003): busy-time telemetry only — the reading never feeds results or control flow
            let t0 = Instant::now();
            // SAFETY: task `i` is claimed but not finished, so `pending > 0`
            // and the caller of `Pool::run` is still blocked, keeping the
            // closure alive.
            unsafe { (*job.f)(i) };
            // logcl-allow(L011): monotonic telemetry counter — no data is published through it
            BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            st = lock_state(shared);
            st.pending -= 1;
            if st.pending == 0 {
                shared.done.notify_all();
            }
        }
        // No claimable work right now; loop back and wait for the next job.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reusable_across_many_runs() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(7, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 700);
    }

    #[test]
    fn single_thread_pool_degenerates_to_serial() {
        let pool = Pool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(13, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn busy_nanos_increase_with_work() {
        let pool = Pool::new(2);
        let before = busy_nanos();
        pool.run(8, &|_| {
            let mut acc = 0.0f64;
            for k in 0..50_000 {
                acc += (k as f64).sqrt();
            }
            assert!(acc > 0.0);
        });
        assert!(busy_nanos() > before);
    }
}
