//! A lexed source file plus the structural facts every lint needs:
//! test-code spans (`#[cfg(test)] mod … { }`), inline `logcl-allow`
//! suppressions, `use`-statement spans, and — since the interprocedural
//! concurrency lints (L009–L011) — a function-item index: every `fn` with
//! its body token range, owning `impl` type, and return-type span.

use std::collections::BTreeMap;

use crate::lexer::{lex, Lexed, Tok, Token};

/// One inline suppression: `// logcl-allow(L00x): reason`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The suppressed lint id (e.g. `"L002"`).
    pub lint: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Justification text after the colon.
    pub reason: String,
    /// Whether the comment stands on its own line (applies to the next
    /// code line) or trails code (applies to its own line).
    pub standalone: bool,
}

/// A malformed `logcl-allow` comment (missing id or empty reason) — itself
/// reported as a diagnostic so typos cannot silently disable enforcement.
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// A lexed file ready for linting.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Suppression comments, in source order.
    pub allows: Vec<Allow>,
    /// Malformed suppression comments.
    pub bad_allows: Vec<BadAllow>,
    /// Token-index ranges `[start, end)` covering `#[cfg(test)] mod` bodies.
    test_spans: Vec<(usize, usize)>,
    /// Token-index ranges `[start, end)` covering items gated behind a
    /// positive `#[cfg(feature = "…")]` attribute.
    feature_spans: Vec<(usize, usize)>,
    /// Token-index ranges `[start, end)` covering `use …;` statements.
    use_spans: Vec<(usize, usize)>,
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnItem>,
    /// Lines on which code tokens exist (for standalone-allow targeting).
    code_lines: BTreeMap<u32, ()>,
}

/// One parsed `fn` item — the function-granular unit the interprocedural
/// concurrency lints (L009–L011) reason over. Parsed lexically: generics
/// are skipped by angle-bracket matching, bodies by brace matching; no
/// full grammar, no `syn`.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`run`, `lock_state`, …).
    pub name: String,
    /// Enclosing `impl` type when the fn sits inside an impl block
    /// (`impl Pool { fn run … }` → `Some("Pool")`).
    pub owner: Option<String>,
    /// Token index of the `fn` keyword (for reporting).
    pub decl: usize,
    /// Token range `[start, end)` of the body block, braces included.
    pub body: (usize, usize),
    /// Token range `[start, end)` of the return type (tokens after `->`
    /// up to the body brace); empty range when the fn returns `()`.
    pub ret: (usize, usize),
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(source);
        let test_spans = find_test_spans(&tokens);
        let feature_spans = find_feature_spans(&tokens);
        let use_spans = find_use_spans(&tokens);
        let fns = find_fn_items(&tokens);
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        for c in &comments {
            match parse_allow(&c.text) {
                AllowParse::None => {}
                AllowParse::Ok { lint, reason } => allows.push(Allow {
                    lint,
                    line: c.line,
                    reason,
                    standalone: c.standalone,
                }),
                AllowParse::Bad(problem) => bad_allows.push(BadAllow {
                    line: c.line,
                    problem,
                }),
            }
        }
        let mut code_lines = BTreeMap::new();
        for t in &tokens {
            code_lines.insert(t.line, ());
        }
        SourceFile {
            path: path.to_string(),
            tokens,
            allows,
            bad_allows,
            test_spans,
            feature_spans,
            use_spans,
            fns,
            code_lines,
        }
    }

    /// True when token index `i` lies inside a `#[cfg(test)] mod` body.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// True when token index `i` lies inside a `use …;` statement.
    pub fn in_use_statement(&self, i: usize) -> bool {
        self.use_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// True when token index `i` lies inside an item (or block statement)
    /// gated behind a positive `#[cfg(feature = "…")]` attribute. Negated
    /// gates (`#[cfg(not(feature = "…"))]`) do NOT count: they compile
    /// exactly when the feature is off.
    pub fn in_feature_gated(&self, i: usize) -> bool {
        self.feature_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The lines a standalone allow at `line` could target: the next line
    /// that holds any code token.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.code_lines.range(line + 1..).next().map(|(&l, _)| l)
    }
}

enum AllowParse {
    None,
    Ok { lint: String, reason: String },
    Bad(String),
}

/// Parses `logcl-allow(L00x): reason` out of a comment body. Only plain
/// `//` comments whose text *starts* with `logcl-allow` count — doc
/// comments (`///`, `//!`) and prose that merely mentions the directive
/// mid-sentence are documentation, not suppressions.
fn parse_allow(text: &str) -> AllowParse {
    if text.starts_with('/') || text.starts_with('!') {
        return AllowParse::None;
    }
    let trimmed = text.trim_start();
    if !trimmed.starts_with("logcl-allow") {
        return AllowParse::None;
    }
    let rest = &trimmed["logcl-allow".len()..];
    let Some(rest) = rest.strip_prefix('(') else {
        return AllowParse::Bad("expected `logcl-allow(L00x): reason`".into());
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Bad("unclosed lint id: expected `logcl-allow(L00x): reason`".into());
    };
    let lint = rest[..close].trim().to_string();
    let valid_id =
        lint.len() == 4 && lint.starts_with('L') && lint[1..].chars().all(|c| c.is_ascii_digit());
    if !valid_id {
        return AllowParse::Bad(format!("invalid lint id {lint:?} in logcl-allow"));
    }
    let after = &rest[close + 1..];
    let Some(reason) = after.strip_prefix(':') else {
        return AllowParse::Bad(format!(
            "logcl-allow({lint}) needs a written reason: `logcl-allow({lint}): why`"
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return AllowParse::Bad(format!(
            "logcl-allow({lint}) needs a non-empty reason after the colon"
        ));
    }
    AllowParse::Ok {
        lint,
        reason: reason.to_string(),
    }
}

/// What a `#[…]` attribute's token stream contained — enough to classify
/// `cfg(test)`-like and `cfg(feature = "…")`-like gates without reading
/// string contents (the lexer collapses string literals).
struct AttrFacts {
    cfg: bool,
    test: bool,
    feature: bool,
    not: bool,
}

/// Finds `#[cfg(test)] mod name { … }` bodies (token-index ranges). The
/// attribute may nest (`cfg(all(test, …))`); any `test` ident inside the
/// `cfg(…)` counts.
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    find_attr_spans(tokens, |f| f.cfg && f.test)
}

/// Finds items gated behind a positive `#[cfg(feature = "…")]`. Negated
/// gates (`cfg(not(feature = …))`) are excluded — they compile exactly when
/// the feature is off, so they cannot isolate feature-only code.
fn find_feature_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    find_attr_spans(tokens, |f| f.cfg && f.feature && !f.not)
}

/// Shared scanner: finds every `#[…]`-attributed item whose attribute
/// satisfies `matches`, spanning the attribute through the item's body
/// (module body, block, or statement).
fn find_attr_spans(tokens: &[Token], matches: fn(&AttrFacts) -> bool) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].tok.is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].tok.is_punct('['))
        {
            i += 1;
            continue;
        }
        // Scan the attribute body for the idents the predicate cares about.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32; // the [
        let mut facts = AttrFacts {
            cfg: false,
            test: false,
            feature: false,
            not: false,
        };
        while j < tokens.len() && depth > 0 {
            match &tokens[j].tok {
                t if t.is_punct('[') => depth += 1,
                t if t.is_punct(']') => depth -= 1,
                t if t.is_ident("cfg") => facts.cfg = true,
                t if t.is_ident("test") => facts.test = true,
                t if t.is_ident("feature") => facts.feature = true,
                t if t.is_ident("not") => facts.not = true,
                _ => {}
            }
            j += 1;
        }
        if !matches(&facts) {
            i = attr_start + 1;
            continue;
        }
        // Skip any further attributes, then expect `mod`.
        let mut k = j;
        while k + 1 < tokens.len() && tokens[k].tok.is_punct('#') && tokens[k + 1].tok.is_punct('[')
        {
            let mut d = 1i32;
            k += 2;
            while k < tokens.len() && d > 0 {
                if tokens[k].tok.is_punct('[') {
                    d += 1;
                } else if tokens[k].tok.is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        let is_mod = tokens.get(k).is_some_and(|t| t.tok.is_ident("mod"));
        if !is_mod {
            // `#[cfg(test)]` on a use/fn/item — treat the next item's body
            // (to the end of its statement or block) as test code too.
            let (end, _) = skip_item(tokens, k);
            spans.push((attr_start, end));
            i = end;
            continue;
        }
        // Find the opening brace of the module body.
        let mut b = k;
        while b < tokens.len() && !tokens[b].tok.is_punct('{') {
            if tokens[b].tok.is_punct(';') {
                break; // `mod tests;` — out-of-line, nothing to span here
            }
            b += 1;
        }
        if b >= tokens.len() || !tokens[b].tok.is_punct('{') {
            i = k + 1;
            continue;
        }
        let mut d = 1i32;
        let mut e = b + 1;
        while e < tokens.len() && d > 0 {
            if tokens[e].tok.is_punct('{') {
                d += 1;
            } else if tokens[e].tok.is_punct('}') {
                d -= 1;
            }
            e += 1;
        }
        spans.push((attr_start, e));
        i = e;
    }
    spans
}

/// Skips one item starting at token `start`: consumes to the first `;` at
/// brace-depth 0 or past a top-level `{ … }` block. Returns `(end, _)`.
fn skip_item(tokens: &[Token], start: usize) -> (usize, ()) {
    let mut i = start;
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].tok.is_punct('{') {
            depth += 1;
        } else if tokens[i].tok.is_punct('}') {
            depth -= 1;
            if depth <= 0 {
                return (i + 1, ());
            }
        } else if tokens[i].tok.is_punct(';') && depth == 0 {
            return (i + 1, ());
        }
        i += 1;
    }
    (tokens.len(), ())
}

/// Finds `use …;` statement spans so type-name lints can skip imports.
fn find_use_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_ident("use") {
            let start = i;
            while i < tokens.len() && !tokens[i].tok.is_punct(';') {
                i += 1;
            }
            spans.push((start, i.min(tokens.len())));
        }
        i += 1;
    }
    spans
}

/// Finds every `impl` block and the type it implements on: the region
/// `[body_start, body_end)` of its braces plus the owner type name. For
/// `impl Trait for Type` the owner is `Type`; paths take their last
/// segment (`impl fmt::Display for WalError` → `WalError`).
fn find_impl_regions(tokens: &[Token]) -> Vec<(String, usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].tok.is_ident("impl") {
            i += 1;
            continue;
        }
        // Header: from `impl` to the opening `{` (or `;` — never valid,
        // but bail safely). Track the last ident seen after `for` if a
        // `for` appears at angle-depth 0, else the last ident overall
        // before any `<` opening the self-type's generics.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut owner: Option<String> = None;
        while j < tokens.len() {
            match &tokens[j].tok {
                t if t.is_punct('{') && angle == 0 => break,
                t if t.is_punct(';') && angle == 0 => break,
                t if t.is_punct('<') => angle += 1,
                // `->` inside generic bounds (`Fn() -> T`) must not close
                // an angle level.
                t if t.is_punct('>') && !(j > 0 && tokens[j - 1].tok.is_punct('-')) => {
                    angle -= 1;
                }
                t if t.is_ident("for") && angle == 0 => owner = None,
                t if t.is_ident("where") && angle == 0 => {
                    // where-clause idents are bounds, not the owner type.
                    while j < tokens.len() && !tokens[j].tok.is_punct('{') {
                        j += 1;
                    }
                    break;
                }
                Tok::Ident(name) if angle == 0 => {
                    // First ident of the current type, or a later path
                    // segment (`fmt::Display` → keep `Display`). A `for`
                    // resets `owner`, so the self type always wins.
                    let path_cont = tokens[j - 1].tok.is_punct(':');
                    if owner.is_none() || path_cont {
                        owner = Some(name.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].tok.is_punct('{') {
            i = j;
            continue;
        }
        let body_start = j;
        let mut depth = 0i32;
        let mut e = j;
        while e < tokens.len() {
            if tokens[e].tok.is_punct('{') {
                depth += 1;
            } else if tokens[e].tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    e += 1;
                    break;
                }
            }
            e += 1;
        }
        if let Some(name) = owner {
            regions.push((name, body_start, e));
        }
        // Continue scanning *inside* the impl body too: it holds the fns.
        i = body_start + 1;
    }
    regions
}

/// Finds every `fn` item that has a body. Trait-method declarations
/// (`fn f(…);`) are skipped — there is nothing to analyze. Generics on the
/// fn are skipped by angle matching (with the `->`-inside-bounds caveat);
/// the parameter list by paren matching; the return type is everything
/// between `->` and the body `{` (or a `where` clause).
fn find_fn_items(tokens: &[Token]) -> Vec<FnItem> {
    let impls = find_impl_regions(tokens);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].tok.is_ident("fn") {
            i += 1;
            continue;
        }
        let decl = i;
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        let mut j = i + 2;
        // Skip `<…>` generics on the fn itself.
        if tokens.get(j).is_some_and(|t| t.tok.is_punct('<')) {
            let mut angle = 0i32;
            while j < tokens.len() {
                if tokens[j].tok.is_punct('<') {
                    angle += 1;
                } else if tokens[j].tok.is_punct('>') && !(j > 0 && tokens[j - 1].tok.is_punct('-'))
                {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Parameter list.
        if !tokens.get(j).is_some_and(|t| t.tok.is_punct('(')) {
            i += 1;
            continue;
        }
        let mut paren = 0i32;
        while j < tokens.len() {
            if tokens[j].tok.is_punct('(') {
                paren += 1;
            } else if tokens[j].tok.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        // Optional return type, then the body `{` (or `;` for a bare decl).
        let mut ret = (j, j);
        let mut k = j;
        if k + 1 < tokens.len() && tokens[k].tok.is_punct('-') && tokens[k + 1].tok.is_punct('>') {
            let start = k + 2;
            let mut e = start;
            let mut angle = 0i32;
            while e < tokens.len() {
                match &tokens[e].tok {
                    t if t.is_punct('<') => angle += 1,
                    t if t.is_punct('>') && !(e > 0 && tokens[e - 1].tok.is_punct('-')) => {
                        angle -= 1
                    }
                    t if t.is_punct('{') && angle <= 0 => break,
                    t if t.is_punct(';') && angle <= 0 => break,
                    t if t.is_ident("where") && angle <= 0 => break,
                    _ => {}
                }
                e += 1;
            }
            ret = (start, e);
            k = e;
        }
        while k < tokens.len() && !tokens[k].tok.is_punct('{') && !tokens[k].tok.is_punct(';') {
            k += 1;
        }
        if k >= tokens.len() || tokens[k].tok.is_punct(';') {
            i = k.max(i + 1);
            continue; // trait-method declaration: no body
        }
        let body_start = k;
        let mut depth = 0i32;
        let mut e = k;
        while e < tokens.len() {
            if tokens[e].tok.is_punct('{') {
                depth += 1;
            } else if tokens[e].tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    e += 1;
                    break;
                }
            }
            e += 1;
        }
        let owner = impls
            .iter()
            .filter(|&&(_, s, end)| decl > s && decl < end)
            .min_by_key(|&&(_, s, end)| end - s) // innermost impl wins
            .map(|(n, _, _)| n.clone());
        fns.push(FnItem {
            name,
            owner,
            decl,
            body: (body_start, e),
            ret,
        });
        // Scan inside the body too: nested fns are rare but legal.
        i = body_start + 1;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span_covers_body() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.tok.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test_code(unwraps[0]));
        assert!(f.in_test_code(unwraps[1]));
        let tail = f
            .tokens
            .iter()
            .position(|t| t.tok.is_ident("tail"))
            .expect("tail token");
        assert!(!f.in_test_code(tail));
    }

    #[test]
    fn allow_parsing_good_and_bad() {
        let src = "// logcl-allow(L003): lookup-only map\nlet x = 1;\n// logcl-allow(L3): typo\n// logcl-allow(L004):\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].lint, "L003");
        assert_eq!(f.allows[0].reason, "lookup-only map");
        assert!(f.allows[0].standalone);
        assert_eq!(f.bad_allows.len(), 2);
    }

    #[test]
    fn use_spans_cover_imports() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8>; }\n";
        let f = SourceFile::parse("x.rs", src);
        let positions: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.tok.is_ident("HashMap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 2);
        assert!(f.in_use_statement(positions[0]));
        assert!(!f.in_use_statement(positions[1]));
    }

    #[test]
    fn feature_spans_cover_gated_items_but_not_negated_gates() {
        let src = "#[cfg(feature = \"fault-inject\")]\npub mod fault;\n\
                   fn f() {\n  #[cfg(feature = \"fault-inject\")]\n  { fault::hook(); }\n\
                   }\n\
                   #[cfg(not(feature = \"fault-inject\"))]\nfn g() { fault::other(); }\n\
                   fn h() { fault::bare(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let faults: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.tok.is_ident("fault"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(faults.len(), 4);
        assert!(f.in_feature_gated(faults[0]), "gated mod decl");
        assert!(f.in_feature_gated(faults[1]), "gated block statement");
        assert!(
            !f.in_feature_gated(faults[2]),
            "cfg(not(feature)) is not a gate"
        );
        assert!(!f.in_feature_gated(faults[3]), "ungated call");
    }

    #[test]
    fn fn_items_capture_name_owner_body_and_return_type() {
        let src = "\
fn free(x: u8) -> std::sync::MutexGuard<'static, u8> { body(x) }
impl Pool {
    fn run<F: Fn(usize) -> ()>(&self, f: F) { f(1) }
}
impl fmt::Display for wal::WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"e\") }
}
trait T { fn decl_only(&self); }
";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<(&str, Option<&str>)> = f
            .fns
            .iter()
            .map(|i| (i.name.as_str(), i.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("run", Some("Pool")),
                ("fmt", Some("WalError")),
            ]
        );
        let free = &f.fns[0];
        assert!(f.tokens[free.ret.0..free.ret.1]
            .iter()
            .any(|t| t.tok.is_ident("MutexGuard")));
        assert!(f.tokens[free.body.0].tok.is_punct('{'));
        assert!(f.tokens[free.body.1 - 1].tok.is_punct('}'));
        // `run` returns unit: empty return-type span.
        let run = &f.fns[1];
        assert_eq!(run.ret.0, run.ret.1);
    }

    #[test]
    fn next_code_line_skips_blank_and_comment_lines() {
        let src = "// logcl-allow(L002): reason\n\n// another comment\nx.unwrap();\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.next_code_line(1), Some(4));
    }
}
