//! Path-scoped lint configuration.
//!
//! Scoping lives *here*, in one audited table, rather than as inline
//! `logcl-allow` noise: a crate that is exempt from a lint by design (e.g.
//! `bench` stamps `Instant`-derived wall times into its BENCH_*.json
//! reports, and `cli` prints wall-clock progress) is excluded by path
//! prefix, and DESIGN.md documents each exclusion. Inline allows are
//! reserved for *individual* justified sites inside an in-scope file.
//!
//! Rules:
//! * Paths are workspace-relative with `/` separators.
//! * A file is in scope for a lint when it matches an `include` prefix and
//!   no `exclude` prefix. The longest matching rule wins by construction
//!   (excludes are checked after includes, so an exclude always carves a
//!   hole out of a broader include).
//! * Files under `tests/`, `benches/`, `examples/`, or `fixtures/`
//!   directories are never linted (test/fixture code is exempt globally),
//!   and `#[cfg(test)] mod` bodies inside library files are exempt via
//!   token spans.

/// Path scope of one lint (or one rule group inside a lint).
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Prefixes a file must match to be linted.
    pub include: &'static [&'static str],
    /// Prefixes carved out of the includes.
    pub exclude: &'static [&'static str],
}

impl Scope {
    /// Whether `path` (workspace-relative, `/`-separated) is in scope.
    pub fn contains(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p))
            && !self.exclude.iter().any(|p| path.starts_with(p))
    }
}

/// Directory names whose contents are never linted, anywhere.
pub const GLOBAL_EXEMPT_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// True when `path` contains a globally exempt directory component.
pub fn globally_exempt(path: &str) -> bool {
    path.split('/').any(|seg| GLOBAL_EXEMPT_DIRS.contains(&seg))
}

/// L001 kernel-boundary: raw f32/f64 buffer compute may exist only inside
/// `crates/tensor/src/kernels/` (the `Backend` seam of PR 3).
pub const L001_SCOPE: Scope = Scope {
    include: &["crates/", "src/"],
    exclude: &["crates/tensor/src/kernels/", "crates/analyze/"],
};

/// L002 panic-freedom: no unwrap/expect/panic-family macros in non-test
/// library code of the fail-closed crates (PR 2's contract).
pub const L002_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/",
        "crates/gnn/src/",
        "crates/core/src/",
        "crates/tkg/src/",
        "crates/serve/src/",
        "crates/cluster/src/",
        "crates/analyze/src/",
    ],
    exclude: &[],
};

/// L003 (collections rule): hash-ordered containers are banned in compute,
/// model, and serving paths — ordered collections or sorted drains only.
/// `bench` and `cli` are excluded by design: they are presentation-layer
/// code whose outputs are either explicitly sorted or human-facing logs.
pub const L003_COLLECTIONS_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/",
        "crates/gnn/src/",
        "crates/core/src/",
        "crates/tkg/src/",
        "crates/baselines/src/",
        "crates/serve/src/",
        "crates/cluster/src/",
        "crates/loadgen/src/",
    ],
    exclude: &[],
};

/// L003 (time-source rule): wall-clock reads are banned in compute/model
/// paths. `serve` is additionally excluded here (but *not* from the
/// collections rule): request timing, linger deadlines, and latency
/// metrics are wall-clock by nature and never feed model math. `bench`
/// and `cli` are excluded for the same reason as above — `bench` exists
/// to stamp `Instant`-derived wall times into BENCH_*.json.
///
/// `loadgen` IS in scope with one narrow carve-out: its schedule, histogram
/// and report modules must stay deterministic (the seeded-schedule guarantee
/// depends on it), so only `timing.rs` — the harness's single clock
/// module — may read the wall clock.
pub const L003_TIME_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/",
        "crates/gnn/src/",
        "crates/core/src/",
        "crates/tkg/src/",
        "crates/baselines/src/",
        "crates/loadgen/src/",
    ],
    exclude: &["crates/loadgen/src/timing.rs"],
};

/// L004 fsync-discipline: any file that both creates files and renames
/// them (the atomic-replace pattern) must fsync before the rename.
pub const L004_SCOPE: Scope = Scope {
    include: &["crates/", "src/"],
    exclude: &["crates/analyze/"],
};

/// L005 lock hygiene: guards must not span a blocking wait on another
/// primitive. Scoped to the places that hold locks around channels and
/// condvars: the kernel thread pool and the serving stack (worker and
/// router alike).
pub const L005_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/kernels/",
        "crates/serve/src/",
        "crates/cluster/src/",
    ],
    exclude: &[],
};

/// L006 error-context: crate-boundary `Result`s must carry typed errors —
/// no `Box<dyn Error>` and no `Result<_, String>` in public signatures.
pub const L006_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/",
        "crates/gnn/src/",
        "crates/core/src/",
        "crates/tkg/src/",
        "crates/serve/src/",
        "crates/cluster/src/",
        "crates/analyze/src/",
    ],
    exclude: &[],
};

/// L007 head-indexing: `expr[0]` on possibly-empty request/batch data in
/// the serving stack must be `.first()`/`.get(0)` instead. Scoped to
/// `serve` where the data is attacker-controlled; numeric crates index
/// shape vectors under validated invariants.
pub const L007_SCOPE: Scope = Scope {
    include: &["crates/serve/src/"],
    exclude: &[],
};

/// L008 fault-isolation: references to the deterministic fault-injection
/// machinery (`fault::…` hooks, `FaultPlan`/`FaultPoint`) must sit inside a
/// `#[cfg(feature = …)]` gate, so default release builds contain no fault
/// hooks at all. Each crate's `fault.rs` is its gated module and excluded.
pub const L008_SCOPE: Scope = Scope {
    include: &["crates/serve/src/", "crates/cluster/src/"],
    exclude: &["crates/serve/src/fault.rs", "crates/cluster/src/fault.rs"],
};

/// L009 lock-order: the cross-file lock-acquisition graph must stay
/// acyclic. Same scope as L005 — the kernel thread pool and the serving
/// stack (worker and router) are the only places that hold named guards.
pub const L009_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/kernels/",
        "crates/serve/src/",
        "crates/cluster/src/",
    ],
    exclude: &[],
};

/// L010 blocking-under-lock: fsync/sleep/socket writes (and, through
/// calls, channel reads and condvar waits) must not be reachable while a
/// guard is live. Same scope as L009: the lock-holding subsystems.
pub const L010_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/kernels/",
        "crates/serve/src/",
        "crates/cluster/src/",
    ],
    exclude: &[],
};

/// L011 atomic-ordering: `Ordering::Relaxed` is reserved for the telemetry
/// plane. `metrics.rs` IS the telemetry plane — every atomic in it is a
/// monotonic counter family whose staleness is harmless — so it is excluded
/// wholesale; elsewhere, counter bumps mentioning `metrics` are exempted
/// structurally and anything else needs Acquire/Release or a written
/// `logcl-allow(L011)` justification.
pub const L011_SCOPE: Scope = Scope {
    include: &[
        "crates/tensor/src/kernels/",
        "crates/serve/src/",
        "crates/cluster/src/",
    ],
    exclude: &[
        "crates/serve/src/metrics.rs",
        "crates/cluster/src/metrics.rs",
    ],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_prefix_logic() {
        assert!(L001_SCOPE.contains("crates/gnn/src/rgcn.rs"));
        assert!(!L001_SCOPE.contains("crates/tensor/src/kernels/ops.rs"));
        assert!(L003_COLLECTIONS_SCOPE.contains("crates/serve/src/server.rs"));
        assert!(!L003_TIME_SCOPE.contains("crates/serve/src/server.rs"));
        assert!(!L003_TIME_SCOPE.contains("crates/bench/src/common.rs"));
        // Loadgen: deterministic modules are time-checked, the clock module
        // is the single carve-out — and the carve-out must not leak to
        // siblings, to other crates' files of the same name, or to the
        // collections rule.
        assert!(L003_TIME_SCOPE.contains("crates/loadgen/src/schedule.rs"));
        assert!(L003_TIME_SCOPE.contains("crates/loadgen/src/runner.rs"));
        assert!(!L003_TIME_SCOPE.contains("crates/loadgen/src/timing.rs"));
        assert!(L003_COLLECTIONS_SCOPE.contains("crates/loadgen/src/timing.rs"));
        assert!(L003_COLLECTIONS_SCOPE.contains("crates/loadgen/src/hist.rs"));
        assert!(L003_TIME_SCOPE.contains("crates/loadgen/src/timing_helpers.rs"));
        assert!(L008_SCOPE.contains("crates/serve/src/batcher.rs"));
        assert!(!L008_SCOPE.contains("crates/serve/src/fault.rs"));
        // Router crate: linted like serve, except its gated fault module and
        // its telemetry plane — and it keeps wall-clock freedom (timeouts,
        // backoff and probes are wall-clock by nature, like serve's timing).
        assert!(L002_SCOPE.contains("crates/cluster/src/router.rs"));
        assert!(L005_SCOPE.contains("crates/cluster/src/router.rs"));
        assert!(L008_SCOPE.contains("crates/cluster/src/router.rs"));
        assert!(!L008_SCOPE.contains("crates/cluster/src/fault.rs"));
        assert!(L009_SCOPE.contains("crates/cluster/src/health.rs"));
        assert!(L010_SCOPE.contains("crates/cluster/src/client.rs"));
        assert!(L011_SCOPE.contains("crates/cluster/src/health.rs"));
        assert!(!L011_SCOPE.contains("crates/cluster/src/metrics.rs"));
        assert!(!L003_TIME_SCOPE.contains("crates/cluster/src/router.rs"));
        assert!(L003_COLLECTIONS_SCOPE.contains("crates/cluster/src/merge.rs"));
        assert!(L009_SCOPE.contains("crates/serve/src/wal.rs"));
        assert!(L009_SCOPE.contains("crates/tensor/src/kernels/pool.rs"));
        assert!(!L010_SCOPE.contains("crates/tensor/src/parallel_glue.rs"));
        assert!(L011_SCOPE.contains("crates/serve/src/shed.rs"));
        assert!(!L011_SCOPE.contains("crates/serve/src/metrics.rs"));
    }

    #[test]
    fn global_exemptions() {
        assert!(globally_exempt("crates/tensor/tests/proptest_kernels.rs"));
        assert!(globally_exempt("examples/quickstart.rs"));
        assert!(globally_exempt("crates/analyze/fixtures/l001.rs"));
        assert!(!globally_exempt("crates/tensor/src/tensor.rs"));
    }
}
