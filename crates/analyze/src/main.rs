//! CLI for the invariant lint engine.
//!
//! ```text
//! cargo run -p logcl-analyze -- check                 # human output, exit 1 on violations
//! cargo run -p logcl-analyze -- check --json          # machine output (schema_version'd)
//! cargo run -p logcl-analyze -- check --update-baseline
//! cargo run -p logcl-analyze -- lints                 # list registered lints
//! cargo run -p logcl-analyze -- graph --dot           # L009 lock-order graph as DOT
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use logcl_analyze::baseline::{self, Verdict};
use logcl_analyze::engine::{
    analyze_root, count_by_lint_and_path, find_workspace_root, lock_graph_dot_root,
};
use logcl_analyze::lints::{lint_rows, registry, Diagnostic};

const DEFAULT_BASELINE: &str = "analyze.baseline";

struct Options {
    command: Command,
    json: bool,
    update_baseline: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

enum Command {
    Check,
    Lints,
    Graph,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match opts.command {
        Command::Lints => {
            print_lints();
            ExitCode::SUCCESS
        }
        Command::Check => run_check(&opts),
        Command::Graph => run_graph(&opts),
    }
}

const USAGE: &str = "usage: logcl-analyze <check|lints|graph> [--json] [--dot] \
                     [--update-baseline] [--root DIR] [--baseline FILE]";

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = match args.next().as_deref() {
        Some("check") => Command::Check,
        Some("lints") => Command::Lints,
        Some("graph") => Command::Graph,
        Some(other) => return Err(format!("unknown command {other:?}")),
        None => return Err("missing command".into()),
    };
    let mut opts = Options {
        command,
        json: false,
        update_baseline: false,
        root: None,
        baseline: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            // `graph` always emits DOT; the flag is accepted for
            // self-documenting invocations (`analyze graph --dot`).
            "--dot" => {}
            "--update-baseline" => opts.update_baseline = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a file path")?,
                ))
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Generated from the registry (plus the L000 meta lint) so a newly
/// registered lint shows up here without anyone remembering to edit this.
fn print_lints() {
    for (id, name, invariant, origin) in lint_rows() {
        println!(
            "{id}  {name:<20} {}",
            invariant.split_whitespace().collect::<Vec<_>>().join(" ")
        );
        println!("      origin: {origin}");
    }
}

fn run_graph(opts: &Options) -> ExitCode {
    let root = match resolve_root(&opts.root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    match lock_graph_dot_root(&root) {
        Ok(dot) => {
            print!("{dot}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("graph failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn resolve_root(opt: &Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    match opt {
        Some(r) => Ok(r.clone()),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine working directory: {e}");
                    return Err(ExitCode::from(2));
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => Ok(r),
                None => {
                    eprintln!("no cargo workspace found above {}", cwd.display());
                    Err(ExitCode::from(2))
                }
            }
        }
    }
}

fn run_check(opts: &Options) -> ExitCode {
    let root = match resolve_root(&opts.root) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(DEFAULT_BASELINE));

    let analysis = match analyze_root(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let counts = count_by_lint_and_path(&analysis.diagnostics);
        let rendered = baseline::render(&counts);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} entries ({} diagnostics) written to {}",
            counts.len(),
            analysis.diagnostics.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let verdict = baseline::compare(&analysis.diagnostics, &base);
    if opts.json {
        println!(
            "{}",
            render_json(&analysis.diagnostics, &verdict, &analysis)
        );
    } else {
        render_human(&verdict, &analysis);
    }
    if verdict.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_human(verdict: &Verdict, analysis: &logcl_analyze::Analysis) {
    for d in &verdict.new_violations {
        println!("{}:{}:{} {} {}", d.path, d.line, d.col, d.lint, d.message);
    }
    for (lint, path, base, now) in &verdict.stale {
        println!(
            "stale baseline: {lint} {path} recorded {base}, now {now} — debt shrank; run \
             `cargo run -p logcl-analyze -- check --update-baseline` to lock it in"
        );
    }
    println!(
        "logcl-analyze: {} files scanned, {} new violation(s), {} stale baseline entr(ies), \
         {} tolerated by baseline, {} suppressed by logcl-allow",
        analysis.files_scanned,
        verdict.new_violations.len(),
        verdict.stale.len(),
        verdict.tolerated,
        analysis.suppressed,
    );
    if verdict.ok() {
        println!("logcl-analyze: OK");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(
    all: &[Diagnostic],
    verdict: &Verdict,
    analysis: &logcl_analyze::Analysis,
) -> String {
    let diag_json = |d: &Diagnostic| {
        format!(
            "{{\"lint\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(&d.lint),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        )
    };
    let new: Vec<String> = verdict.new_violations.iter().map(diag_json).collect();
    let stale: Vec<String> = verdict
        .stale
        .iter()
        .map(|(lint, path, base, now)| {
            format!(
                "{{\"lint\":\"{}\",\"path\":\"{}\",\"baseline\":{base},\"now\":{now}}}",
                json_escape(lint),
                json_escape(path)
            )
        })
        .collect();
    // The lints this build of the analyzer can emit (registry + meta lint):
    // consumers of the CI artifact use this to tell "clean because checked"
    // from "clean because the lint didn't exist yet".
    let mut lints: Vec<String> = vec!["\"L000\"".into()];
    lints.extend(registry().iter().map(|l| format!("\"{}\"", l.id)));
    format!(
        "{{\"schema_version\":1,\"lints\":[{}],\"ok\":{},\"files_scanned\":{},\
         \"total_diagnostics\":{},\"suppressed\":{},\
         \"tolerated\":{},\"new_violations\":[{}],\"stale_baseline\":[{}]}}",
        lints.join(","),
        verdict.ok(),
        analysis.files_scanned,
        all.len(),
        analysis.suppressed,
        verdict.tolerated,
        new.join(","),
        stale.join(",")
    )
}
