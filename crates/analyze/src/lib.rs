//! `logcl-analyze`: the in-repo invariant lint engine.
//!
//! A std-only static-analysis pass (lexer, no `syn`) that walks every
//! workspace source file and enforces the repo's determinism, panic-freedom
//! and kernel-boundary invariants as hard CI gates. See DESIGN.md
//! ("Static analysis & enforced invariants") for the lint table and
//! CONTRIBUTING.md for the `logcl-allow` workflow.

pub mod baseline;
pub mod concurrency;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod source;

pub use engine::{
    analyze_root, analyze_sources, find_workspace_root, lock_graph_dot_root, Analysis,
};
pub use lints::{lint_by_id, registry, Diagnostic, LintPass, META_LINT};
