//! The analysis engine: walks workspace sources, runs every in-scope lint,
//! resolves `logcl-allow` suppressions, and reports unused allows as
//! violations of the meta lint `L000`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::config;
use crate::lints::{registry, Diagnostic, LintPass};
use crate::source::SourceFile;

/// The result of one analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Surviving diagnostics (allows already applied), sorted by
    /// path, line, column, lint id.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many diagnostics inline allows suppressed.
    pub suppressed: usize,
}

/// Errors the engine itself can hit (I/O, bad root).
#[derive(Debug)]
pub enum EngineError {
    /// The given root is not a workspace (no Cargo.toml with [workspace]).
    NotAWorkspace(PathBuf),
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotAWorkspace(p) => {
                write!(f, "{} is not a cargo workspace root", p.display())
            }
            EngineError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for EngineError {}

/// Locates the workspace root: walks up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Analyzes every workspace source file under `root`.
pub fn analyze_root(root: &Path) -> Result<Analysis, EngineError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(EngineError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files: Vec<(String, String)> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    // Deterministic order regardless of filesystem enumeration.
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(analyze_sources(&files))
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, String)>,
) -> Result<(), EngineError> {
    let entries = fs::read_dir(dir).map_err(|e| EngineError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| EngineError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if config::globally_exempt(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path).map_err(|e| EngineError::Io(path.clone(), e))?;
            out.push((rel, text));
        }
    }
    Ok(())
}

/// Analyzes in-memory sources: `(workspace-relative path, contents)` pairs.
/// This is the seam the fixture tests inject violations through.
///
/// Two passes since PR 9: every file is parsed up front, per-file lints run
/// file by file, and workspace lints ([`LintPass::Workspace`]) run once
/// over their whole in-scope slice — the interprocedural lints need the
/// cross-file call graph. Allow resolution stays strictly per file.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let mut analysis = Analysis::default();
    let parsed: Vec<SourceFile> = files
        .iter()
        .filter(|(path, _)| !config::globally_exempt(path))
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();
    analysis.files_scanned = parsed.len();

    let mut raw: Vec<Diagnostic> = Vec::new();
    for lint in registry() {
        match lint.pass {
            LintPass::PerFile(run) => {
                for file in &parsed {
                    if lint.scope.contains(&file.path) {
                        run(file, &mut raw);
                    }
                }
            }
            LintPass::Workspace(run) => {
                let in_scope: Vec<&SourceFile> = parsed
                    .iter()
                    .filter(|f| lint.scope.contains(&f.path))
                    .collect();
                if !in_scope.is_empty() {
                    run(&in_scope, &mut raw);
                }
            }
        }
    }

    // Group raw diagnostics by path so allow resolution stays per-file
    // (workspace lints may report against any file in their slice).
    let mut by_path: BTreeMap<&str, Vec<Diagnostic>> = BTreeMap::new();
    for d in raw {
        match parsed.iter().find(|f| f.path == d.path) {
            Some(f) => by_path.entry(f.path.as_str()).or_default().push(d),
            None => analysis.diagnostics.push(d),
        }
    }

    for file in &parsed {
        let raw_for_file = by_path.remove(file.path.as_str()).unwrap_or_default();

        // Resolve allows. A trailing allow covers its own line; a
        // standalone allow covers the next line holding code (stacked
        // standalone allows therefore all cover that same line).
        let mut allow_used = vec![false; file.allows.len()];
        'diag: for d in raw_for_file {
            for (ai, a) in file.allows.iter().enumerate() {
                if a.lint != d.lint {
                    continue;
                }
                let target = if a.standalone {
                    file.next_code_line(a.line)
                } else {
                    Some(a.line)
                };
                if target == Some(d.line) {
                    allow_used[ai] = true;
                    analysis.suppressed += 1;
                    continue 'diag;
                }
            }
            analysis.diagnostics.push(d);
        }

        // Meta lint L000: malformed and unused allows are themselves
        // violations — a stale allow is a hole in the gate.
        for b in &file.bad_allows {
            analysis.diagnostics.push(Diagnostic {
                lint: "L000".into(),
                path: file.path.clone(),
                line: b.line,
                col: 1,
                message: format!("malformed suppression: {}", b.problem),
            });
        }
        for (ai, a) in file.allows.iter().enumerate() {
            if !allow_used[ai] {
                analysis.diagnostics.push(Diagnostic {
                    lint: "L000".into(),
                    path: file.path.clone(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "unused logcl-allow({}) — the violation it suppressed is gone; \
                         remove the allow so the gate stays tight",
                        a.lint
                    ),
                });
            }
        }
    }
    analysis
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.lint).cmp(&(&b.path, b.line, b.col, &b.lint)));
    analysis
}

/// Renders the L009 lock-acquisition graph of the workspace at `root` as
/// GraphViz DOT (the `analyze graph --dot` command).
pub fn lock_graph_dot_root(root: &Path) -> Result<String, EngineError> {
    if !root.join("Cargo.toml").is_file() {
        return Err(EngineError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files: Vec<(String, String)> = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let parsed: Vec<SourceFile> = files
        .iter()
        .filter(|(path, _)| config::L009_SCOPE.contains(path))
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();
    let refs: Vec<&SourceFile> = parsed.iter().collect();
    Ok(crate::concurrency::lock_graph_dot(&refs))
}

/// Per-`(lint, path)` diagnostic counts — the ratchet's unit of account.
pub fn count_by_lint_and_path(diags: &[Diagnostic]) -> BTreeMap<(String, String), u32> {
    let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.lint.clone(), d.path.clone())).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn allows_suppress_and_unused_allows_fire() {
        let files = [src(
            "crates/core/src/x.rs",
            "// logcl-allow(L002): documented contract\nfn f() { a.unwrap(); }\n\
             fn g() { b.unwrap(); } // logcl-allow(L002): also fine\n\
             // logcl-allow(L002): nothing below violates\nfn h() {}\n",
        )];
        let a = analyze_sources(&files);
        assert_eq!(a.suppressed, 2);
        assert_eq!(a.diagnostics.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(a.diagnostics[0].lint, "L000");
        assert!(a.diagnostics[0].message.contains("unused"));
    }

    #[test]
    fn allow_for_wrong_lint_does_not_suppress() {
        let files = [src(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); } // logcl-allow(L003): wrong id\n",
        )];
        let a = analyze_sources(&files);
        let lints: Vec<&str> = a.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert!(lints.contains(&"L002"), "{lints:?}");
        assert!(lints.contains(&"L000"), "unused wrong-id allow: {lints:?}");
    }

    #[test]
    fn out_of_scope_paths_are_not_linted() {
        let files = [
            src(
                "crates/bench/src/x.rs",
                "fn f() { let t = Instant::now(); }",
            ),
            src("crates/cli/src/x.rs", "fn f() { let m: HashMap<u8,u8>; }"),
            src("crates/core/tests/x.rs", "fn f() { a.unwrap(); }"),
        ];
        let a = analyze_sources(&files);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn diagnostics_sorted_and_counted() {
        let files = [src(
            "crates/core/src/x.rs",
            "fn f() { b.unwrap(); a.unwrap(); }\nfn g() { c.expect(\"x\"); }\n",
        )];
        let a = analyze_sources(&files);
        assert_eq!(a.diagnostics.len(), 3);
        assert!(a
            .diagnostics
            .windows(2)
            .all(|w| { (&w[0].path, w[0].line, w[0].col) <= (&w[1].path, w[1].line, w[1].col) }));
        let counts = count_by_lint_and_path(&a.diagnostics);
        assert_eq!(
            counts[&("L002".to_string(), "crates/core/src/x.rs".to_string())],
            3
        );
    }
}
