//! A lightweight Rust lexer: a line/column-tracked token stream plus a
//! side-channel of line comments (for `logcl-allow` suppressions).
//!
//! Deliberately not a parser — no `syn`, no proc-macro machinery — so the
//! analyzer builds std-only inside the vendored offline environment. The
//! lints match on token *sequences*, which is exactly as much syntax as the
//! enforced invariants need: `.unwrap()`, `HashMap`, `&mut [f32]`,
//! `Instant::now`, and friends are all unambiguous at the token level once
//! strings, comments, char literals, and lifetimes are correctly skipped.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#type`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime(String),
    /// Numeric literal (`0`, `1.5e-3`, `0xff`, `1_000u64`, ...).
    Num(String),
    /// Any string/char/byte-string literal; contents are irrelevant to the
    /// lints, so they are collapsed to a single opaque token.
    Str,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token with its 1-based source position (column counts characters).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// A `//` line comment, captured for suppression parsing.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Text after the `//` (leading `/` of doc comments included).
    pub text: String,
    /// True when nothing but whitespace precedes the `//` on its line.
    pub standalone: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and line comments. Never fails: unterminated
/// literals simply consume to end-of-file, which is good enough for lints
/// (rustc will reject such a file anyway).
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut line_has_token = false;
    let mut token_line = 1u32;

    while let Some(c) = cur.peek(0) {
        if token_line != cur.line {
            token_line = cur.line;
            line_has_token = false;
        }
        let (line, col) = (cur.line, cur.col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let standalone = !line_has_token;
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.comments.push(LineComment {
                    line,
                    text,
                    standalone,
                });
            }
            '/' if cur.peek(1) == Some('*') => {
                // Nested block comment.
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => {
                lex_string(&mut cur);
                push(&mut out, Tok::Str, line, col, &mut line_has_token);
            }
            '\'' => {
                // Lifetime vs char literal.
                let n1 = cur.peek(1);
                let n2 = cur.peek(2);
                let is_lifetime = match (n1, n2) {
                    (Some('\\'), _) => false,
                    (Some(a), Some('\'')) if a != '\'' => false,
                    (Some(a), _) if is_ident_start(a) => true,
                    _ => false,
                };
                if is_lifetime {
                    cur.bump(); // '
                    let mut name = String::new();
                    while let Some(ch) = cur.peek(0) {
                        if is_ident_continue(ch) {
                            name.push(ch);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    push(
                        &mut out,
                        Tok::Lifetime(name),
                        line,
                        col,
                        &mut line_has_token,
                    );
                } else {
                    cur.bump(); // '
                    if cur.peek(0) == Some('\\') {
                        cur.bump();
                        cur.bump(); // escaped char (e.g. \n, \')
                                    // Unicode escapes: \u{...}
                        if cur.peek(0) == Some('{') {
                            while let Some(ch) = cur.bump() {
                                if ch == '}' {
                                    break;
                                }
                            }
                        }
                    } else {
                        cur.bump();
                    }
                    if cur.peek(0) == Some('\'') {
                        cur.bump();
                    }
                    push(&mut out, Tok::Str, line, col, &mut line_has_token);
                }
            }
            'r' | 'b' if starts_string_prefix(&cur) => {
                lex_prefixed_string(&mut cur);
                push(&mut out, Tok::Str, line, col, &mut line_has_token);
            }
            _ if is_ident_start(c) => {
                let mut name = String::new();
                // Raw identifier r#name.
                if c == 'r' && cur.peek(1) == Some('#') {
                    cur.bump();
                    cur.bump();
                }
                while let Some(ch) = cur.peek(0) {
                    if is_ident_continue(ch) {
                        name.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(&mut out, Tok::Ident(name), line, col, &mut line_has_token);
            }
            _ if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(ch) = cur.peek(0) {
                    if ch.is_alphanumeric() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else if ch == '.'
                        && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                        && !text.contains('.')
                    {
                        // Decimal point, but not the `..` range operator.
                        text.push(ch);
                        cur.bump();
                    } else if (ch == '+' || ch == '-')
                        && matches!(text.chars().last(), Some('e') | Some('E'))
                    {
                        // Exponent sign (1e-3).
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(&mut out, Tok::Num(text), line, col, &mut line_has_token);
            }
            _ => {
                cur.bump();
                push(&mut out, Tok::Punct(c), line, col, &mut line_has_token);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, tok: Tok, line: u32, col: u32, line_has_token: &mut bool) {
    *line_has_token = true;
    out.tokens.push(Token { tok, line, col });
}

/// True when the cursor sits on a string prefix: `r"`, `r#"`, `b"`, `br"`,
/// `b'`, `br#"` — but *not* a raw identifier (`r#match`) or plain ident.
fn starts_string_prefix(cur: &Cursor) -> bool {
    let c0 = match cur.peek(0) {
        Some(c) => c,
        None => return false,
    };
    let rest =
        |from: usize| -> (Option<char>, Option<char>) { (cur.peek(from), cur.peek(from + 1)) };
    match c0 {
        'r' => match rest(1) {
            (Some('"'), _) => true,
            (Some('#'), Some('"')) | (Some('#'), Some('#')) => {
                // r#"..."# or r##"..."## — raw ident is r#ident (ident char
                // after the single #).
                let mut j = 1;
                while cur.peek(j) == Some('#') {
                    j += 1;
                }
                cur.peek(j) == Some('"')
            }
            _ => false,
        },
        'b' => match rest(1) {
            (Some('"'), _) | (Some('\''), _) => true,
            (Some('r'), Some('"')) => true,
            (Some('r'), Some('#')) => {
                let mut j = 2;
                while cur.peek(j) == Some('#') {
                    j += 1;
                }
                cur.peek(j) == Some('"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Consumes a plain `"..."` string (cursor on the opening quote).
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // "
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a prefixed string: raw, byte, raw-byte, or byte-char.
fn lex_prefixed_string(cur: &mut Cursor) {
    let mut raw = false;
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    if cur.peek(0) == Some('r') {
        raw = true;
        cur.bump();
    }
    if !raw {
        match cur.peek(0) {
            Some('"') => lex_string(cur),
            Some('\'') => {
                // b'x' byte char
                cur.bump();
                if cur.peek(0) == Some('\\') {
                    cur.bump();
                }
                cur.bump();
                if cur.peek(0) == Some('\'') {
                    cur.bump();
                }
            }
            _ => {}
        }
        return;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        return;
    }
    cur.bump(); // "
    loop {
        match cur.bump() {
            None => return,
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(String::from))
            .collect()
    }

    #[test]
    fn tracks_lines_and_columns() {
        let lexed = lex("fn main() {\n    x.unwrap();\n}\n");
        let unwrap = lexed
            .tokens
            .iter()
            .find(|t| t.tok.is_ident("unwrap"))
            .expect("unwrap token");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
let a = "HashMap.unwrap()"; // unwrap in comment
/* HashMap */ let b = r#"panic!()"#;
let c = 'x'; let d = '\n';
"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "HashMap" || i == "unwrap" || i == "panic"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d"]);
    }

    #[test]
    fn comment_capture_and_standalone_flag() {
        let src = "// logcl-allow(L002): top\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].standalone);
        assert!(lexed.comments[0].text.contains("logcl-allow(L002)"));
        assert!(!lexed.comments[1].standalone);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn raw_idents_and_raw_strings() {
        let lexed = lex("let r#type = r#\"quoted \" inside\"#; let y = r#struct;");
        let ids: Vec<_> = lexed.tokens.iter().filter_map(|t| t.tok.ident()).collect();
        assert_eq!(ids, vec!["let", "type", "let", "y", "struct"]);
    }

    #[test]
    fn numbers_do_not_eat_range_operator() {
        let lexed = lex("for i in 0..10 { a[i] = 1.5e-3; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
    }
}
